"""UDP datagrams."""

from __future__ import annotations

import struct

from repro.netlib.ethernet import FrameDecodeError

_HEADER = struct.Struct("!HHHH")


class UdpDatagram:
    """A UDP datagram (checksum omitted, as permitted over IPv4)."""

    __slots__ = ("src_port", "dst_port", "payload")

    def __init__(self, src_port: int, dst_port: int, payload: bytes = b"") -> None:
        for name, port in (("src_port", src_port), ("dst_port", dst_port)):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"{name} out of range: {port!r}")
        self.src_port = src_port
        self.dst_port = dst_port
        self.payload = bytes(payload)

    @property
    def length(self) -> int:
        return _HEADER.size + len(self.payload)

    def pack(self) -> bytes:
        return _HEADER.pack(self.src_port, self.dst_port, self.length, 0) + self.payload

    @classmethod
    def unpack(cls, data: bytes) -> "UdpDatagram":
        if len(data) < _HEADER.size:
            raise FrameDecodeError(f"UDP datagram too short: {len(data)} bytes")
        src_port, dst_port, length, _checksum = _HEADER.unpack_from(data)
        if length < _HEADER.size or length > len(data):
            raise FrameDecodeError(f"UDP length field invalid: {length}")
        return cls(src_port, dst_port, data[_HEADER.size : length])

    def __eq__(self, other: object) -> bool:
        if isinstance(other, UdpDatagram):
            return self.pack() == other.pack()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.pack())

    def __repr__(self) -> str:
        return f"<Udp {self.src_port}->{self.dst_port} len={len(self.payload)}>"
