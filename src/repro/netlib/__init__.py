"""Data-plane packet library.

Implements wire-format serialization and parsing for the protocols the case
study exercises: Ethernet, ARP, IPv4, ICMP (ping), TCP (iperf-style bulk
transfer), UDP, and LLDP (topology discovery).  These byte-accurate formats
are what flows inside OpenFlow ``PACKET_IN``/``PACKET_OUT`` payloads, so the
ATTAIN injector's conditionals inspect the same structures the paper's
Loxi-based injector did.
"""

from repro.netlib.addresses import BROADCAST_MAC, Ipv4Address, MacAddress
from repro.netlib.arp import ArpPacket
from repro.netlib.ethernet import EtherType, EthernetFrame
from repro.netlib.fastframe import FastFrame, fast_lane_enabled, set_fast_lane
from repro.netlib.flowkey import (
    MATCH_FIELD_NAMES,
    extract_flow_base,
    extract_flow_key,
    mac_pair_of,
)
from repro.netlib.icmp import IcmpEcho, IcmpType
from repro.netlib.ipv4 import IpProtocol, Ipv4Packet
from repro.netlib.lldp import LldpPacket
from repro.netlib.packet import decode_ethernet, payload_protocol_name
from repro.netlib.tcp import TcpFlags, TcpSegment
from repro.netlib.udp import UdpDatagram

__all__ = [
    "ArpPacket",
    "BROADCAST_MAC",
    "EtherType",
    "EthernetFrame",
    "FastFrame",
    "IcmpEcho",
    "IcmpType",
    "IpProtocol",
    "Ipv4Address",
    "Ipv4Packet",
    "LldpPacket",
    "MATCH_FIELD_NAMES",
    "MacAddress",
    "TcpFlags",
    "TcpSegment",
    "UdpDatagram",
    "decode_ethernet",
    "extract_flow_base",
    "extract_flow_key",
    "fast_lane_enabled",
    "mac_pair_of",
    "payload_protocol_name",
    "set_fast_lane",
]
