"""ICMP echo request/reply (the `ping` workload)."""

from __future__ import annotations

import struct
from enum import IntEnum

from repro.netlib.ethernet import FrameDecodeError
from repro.netlib.ipv4 import internet_checksum


class IcmpType(IntEnum):
    ECHO_REPLY = 0
    ECHO_REQUEST = 8


_HEADER = struct.Struct("!BBHHH")


class IcmpEcho:
    """An ICMP echo request or reply."""

    __slots__ = ("icmp_type", "identifier", "sequence", "payload")

    def __init__(
        self,
        icmp_type: int,
        identifier: int,
        sequence: int,
        payload: bytes = b"",
    ) -> None:
        if icmp_type not in (IcmpType.ECHO_REQUEST, IcmpType.ECHO_REPLY):
            raise ValueError(f"unsupported ICMP type {icmp_type!r}")
        if not 0 <= identifier <= 0xFFFF:
            raise ValueError(f"identifier out of range: {identifier!r}")
        if not 0 <= sequence <= 0xFFFF:
            raise ValueError(f"sequence out of range: {sequence!r}")
        self.icmp_type = IcmpType(icmp_type)
        self.identifier = identifier
        self.sequence = sequence
        self.payload = bytes(payload)

    @classmethod
    def request(cls, identifier: int, sequence: int, payload: bytes = b"") -> "IcmpEcho":
        return cls(IcmpType.ECHO_REQUEST, identifier, sequence, payload)

    def reply(self) -> "IcmpEcho":
        """Build the matching echo reply (same id/seq/payload)."""
        if self.icmp_type is not IcmpType.ECHO_REQUEST:
            raise ValueError("only echo requests can be replied to")
        return IcmpEcho(IcmpType.ECHO_REPLY, self.identifier, self.sequence, self.payload)

    @property
    def is_request(self) -> bool:
        return self.icmp_type is IcmpType.ECHO_REQUEST

    @property
    def is_reply(self) -> bool:
        return self.icmp_type is IcmpType.ECHO_REPLY

    def pack(self) -> bytes:
        header = _HEADER.pack(int(self.icmp_type), 0, 0, self.identifier, self.sequence)
        checksum = internet_checksum(header + self.payload)
        header = _HEADER.pack(int(self.icmp_type), 0, checksum, self.identifier, self.sequence)
        return header + self.payload

    @classmethod
    def unpack(cls, data: bytes) -> "IcmpEcho":
        if len(data) < _HEADER.size:
            raise FrameDecodeError(f"ICMP packet too short: {len(data)} bytes")
        icmp_type, code, checksum, identifier, sequence = _HEADER.unpack_from(data)
        if code != 0:
            raise FrameDecodeError(f"unsupported ICMP code {code}")
        if internet_checksum(data) != 0:
            raise FrameDecodeError(f"ICMP checksum mismatch (got 0x{checksum:04x})")
        return cls(icmp_type, identifier, sequence, data[_HEADER.size :])

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IcmpEcho):
            return self.pack() == other.pack()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.pack())

    def __repr__(self) -> str:
        return (
            f"<IcmpEcho {self.icmp_type.name} id={self.identifier} "
            f"seq={self.sequence} len={len(self.payload)}>"
        )
