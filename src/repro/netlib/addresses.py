"""MAC and IPv4 address value types."""

from __future__ import annotations

from typing import Union


class MacAddress:
    """An immutable 48-bit Ethernet address."""

    __slots__ = ("_value",)

    def __init__(self, value: Union[str, int, bytes, "MacAddress"]) -> None:
        if isinstance(value, MacAddress):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value < (1 << 48):
                raise ValueError(f"MAC integer out of range: {value!r}")
            self._value = value
        elif isinstance(value, bytes):
            if len(value) != 6:
                raise ValueError(f"MAC bytes must be length 6, got {len(value)}")
            self._value = int.from_bytes(value, "big")
        elif isinstance(value, str):
            parts = value.split(":")
            if len(parts) != 6:
                raise ValueError(f"malformed MAC string: {value!r}")
            try:
                octets = [int(part, 16) for part in parts]
            except ValueError as exc:
                raise ValueError(f"malformed MAC string: {value!r}") from exc
            if any(not 0 <= octet <= 0xFF for octet in octets):
                raise ValueError(f"malformed MAC string: {value!r}")
            self._value = int.from_bytes(bytes(octets), "big")
        else:
            raise TypeError(f"cannot build MacAddress from {type(value).__name__}")

    @property
    def packed(self) -> bytes:
        return self._value.to_bytes(6, "big")

    @property
    def is_broadcast(self) -> bool:
        return self._value == (1 << 48) - 1

    @property
    def is_multicast(self) -> bool:
        return bool(self.packed[0] & 0x01)

    def __int__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MacAddress):
            return self._value == other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("mac", self._value))

    def __lt__(self, other: "MacAddress") -> bool:
        return self._value < other._value

    def __str__(self) -> str:
        return ":".join(f"{octet:02x}" for octet in self.packed)

    def __repr__(self) -> str:
        return f"MacAddress({str(self)!r})"


BROADCAST_MAC = MacAddress("ff:ff:ff:ff:ff:ff")
LLDP_MULTICAST_MAC = MacAddress("01:80:c2:00:00:0e")


class Ipv4Address:
    """An immutable 32-bit IPv4 address."""

    __slots__ = ("_value",)

    def __init__(self, value: Union[str, int, bytes, "Ipv4Address"]) -> None:
        if isinstance(value, Ipv4Address):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value < (1 << 32):
                raise ValueError(f"IPv4 integer out of range: {value!r}")
            self._value = value
        elif isinstance(value, bytes):
            if len(value) != 4:
                raise ValueError(f"IPv4 bytes must be length 4, got {len(value)}")
            self._value = int.from_bytes(value, "big")
        elif isinstance(value, str):
            parts = value.split(".")
            if len(parts) != 4:
                raise ValueError(f"malformed IPv4 string: {value!r}")
            try:
                octets = [int(part, 10) for part in parts]
            except ValueError as exc:
                raise ValueError(f"malformed IPv4 string: {value!r}") from exc
            if any(not 0 <= octet <= 255 for octet in octets):
                raise ValueError(f"malformed IPv4 string: {value!r}")
            self._value = int.from_bytes(bytes(octets), "big")
        else:
            raise TypeError(f"cannot build Ipv4Address from {type(value).__name__}")

    @property
    def packed(self) -> bytes:
        return self._value.to_bytes(4, "big")

    def __int__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Ipv4Address):
            return self._value == other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("ipv4", self._value))

    def __lt__(self, other: "Ipv4Address") -> bool:
        return self._value < other._value

    def __str__(self) -> str:
        return ".".join(str(octet) for octet in self.packed)

    def __repr__(self) -> str:
        return f"Ipv4Address({str(self)!r})"
