"""Ethernet II framing."""

from __future__ import annotations

import struct
from enum import IntEnum

from repro.netlib.addresses import MacAddress


class EtherType(IntEnum):
    """EtherTypes used by the reproduction's data plane."""

    IPV4 = 0x0800
    ARP = 0x0806
    LLDP = 0x88CC
    VLAN = 0x8100


class FrameDecodeError(Exception):
    """Raised when a byte buffer cannot be parsed as the claimed protocol."""


_HEADER = struct.Struct("!6s6sH")


class EthernetFrame:
    """An Ethernet II frame with an opaque byte payload."""

    __slots__ = ("dst", "src", "ethertype", "payload")

    def __init__(
        self,
        dst: MacAddress,
        src: MacAddress,
        ethertype: int,
        payload: bytes = b"",
    ) -> None:
        self.dst = MacAddress(dst)
        self.src = MacAddress(src)
        self.ethertype = int(ethertype)
        self.payload = bytes(payload)

    def pack(self) -> bytes:
        return _HEADER.pack(self.dst.packed, self.src.packed, self.ethertype) + self.payload

    @classmethod
    def unpack(cls, data: bytes) -> "EthernetFrame":
        if len(data) < _HEADER.size:
            raise FrameDecodeError(
                f"ethernet frame too short: {len(data)} < {_HEADER.size} bytes"
            )
        dst, src, ethertype = _HEADER.unpack_from(data)
        return cls(MacAddress(dst), MacAddress(src), ethertype, data[_HEADER.size :])

    def __len__(self) -> int:
        return _HEADER.size + len(self.payload)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EthernetFrame):
            return self.pack() == other.pack()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.pack())

    def __repr__(self) -> str:
        try:
            kind = EtherType(self.ethertype).name
        except ValueError:
            kind = f"0x{self.ethertype:04x}"
        return f"<EthernetFrame {self.src}->{self.dst} {kind} len={len(self)}>"
