"""ARP request/reply packets (RFC 826, Ethernet/IPv4 only)."""

from __future__ import annotations

import struct

from repro.netlib.addresses import Ipv4Address, MacAddress
from repro.netlib.ethernet import FrameDecodeError

_ARP = struct.Struct("!HHBBH6s4s6s4s")

HTYPE_ETHERNET = 1
PTYPE_IPV4 = 0x0800

OP_REQUEST = 1
OP_REPLY = 2


class ArpPacket:
    """An Ethernet/IPv4 ARP packet."""

    __slots__ = ("opcode", "sender_mac", "sender_ip", "target_mac", "target_ip")

    def __init__(
        self,
        opcode: int,
        sender_mac: MacAddress,
        sender_ip: Ipv4Address,
        target_mac: MacAddress,
        target_ip: Ipv4Address,
    ) -> None:
        if opcode not in (OP_REQUEST, OP_REPLY):
            raise ValueError(f"unsupported ARP opcode {opcode!r}")
        self.opcode = opcode
        self.sender_mac = MacAddress(sender_mac)
        self.sender_ip = Ipv4Address(sender_ip)
        self.target_mac = MacAddress(target_mac)
        self.target_ip = Ipv4Address(target_ip)

    @classmethod
    def request(
        cls, sender_mac: MacAddress, sender_ip: Ipv4Address, target_ip: Ipv4Address
    ) -> "ArpPacket":
        """Build a who-has broadcast request."""
        return cls(
            OP_REQUEST,
            sender_mac,
            sender_ip,
            MacAddress("00:00:00:00:00:00"),
            target_ip,
        )

    @classmethod
    def reply(
        cls,
        sender_mac: MacAddress,
        sender_ip: Ipv4Address,
        target_mac: MacAddress,
        target_ip: Ipv4Address,
    ) -> "ArpPacket":
        """Build an is-at unicast reply."""
        return cls(OP_REPLY, sender_mac, sender_ip, target_mac, target_ip)

    @property
    def is_request(self) -> bool:
        return self.opcode == OP_REQUEST

    @property
    def is_reply(self) -> bool:
        return self.opcode == OP_REPLY

    def pack(self) -> bytes:
        return _ARP.pack(
            HTYPE_ETHERNET,
            PTYPE_IPV4,
            6,
            4,
            self.opcode,
            self.sender_mac.packed,
            self.sender_ip.packed,
            self.target_mac.packed,
            self.target_ip.packed,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "ArpPacket":
        if len(data) < _ARP.size:
            raise FrameDecodeError(f"ARP packet too short: {len(data)} bytes")
        htype, ptype, hlen, plen, opcode, smac, sip, tmac, tip = _ARP.unpack_from(data)
        if (htype, ptype, hlen, plen) != (HTYPE_ETHERNET, PTYPE_IPV4, 6, 4):
            raise FrameDecodeError(
                f"unsupported ARP hardware/protocol combination "
                f"({htype}, 0x{ptype:04x}, {hlen}, {plen})"
            )
        return cls(opcode, MacAddress(smac), Ipv4Address(sip), MacAddress(tmac), Ipv4Address(tip))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ArpPacket):
            return self.pack() == other.pack()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.pack())

    def __repr__(self) -> str:
        kind = "request" if self.is_request else "reply"
        return (
            f"<Arp {kind} sender={self.sender_ip}({self.sender_mac}) "
            f"target={self.target_ip}({self.target_mac})>"
        )
