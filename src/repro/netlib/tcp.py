"""TCP segments (simplified header, no options) for the iperf-style workload."""

from __future__ import annotations

import struct
from enum import IntFlag

from repro.netlib.ethernet import FrameDecodeError


class TcpFlags(IntFlag):
    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10


_HEADER = struct.Struct("!HHIIBBHHH")


class TcpSegment:
    """A TCP segment with a 20-byte header and no options.

    The host stack in :mod:`repro.dataplane.host` implements a simplified
    sliding-window transfer over these segments — enough to measure
    throughput the way ``iperf`` does in the paper's evaluation.
    """

    __slots__ = ("src_port", "dst_port", "seq", "ack", "flags", "window", "payload")

    def __init__(
        self,
        src_port: int,
        dst_port: int,
        seq: int = 0,
        ack: int = 0,
        flags: TcpFlags = TcpFlags(0),
        window: int = 65535,
        payload: bytes = b"",
    ) -> None:
        for name, port in (("src_port", src_port), ("dst_port", dst_port)):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"{name} out of range: {port!r}")
        if not 0 <= seq < (1 << 32) or not 0 <= ack < (1 << 32):
            raise ValueError(f"sequence/ack out of range: seq={seq!r} ack={ack!r}")
        if not 0 <= window <= 0xFFFF:
            raise ValueError(f"window out of range: {window!r}")
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq
        self.ack = ack
        self.flags = TcpFlags(flags)
        self.window = window
        self.payload = bytes(payload)

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & TcpFlags.SYN)

    @property
    def is_ack(self) -> bool:
        return bool(self.flags & TcpFlags.ACK)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & TcpFlags.FIN)

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & TcpFlags.RST)

    def pack(self) -> bytes:
        data_offset = (5 << 4)
        header = _HEADER.pack(
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            data_offset,
            int(self.flags),
            self.window,
            0,
            0,
        )
        return header + self.payload

    @classmethod
    def unpack(cls, data: bytes) -> "TcpSegment":
        if len(data) < _HEADER.size:
            raise FrameDecodeError(f"TCP segment too short: {len(data)} bytes")
        (
            src_port,
            dst_port,
            seq,
            ack,
            data_offset_byte,
            flags,
            window,
            _checksum,
            _urgent,
        ) = _HEADER.unpack_from(data)
        data_offset = data_offset_byte >> 4
        if data_offset != 5:
            raise FrameDecodeError(f"TCP options unsupported (data offset {data_offset})")
        return cls(src_port, dst_port, seq, ack, TcpFlags(flags), window, data[_HEADER.size :])

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TcpSegment):
            return self.pack() == other.pack()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.pack())

    def __repr__(self) -> str:
        names = [flag.name for flag in TcpFlags if flag & self.flags]
        flag_text = "|".join(name for name in names if name) or "none"
        return (
            f"<Tcp {self.src_port}->{self.dst_port} seq={self.seq} ack={self.ack} "
            f"[{flag_text}] len={len(self.payload)}>"
        )
