"""Single-pass flow-key extraction straight from raw Ethernet bytes.

The OpenFlow twelve-tuple (:data:`MATCH_FIELD_NAMES` in
``repro.openflow.match``) is the only thing the data-plane forwarding path
needs from a frame, yet the historical extraction route built full
``EthernetFrame``/``Ipv4Packet``/``TcpSegment`` objects — three payload
copies, enum constructions, and range re-validation per hop.  This module
reads the twelve fields with ``struct.unpack_from`` directly against the
buffer, allocating only the two ``MacAddress``/two ``Ipv4Address`` value
objects the key itself carries.

Semantics are bit-for-bit those of the decode-based reference
(``extract_packet_fields_reference``): every validation a layer decoder
performs — IPv4 version/IHL/total-length/checksum, TCP data offset, UDP
length, ICMP code and checksum — is replicated here, and a layer that
would have failed to decode yields ``None`` fields exactly as the
``decode_ethernet`` route does.  ``tests/netlib/test_flowkey.py`` holds
the equivalence suite (truncated headers, bad checksums, non-IP
ethertypes, ICMP type/code edge cases).
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Optional, Tuple

from repro.netlib.addresses import Ipv4Address, MacAddress
from repro.netlib.ethernet import FrameDecodeError
from repro.netlib.ipv4 import internet_checksum

#: ``dl_vlan`` value for untagged frames (OF 1.0's OFP_VLAN_NONE).
VLAN_NONE = 0xFFFF

#: The OF 1.0 twelve-tuple, in ``ofp_match`` wire order.  Canonical home
#: is here (the lowest layer that knows the tuple) and re-exported by
#: ``repro.openflow.match`` so both sides of the netlib/openflow boundary
#: agree without a circular import.
MATCH_FIELD_NAMES = (
    "in_port",
    "dl_src",
    "dl_dst",
    "dl_vlan",
    "dl_vlan_pcp",
    "dl_type",
    "nw_tos",
    "nw_proto",
    "nw_src",
    "nw_dst",
    "tp_src",
    "tp_dst",
)

#: Key under which the fast lane memoizes a precomputed twelve-tuple
#: inside an extracted fields dict (``repro.netlib.fastframe``).
#: Dunder-prefixed so it can never collide with a match field name;
#: ``field_tuple`` and ``Match.matches_fields`` ignore unknown keys.
FIELD_TUPLE_KEY = "__tuple__"

_ETH = struct.Struct("!6s6sH")
_IP = struct.Struct("!BBHHHBBH4s4s")
_TCP_PORTS = struct.Struct("!HH")
_UDP = struct.Struct("!HHHH")
_ICMP = struct.Struct("!BBHHH")

_ETH_SIZE = _ETH.size          # 14
_IP_SIZE = _IP.size            # 20
_TCP_MIN = 20
_UDP_MIN = 8
_ICMP_MIN = 8

_ETHERTYPE_IPV4 = 0x0800
_ETHERTYPE_ARP = 0x0806

_ARP = struct.Struct("!HHBBH6s4s6s4s")
_ARP_ETH_IPV4 = (1, 0x0800, 6, 4)


def extract_flow_base(data: bytes) -> Dict[str, Any]:
    """Extract the port-independent eleven fields of the flow key.

    Raises :class:`FrameDecodeError` for frames shorter than an Ethernet
    header, and mirrors the layer decoders' ``ValueError`` for the two
    constructor-level rejections (unknown ICMP echo type, unknown ARP
    opcode) so the fast and reference routes fail identically.
    """
    if len(data) < _ETH_SIZE:
        raise FrameDecodeError(
            f"ethernet frame too short: {len(data)} < {_ETH_SIZE} bytes"
        )
    dst, src, ethertype = _ETH.unpack_from(data)
    fields: Dict[str, Any] = {
        "dl_src": MacAddress(src),
        "dl_dst": MacAddress(dst),
        "dl_vlan": VLAN_NONE,
        "dl_vlan_pcp": 0,
        "dl_type": ethertype,
        "nw_tos": None,
        "nw_proto": None,
        "nw_src": None,
        "nw_dst": None,
        "tp_src": None,
        "tp_dst": None,
    }
    if ethertype == _ETHERTYPE_IPV4:
        _extract_ipv4(data, fields)
    elif ethertype == _ETHERTYPE_ARP:
        _extract_arp(data, fields)
    return fields


def extract_flow_key(data: bytes, in_port: int) -> Dict[str, Any]:
    """The full twelve-tuple for a frame arriving on ``in_port``."""
    fields = extract_flow_base(data)
    fields["in_port"] = in_port
    return fields


def _extract_ipv4(data: bytes, fields: Dict[str, Any]) -> None:
    payload_len = len(data) - _ETH_SIZE
    if payload_len < _IP_SIZE:
        return
    (
        version_ihl,
        _tos,
        total_length,
        _identification,
        _flags_frag,
        _ttl,
        protocol,
        _checksum,
        nw_src,
        nw_dst,
    ) = _IP.unpack_from(data, _ETH_SIZE)
    # Mirror Ipv4Packet.unpack's rejections: wrong version, options,
    # overlong total_length, bad header checksum -> no L3/L4 fields.
    if version_ihl != 0x45:
        return
    if total_length > payload_len:
        return
    if internet_checksum(data[_ETH_SIZE : _ETH_SIZE + _IP_SIZE]) != 0:
        return
    # Ipv4Packet does not model TOS (packs it as zero), so the extracted
    # key reads 0 regardless of the wire byte — same as the reference.
    fields["nw_tos"] = 0
    fields["nw_proto"] = protocol
    fields["nw_src"] = Ipv4Address(nw_src)
    fields["nw_dst"] = Ipv4Address(nw_dst)
    l4_offset = _ETH_SIZE + _IP_SIZE
    l4_len = total_length - _IP_SIZE
    if protocol == 6:  # TCP
        if l4_len < _TCP_MIN:
            return
        # TcpSegment.unpack rejects options (data offset != 5).
        if data[l4_offset + 12] >> 4 != 5:
            return
        tp_src, tp_dst = _TCP_PORTS.unpack_from(data, l4_offset)
        fields["tp_src"] = tp_src
        fields["tp_dst"] = tp_dst
    elif protocol == 17:  # UDP
        if l4_len < _UDP_MIN:
            return
        tp_src, tp_dst, length, _cks = _UDP.unpack_from(data, l4_offset)
        if length < _UDP_MIN or length > l4_len:
            return
        fields["tp_src"] = tp_src
        fields["tp_dst"] = tp_dst
    elif protocol == 1:  # ICMP
        if l4_len < _ICMP_MIN:
            return
        icmp_type, code, _cks, _ident, _seq = _ICMP.unpack_from(data, l4_offset)
        if code != 0:
            return
        if internet_checksum(data[l4_offset : _ETH_SIZE + total_length]) != 0:
            return
        if icmp_type not in (0, 8):
            # IcmpEcho refuses non-echo types at construction time with a
            # ValueError (not a decode error); keep the routes identical.
            raise ValueError(f"unsupported ICMP type {icmp_type!r}")
        fields["tp_src"] = icmp_type
        fields["tp_dst"] = 0


def _extract_arp(data: bytes, fields: Dict[str, Any]) -> None:
    if len(data) - _ETH_SIZE < _ARP.size:
        return
    htype, ptype, hlen, plen, opcode, _smac, sip, _tmac, tip = _ARP.unpack_from(
        data, _ETH_SIZE
    )
    if (htype, ptype, hlen, plen) != _ARP_ETH_IPV4:
        return
    if opcode not in (1, 2):
        # ArpPacket refuses unknown opcodes with a ValueError; mirror it.
        raise ValueError(f"unsupported ARP opcode {opcode!r}")
    fields["nw_proto"] = opcode
    fields["nw_src"] = Ipv4Address(sip)
    fields["nw_dst"] = Ipv4Address(tip)


def mac_pair_of(data: bytes) -> Optional[Tuple[MacAddress, MacAddress]]:
    """``(src, dst)`` MAC addresses, or ``None`` for a sub-header runt.

    The length-check-only contract matches ``EthernetFrame.unpack``: the
    callers that used a try/except around a full unpack just to learn two
    addresses (standalone MAC learning, host NIC filtering) get the same
    accept/reject behaviour without building the frame object.
    """
    if len(data) < _ETH_SIZE:
        return None
    return (MacAddress(data[6:12]), MacAddress(data[0:6]))
