"""Rendering of trace exports: merged timeline and per-rule summary.

``repro trace run.jsonl`` is the debugging front door: the timeline
interleaves every layer's events in simulation order, and the summary
answers the Fig. 12 / Table II forensic questions directly — which
message fired which rule in which state, and when the attack state
machine moved.  A traced interruption run reproduces the paper's
unauthorized-access window from the summary alone: the firewall's
FLOW_MOD shows up as the message a σ2 rule fired on, immediately
followed by the ``sigma2 -> sigma3`` transition that severed the
connection.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

#: How many triggering messages to keep per rule in the summary.
_SAMPLES_PER_RULE = 5


def _fmt_connection(connection: Any) -> str:
    if isinstance(connection, (list, tuple)) and len(connection) == 2:
        return f"({connection[0]}, {connection[1]})"
    return str(connection)


def _event_detail(event: Dict[str, Any]) -> str:
    """One-line human rendering of an event's payload."""
    kind = event.get("kind")
    if kind == "message":
        return (f"{_fmt_connection(event.get('connection'))} "
                f"{event.get('direction')} {event.get('type')} "
                f"xid={event.get('xid')} len={event.get('length')} "
                f"msg={event.get('msg_id')}")
    if kind == "rule_eval":
        fired = "FIRED" if event.get("fired") else "no match"
        return (f"{event.get('state')}/{event.get('rule')} on "
                f"msg={event.get('msg_id')}: {fired}")
    if kind == "rule_fired":
        return (f"{event.get('state')}/{event.get('rule')} on "
                f"{event.get('type')} xid={event.get('xid')} "
                f"msg={event.get('msg_id')} "
                f"{_fmt_connection(event.get('connection'))}")
    if kind == "action":
        return (f"{event.get('action')} by {event.get('state')}/"
                f"{event.get('rule')}")
    if kind == "state":
        return f"{event.get('from')} -> {event.get('to')}"
    if kind == "message_drop":
        return (f"msg={event.get('msg_id')} {event.get('type')} "
                f"dropped in {event.get('state')}")
    if kind == "deque":
        return (f"{event.get('op')}({event.get('deque')}) "
                f"size={event.get('size')}")
    if kind in ("flow_install", "flow_evict"):
        return (f"{event.get('switch')} {event.get('command') or event.get('reason')} "
                f"prio={event.get('priority')} {event.get('match')}")
    if kind == "monitor":
        data = event.get("data")
        return (f"{event.get('monitor')} {event.get('sample')}"
                + (f" {data}" if data else ""))
    payload = {k: v for k, v in event.items()
               if k not in ("seq", "t", "kind")}
    return " ".join(f"{k}={v}" for k, v in sorted(payload.items()))


def render_timeline(
    events: Iterable[Dict[str, Any]],
    kinds: Optional[Iterable[str]] = None,
    limit: Optional[int] = None,
) -> str:
    """The merged per-event timeline, in (t, seq) order."""
    wanted = set(kinds) if kinds else None
    ordered = sorted(
        (e for e in events
         if wanted is None or e.get("kind") in wanted),
        key=lambda e: (e.get("t", 0.0), e.get("seq", 0)),
    )
    shown = ordered if limit is None else ordered[:limit]
    lines = [
        f"t={event.get('t', 0.0):>12.6f}  {event.get('kind', '?'):<13} "
        f"{_event_detail(event)}"
        for event in shown
    ]
    if limit is not None and len(ordered) > limit:
        lines.append(f"... {len(ordered) - limit} more event(s)")
    return "\n".join(lines)


def summarize(events: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate a trace into the per-rule / per-layer summary dict."""
    events = list(events)
    by_kind: Dict[str, int] = {}
    messages_by_type: Dict[str, int] = {}
    rules: Dict[str, Dict[str, Any]] = {}
    transitions: List[Dict[str, Any]] = []
    drops: Dict[str, int] = {}
    deque_ops: Dict[str, int] = {}
    flow_installs: Dict[str, int] = {}
    flow_evictions: Dict[str, int] = {}
    eviction_reasons: Dict[str, int] = {}
    occupancy_peak = 0
    monitors: Dict[str, int] = {}
    t_first: Optional[float] = None
    t_last: Optional[float] = None

    for event in events:
        kind = event.get("kind", "?")
        by_kind[kind] = by_kind.get(kind, 0) + 1
        t = event.get("t")
        if isinstance(t, (int, float)):
            t_first = t if t_first is None else min(t_first, t)
            t_last = t if t_last is None else max(t_last, t)
        if kind == "message":
            type_name = str(event.get("type"))
            messages_by_type[type_name] = messages_by_type.get(type_name, 0) + 1
        elif kind == "rule_fired":
            key = f"{event.get('state')}/{event.get('rule')}"
            entry = rules.get(key)
            if entry is None:
                entry = rules[key] = {
                    "state": event.get("state"),
                    "rule": event.get("rule"),
                    "count": 0,
                    "first_t": event.get("t"),
                    "last_t": event.get("t"),
                    "messages": [],
                }
            entry["count"] += 1
            entry["last_t"] = event.get("t")
            if len(entry["messages"]) < _SAMPLES_PER_RULE:
                entry["messages"].append({
                    "t": event.get("t"),
                    "type": event.get("type"),
                    "xid": event.get("xid"),
                    "msg_id": event.get("msg_id"),
                    "connection": event.get("connection"),
                    "direction": event.get("direction"),
                })
        elif kind == "state":
            transitions.append({
                "t": event.get("t"),
                "from": event.get("from"),
                "to": event.get("to"),
            })
        elif kind == "message_drop":
            type_name = str(event.get("type"))
            drops[type_name] = drops.get(type_name, 0) + 1
        elif kind == "deque":
            name = str(event.get("deque"))
            deque_ops[name] = deque_ops.get(name, 0) + 1
        elif kind == "flow_install":
            name = str(event.get("switch"))
            flow_installs[name] = flow_installs.get(name, 0) + 1
            size = event.get("size")
            if isinstance(size, int):
                occupancy_peak = max(occupancy_peak, size)
        elif kind == "flow_evict":
            name = str(event.get("switch"))
            flow_evictions[name] = flow_evictions.get(name, 0) + 1
            reason = str(event.get("reason"))
            eviction_reasons[reason] = eviction_reasons.get(reason, 0) + 1
            size = event.get("size")
            if isinstance(size, int):
                occupancy_peak = max(occupancy_peak, size)
        elif kind == "monitor":
            name = str(event.get("monitor"))
            monitors[name] = monitors.get(name, 0) + 1

    packet_ins = messages_by_type.get("PACKET_IN", 0)
    span = (t_last - t_first) if (t_first is not None and t_last > t_first) \
        else 0.0
    return {
        "events": len(events),
        "t_first": t_first,
        "t_last": t_last,
        "by_kind": by_kind,
        "messages_by_type": messages_by_type,
        "packet_in_rate": (packet_ins / span) if span else None,
        "rules": [rules[key] for key in sorted(rules)],
        "transitions": transitions,
        "drops_by_type": drops,
        "deque_ops": deque_ops,
        "flow_installs": flow_installs,
        "flow_evictions": flow_evictions,
        "eviction_reasons": eviction_reasons,
        "table_occupancy_peak": occupancy_peak,
        "monitors": monitors,
    }


def render_summary(summary: Dict[str, Any]) -> str:
    """Human rendering of :func:`summarize`'s output."""
    span = ""
    if summary["t_first"] is not None:
        span = (f" spanning t={summary['t_first']:.6f}"
                f" .. t={summary['t_last']:.6f}")
    lines = [f"trace: {summary['events']} event(s){span}"]

    if summary["messages_by_type"]:
        counted = ", ".join(
            f"{name} x{count}"
            for name, count in sorted(summary["messages_by_type"].items())
        )
        lines.append(f"messages interposed: {counted}")
    if summary.get("packet_in_rate"):
        lines.append(
            f"PACKET_IN rate: {summary['packet_in_rate']:.1f}/s over the "
            f"traced span")
    if summary["drops_by_type"]:
        counted = ", ".join(
            f"{name} x{count}"
            for name, count in sorted(summary["drops_by_type"].items())
        )
        lines.append(f"messages dropped: {counted}")

    if summary["rules"]:
        lines.append("")
        lines.append("rule firings:")
        for entry in summary["rules"]:
            lines.append(
                f"  {entry['state']}/{entry['rule']} x{entry['count']} "
                f"first=t{entry['first_t']:.6f} last=t{entry['last_t']:.6f}"
            )
            for sample in entry["messages"]:
                lines.append(
                    f"    t={sample['t']:.6f} {sample['type']} "
                    f"xid={sample['xid']} msg={sample['msg_id']} "
                    f"{_fmt_connection(sample['connection'])} "
                    f"{sample['direction']}"
                )
            if entry["count"] > len(entry["messages"]):
                lines.append(
                    f"    ... {entry['count'] - len(entry['messages'])} "
                    f"more firing(s)"
                )

    if summary["transitions"]:
        lines.append("")
        lines.append("state transitions:")
        for hop in summary["transitions"]:
            lines.append(
                f"  t={hop['t']:.6f} {hop['from']} -> {hop['to']}"
            )

    extras = []
    if summary["flow_installs"]:
        extras.append("flow installs: " + ", ".join(
            f"{k} x{v}" for k, v in sorted(summary["flow_installs"].items())))
    if summary["flow_evictions"]:
        extras.append("flow evictions: " + ", ".join(
            f"{k} x{v}" for k, v in sorted(summary["flow_evictions"].items())))
    if summary.get("eviction_reasons"):
        extras.append("evictions by reason: " + ", ".join(
            f"{k} x{v}" for k, v in sorted(summary["eviction_reasons"].items())))
    if summary.get("table_occupancy_peak"):
        extras.append(
            f"table occupancy peak: {summary['table_occupancy_peak']} "
            f"entr{'y' if summary['table_occupancy_peak'] == 1 else 'ies'}")
    if summary["deque_ops"]:
        extras.append("deque ops: " + ", ".join(
            f"{k} x{v}" for k, v in sorted(summary["deque_ops"].items())))
    if summary["monitors"]:
        extras.append("monitor samples: " + ", ".join(
            f"{k} x{v}" for k, v in sorted(summary["monitors"].items())))
    if extras:
        lines.append("")
        lines.extend(extras)
    return "\n".join(lines)


def render_detections(detections: List[Dict[str, Any]],
                      summary: Optional[Dict[str, Any]] = None) -> str:
    """Human rendering of a run's detector scores (``repro detect run``).

    ``detections`` is the list produced by
    :func:`repro.defense.evaluate_detectors`; ``summary`` optionally adds
    the :func:`repro.defense.sketch_summary` headline numbers.
    """

    def score(value: Optional[float], fmt: str = "{:.2f}") -> str:
        return fmt.format(value) if value is not None else "-"

    lines: List[str] = []
    if summary:
        gap = summary.get("pktin_mean_gap_s")
        lines.append(
            f"sketch: {summary.get('frames', 0)} frame(s), "
            f"{summary.get('packet_ins', 0)} PACKET_IN(s)"
            + (f", mean PACKET_IN gap {gap * 1000:.3f} ms" if gap else "")
        )
        busiest = summary.get("busiest_port")
        if busiest:
            lines.append(
                f"busiest port: {busiest} "
                f"({summary.get('busiest_port_frames', 0)} frames)"
            )
    header = (f"{'detector':<14} {'prec':>6} {'recall':>6} {'lat s':>7} "
              f"{'tp':>5} {'fp':>5} {'fn':>5} {'windows':>8}  config")
    lines += [header, "-" * len(header)]
    for d in detections:
        lines.append(
            f"{d['detector']:<14} {score(d['precision']):>6} "
            f"{score(d['recall']):>6} "
            f"{score(d['detection_latency_s'], '{:.3f}'):>7} "
            f"{d['tp']:>5} {d['fp']:>5} {d['fn']:>5} {d['windows']:>8}  "
            f"{d['config']}"
        )
    return "\n".join(lines)
