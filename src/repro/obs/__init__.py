"""Observability layer: the control-plane trace subsystem.

See ``docs/OBSERVABILITY.md`` for the event schema and workflow.
"""

from repro.obs.render import (
    render_detections,
    render_summary,
    render_timeline,
    summarize,
)
from repro.obs.trace import (
    DEFAULT_CAPACITY,
    TraceCollector,
    event_to_json,
    load_events,
    wire_run,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "TraceCollector",
    "event_to_json",
    "load_events",
    "render_detections",
    "render_summary",
    "render_timeline",
    "summarize",
    "wire_run",
]
