"""The trace collector: a ring buffer of sim-time-stamped typed events.

ATTAIN's §VI monitors aggregate counters; what they cannot answer is
*which* message triggered *which* rule in *which* state — the forensic
record the paper's Fig. 12 / Table II analysis walks through by hand.
:class:`TraceCollector` is that record: every instrumented layer (proxy
interception, executor rule evaluation, attack-state transitions, deque
Δ operations, switch flow-table changes, monitor samples) emits one
typed event per occurrence, stamped with the simulation clock, into a
bounded ring buffer.

Zero overhead when disabled: instrumented hot paths hold a ``tracer``
attribute that is ``None`` by default, and every site guards its emit
with a single ``if tracer is not None`` — one attribute load and an
identity check, nothing else.  The fast-lane benchmarks
(``benchmarks/test_fastpath.py``) pin this down.

Determinism: events carry only simulation-derived data (sim time, the
per-run sequence number, message ids, xids), never wall-clock time or
process identity, so the same seed and the same cell produce a
byte-identical JSONL export — the property the campaign resume/debug
workflow depends on (``tests/obs/test_trace_determinism.py``).

Event schema (one JSON object per line, sorted keys)::

    {"seq": 17, "t": 50.00132, "kind": "rule_fired", ...payload}

Kinds emitted by the stock instrumentation:

=================  ====================================================
``message``        proxy interception: connection, direction, type, xid
``message_drop``   the executor removed the original from the out list
``rule_eval``      one conditional evaluated (fired true/false)
``rule_fired``     a rule fired: state, rule, and the message's identity
``action``         a capability actuation (non-GOTOSTATE action applied)
``state``          a GOTOSTATE transition: from, to
``deque``          a Δ operation: deque name, op, size after
``flow_install``   a FLOW_MOD changed a switch's flow table
``flow_evict``     a flow entry left the table (idle/hard/delete)
``monitor``        one monitor sample (ping/iperf/control-plane record)
=================  ====================================================
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional

#: Default ring capacity — enough for a full paper-scale experiment
#: (~200k events) while bounding memory on runaway workloads.
DEFAULT_CAPACITY = 262_144


def event_to_json(event: Dict[str, Any]) -> str:
    """Canonical JSONL encoding: sorted keys, non-JSON values stringified."""
    return json.dumps(event, sort_keys=True, default=str,
                      separators=(",", ":"))


class TraceCollector:
    """Bounded, sim-time-stamped event sink shared by every layer.

    ``clock`` supplies the timestamp for events whose site has no better
    notion of time (deque ops, proxy interception); sites that know the
    event's own time (monitor samples) pass ``t=`` explicitly.  Bind the
    clock to the run's engine with :meth:`bind_clock` before wiring.
    """

    __slots__ = ("capacity", "clock", "events_total", "counts", "_ring",
                 "_seq")

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self.clock = clock or (lambda: 0.0)
        self.events_total = 0
        self.counts: Dict[str, int] = {}
        self._ring: "deque[Dict[str, Any]]" = deque(maxlen=capacity)
        self._seq = 0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the collector at a run's simulation clock."""
        self.clock = clock

    # ------------------------------------------------------------------ #
    # Emission
    # ------------------------------------------------------------------ #

    def emit(self, kind: str, t: Optional[float] = None, **data: Any) -> None:
        """Record one event (ring-buffered: oldest events fall off)."""
        self._seq += 1
        event: Dict[str, Any] = dict(data)
        event["seq"] = self._seq
        event["t"] = round(self.clock() if t is None else t, 9)
        event["kind"] = kind
        self.events_total += 1
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self._ring.append(event)

    # ------------------------------------------------------------------ #
    # Reading / export
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def events_dropped(self) -> int:
        """Events that fell off the ring (buffer overwrote the oldest)."""
        return self.events_total - len(self._ring)

    def events(self, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        if kind is None:
            return list(self._ring)
        return [event for event in self._ring if event["kind"] == kind]

    def count(self, kind: str) -> int:
        return self.counts.get(kind, 0)

    def jsonl_lines(self) -> Iterator[str]:
        """The retained events as canonical JSONL lines (no newlines)."""
        for event in self._ring:
            yield event_to_json(event)

    def to_jsonl(self) -> str:
        """The full export: one event per line, trailing newline."""
        lines = list(self.jsonl_lines())
        return "\n".join(lines) + ("\n" if lines else "")

    def dump_jsonl(self, path) -> int:
        """Write the export to ``path``; returns the event count."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return len(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self.counts.clear()
        self.events_total = 0
        self._seq = 0

    def __repr__(self) -> str:
        return (f"<TraceCollector events={len(self._ring)}"
                f" total={self.events_total} kinds={len(self.counts)}>")


def load_events(path) -> List[Dict[str, Any]]:
    """Read a trace JSONL file back into event dicts (torn lines skipped)."""
    events: List[Dict[str, Any]] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a killed writer
            if isinstance(event, dict):
                events.append(event)
    return events


def wire_run(
    tracer: Optional[TraceCollector],
    engine,
    injector=None,
    switches: Iterable = (),
    monitors: Iterable = (),
) -> Optional[TraceCollector]:
    """Attach one collector to every instrumented layer of a run.

    Accepts ``tracer=None`` so callers can wire unconditionally —
    ``wire_run(trace, engine, ...)`` is a no-op when tracing is off.
    """
    if tracer is None:
        return None
    tracer.bind_clock(lambda: engine.now)
    if injector is not None:
        injector.set_tracer(tracer)
    for switch in switches:
        switch.tracer = tracer
    for monitor in monitors:
        monitor.tracer = tracer
    return tracer
