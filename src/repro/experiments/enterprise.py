"""The small-enterprise case-study network (Section VII-A, Figs. 8–9).

System model:

* ``h1`` — external-facing Web server;
* ``h2`` — gateway interface to the Internet router (external users enter
  here);
* ``h3``, ``h4`` — internal service servers;
* ``h5``, ``h6`` — user workstations;
* ``s1`` — external network switch (h1, h2 attach here);
* ``s2`` — DMZ firewall switch (joins the external and internal sides);
* ``s3`` — intranet switch for servers (h3, h4);
* ``s4`` — intranet switch for workstations (h5, h6);
* ``c1`` — the single controller, with one control connection per switch:
  N_C = {(c1,s1), (c1,s2), (c1,s3), (c1,s4)}.

Links are 100 Mbps (the GENI testbed's links).  The enterprise "enforce[s]
isolation through network partitioning": the DMZ firewall app on c1 blocks
external-origin traffic (from h2) to the internal hosts h3–h6 at s2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.controllers import (
    CONTROLLER_FACTORIES,
    Controller,
    DmzFirewallApp,
    FirewallPolicy,
)
from repro.dataplane import FailMode, Network, Topology
from repro.core.model import SystemModel
from repro.sim.engine import SimulationEngine

CONTROLLER_NAME = "c1"
EXTERNAL_USER_HOST = "h2"       # gateway: where external users enter
EXTERNAL_NETWORK_HOSTS = ("h1",)  # public-facing
INTERNAL_HOST_NAMES = ("h3", "h4", "h5", "h6")
DMZ_SWITCH = "s2"
LINK_BANDWIDTH = 100e6
LINK_LATENCY = 0.0002


def enterprise_topology() -> Topology:
    """Build the Fig. 8 data plane (6 hosts, 4 switches, tree topology)."""
    topo = Topology("enterprise")
    for index in range(1, 7):
        topo.add_host(f"h{index}", ip=f"10.0.0.{index}")
    for index in range(1, 5):
        topo.add_switch(f"s{index}", datapath_id=index)
    # External side: h1 (web server) and h2 (gateway) on s1.
    topo.add_link("h1", "s1", LINK_BANDWIDTH, LINK_LATENCY)
    topo.add_link("h2", "s1", LINK_BANDWIDTH, LINK_LATENCY)
    # DMZ firewall switch joins external and both intranet switches.
    topo.add_link("s1", "s2", LINK_BANDWIDTH, LINK_LATENCY)
    topo.add_link("s2", "s3", LINK_BANDWIDTH, LINK_LATENCY)
    topo.add_link("s2", "s4", LINK_BANDWIDTH, LINK_LATENCY)
    # Internal servers on s3, workstations on s4.
    topo.add_link("h3", "s3", LINK_BANDWIDTH, LINK_LATENCY)
    topo.add_link("h4", "s3", LINK_BANDWIDTH, LINK_LATENCY)
    topo.add_link("h5", "s4", LINK_BANDWIDTH, LINK_LATENCY)
    topo.add_link("h6", "s4", LINK_BANDWIDTH, LINK_LATENCY)
    return topo


def enterprise_system_model(topology: Optional[Topology] = None) -> SystemModel:
    """The Fig. 9 control plane: c1 connected to each of the four switches."""
    topo = topology or enterprise_topology()
    return SystemModel.from_topology(
        topo,
        controllers=[CONTROLLER_NAME],
        control_connections=[
            (CONTROLLER_NAME, f"s{index}") for index in range(1, 5)
        ],
    )


@dataclass
class EnterpriseSetup:
    """A fully built case-study network ready to run."""

    engine: SimulationEngine
    topology: Topology
    system: SystemModel
    network: Network
    controller: Controller
    controller_kind: str
    firewall: Optional[DmzFirewallApp]

    def host_ip(self, name: str) -> str:
        return str(self.network.host_ip(name))

    @property
    def external_user_ip(self) -> str:
        return self.host_ip(EXTERNAL_USER_HOST)

    @property
    def internal_ips(self) -> Tuple[str, ...]:
        return tuple(self.host_ip(name) for name in INTERNAL_HOST_NAMES)


def build_enterprise(
    engine: Optional[SimulationEngine] = None,
    controller_kind: str = "floodlight",
    fail_mode: FailMode = FailMode.SECURE,
    with_firewall: bool = True,
    behavior_override=None,
) -> EnterpriseSetup:
    """Instantiate the case-study network with the chosen controller.

    ``with_firewall`` installs the DMZ isolation policy (the Table II
    experiment needs it; the Fig. 11 suppression experiment runs the plain
    learning switch, matching the paper's setup).  ``behavior_override``
    replaces the controller's stock learning-switch behaviour — the lever
    the fidelity-ablation benchmarks flip.
    """
    factory = CONTROLLER_FACTORIES.get(controller_kind)
    if factory is None:
        raise ValueError(
            f"unknown controller {controller_kind!r}; "
            f"choose from {sorted(CONTROLLER_FACTORIES)}"
        )
    engine = engine or SimulationEngine()
    topology = enterprise_topology()
    system = enterprise_system_model(topology)
    network = Network(engine, topology, fail_mode=fail_mode)

    firewall: Optional[DmzFirewallApp] = None
    extra_apps = []
    if with_firewall:
        policy = FirewallPolicy.isolate(
            external_ips=[str(network.host_ip(EXTERNAL_USER_HOST))],
            internal_ips=[str(network.host_ip(name)) for name in INTERNAL_HOST_NAMES],
        )
        # The firewall builds its drop rules with the host controller's own
        # match personality — the lever behind the Table II Ryu anomaly.
        from repro.controllers.floodlight import FLOODLIGHT_BEHAVIOR
        from repro.controllers.pox import POX_BEHAVIOR
        from repro.controllers.ryu import RYU_BEHAVIOR

        behavior = behavior_override or {
            "floodlight": FLOODLIGHT_BEHAVIOR,
            "pox": POX_BEHAVIOR,
            "ryu": RYU_BEHAVIOR,
        }[controller_kind]
        dmz_dpid = topology.switches[DMZ_SWITCH].datapath_id
        firewall = DmzFirewallApp(policy, frozenset({dmz_dpid}), behavior)
        extra_apps.append(firewall)

    controller = factory(engine, name=controller_kind, extra_apps=extra_apps,
                         behavior=behavior_override)
    return EnterpriseSetup(
        engine=engine,
        topology=topology,
        system=system,
        network=network,
        controller=controller,
        controller_kind=controller_kind,
        firewall=firewall,
    )
