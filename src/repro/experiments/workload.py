"""Workload x attack campaign cells: adversarial traffic on fabrics.

A *workload cell* is one fabric run driven by a registered traffic
source from :mod:`repro.workloads` — floods, table-overflow churn,
benign mixes — optionally composed with a registry attack on the
control channel.  The harness is a thin veneer over
:func:`repro.experiments.fabric.run_fabric_experiment`: the fabric
machinery already builds/shards the topology and collects table and
PACKET_IN metrics; this module's job is campaign ergonomics.

Campaign specs keep parameters flat (the XML front-end is attribute
based), so source parameters (``schedule``, ``keys``, ``senders``, ...)
may arrive either inside a ``workload_params`` dict or as top-level
cell params — :func:`run_cell` hoists the known source keys into
``workload_params`` before delegating.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.dataplane import FailMode
from repro.experiments.fabric import run_fabric_experiment
from repro.workloads import source_info

#: Source parameters a campaign spec may pass flat alongside the cell
#: params.  Everything else (``shards``, ``pairs``, ``table_capacity``,
#: ...) forwards to :func:`run_fabric_experiment` untouched.
SOURCE_PARAM_KEYS = (
    "schedule", "senders", "duration_s", "tick_s",
    "keys", "spoof_macs", "flows", "udp_ratio", "icmp_ratio", "syn_ratio",
)

#: Detector parameters a campaign spec may likewise pass flat; hoisted
#: into ``detector_params`` (``detectors`` itself forwards directly —
#: ``fabric_config`` splits comma-separated names).
DETECTOR_PARAM_KEYS = (
    "threshold_pps", "ratio", "min_frames", "contamination",
)


def run_cell(
    controller: str = "none",
    attack: Optional[str] = None,
    fail_mode: str = FailMode.SECURE.value,
    seed: int = 0,
    attack_params: Optional[Dict[str, Any]] = None,
    topology: str = "fat-tree-k4",
    workload: str = "benign-mix",
    workload_params: Optional[Dict[str, Any]] = None,
    trace=None,
    **params,
) -> Dict[str, Any]:
    """Campaign entry point: one workload cell -> metrics dict.

    ``workload`` must name a registered traffic source (``repro
    workload list``); ``topology`` is a generated-fabric descriptor.
    Flat source parameters are hoisted into ``workload_params`` (an
    explicit ``workload_params`` entry wins over its flat twin).
    """
    source_info(workload)  # fail fast on unknown source names
    merged = dict(workload_params or {})
    for key in SOURCE_PARAM_KEYS:
        if key in params:
            merged.setdefault(key, params.pop(key))
    detector_params = dict(params.pop("detector_params", None) or {})
    for key in DETECTOR_PARAM_KEYS:
        if key in params:
            detector_params.setdefault(key, params.pop(key))
    if detector_params:
        params["detector_params"] = detector_params
    result = run_fabric_experiment(
        topology=topology,
        controller=controller,
        attack=attack,
        fail_mode=fail_mode,
        seed=seed,
        attack_params=attack_params,
        workload=workload,
        workload_params=merged,
        trace=trace,
        **params,
    )
    record = result.record()
    record["experiment"] = "workload"
    return record
