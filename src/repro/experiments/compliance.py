"""OFTest-style switch compliance suite.

The related-work section positions ATTAIN as subsuming OFTest's
methodology — "OFTest validates switches for OpenFlow compliance by
simulating control and data plane elements with a single switch under
test".  This module is that harness for the repository's switch model (or
any object with the same interface): a scripted controller drives one
switch through the OpenFlow 1.0 behaviours the attacks rely on, and each
check reports pass/fail with a diagnostic detail string.

Usage::

    from repro.experiments.compliance import run_compliance_suite
    report = run_compliance_suite()
    assert report.all_passed, report.render()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.dataplane import FailMode, OpenFlowSwitch, connect_endpoints
from repro.netlib import EtherType, EthernetFrame, MacAddress
from repro.openflow import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowModCommand,
    FlowRemoved,
    GetConfigReply,
    GetConfigRequest,
    Hello,
    Match,
    MessageFramer,
    OutputAction,
    PacketIn,
    PacketOut,
    Port,
    SetConfig,
    StatsReply,
    StatsRequest,
    StatsType,
)
from repro.openflow.constants import FlowModFlags, OFP_NO_BUFFER
from repro.openflow.stats import (
    flow_stats_request,
    parse_aggregate_stats_reply,
    parse_flow_stats_reply,
)
from repro.sim import SimulationEngine

MAC_A = MacAddress("00:00:00:00:00:aa")
MAC_B = MacAddress("00:00:00:00:00:bb")


def data_frame(src=MAC_A, dst=MAC_B, payload=b"compliance-payload" * 10):
    return EthernetFrame(dst, src, EtherType.IPV4, payload).pack()


class _ScriptedController:
    """Records every decoded message from the switch under test."""

    def __init__(self, engine):
        self.engine = engine
        self.channel = None
        self.framer = MessageFramer()
        self.messages = []
        self.closed = False

    def channel_opened(self, channel):
        self.channel = channel
        self.send(Hello())

    def bytes_received(self, channel, data):
        for message in self.framer.feed(data):
            self.messages.append(message)
            if isinstance(message, EchoRequest):
                self.send(EchoReply.for_request(message))

    def channel_closed(self, channel):
        self.closed = True

    def send(self, message):
        if self.channel is not None and self.channel.open:
            self.channel.send(message.pack())

    def of_type(self, cls):
        return [m for m in self.messages if isinstance(m, cls)]

    def last_of_type(self, cls):
        found = self.of_type(cls)
        return found[-1] if found else None


class ComplianceRig:
    """One switch under test with two data ports and a scripted controller."""

    def __init__(self, fail_mode: FailMode = FailMode.SECURE) -> None:
        self.engine = SimulationEngine()
        self.switch = OpenFlowSwitch(self.engine, "sut", datapath_id=0xC0FFEE,
                                     fail_mode=fail_mode)
        self.egress: Dict[int, List[bytes]] = {1: [], 2: [], 3: []}
        for port in (1, 2, 3):
            self.switch.attach_port(
                port, lambda data, p=port: self.egress[p].append(data)
            )
        self.controller = _ScriptedController(self.engine)
        self.switch.set_connect_factory(
            lambda sw: connect_endpoints(
                self.engine, sw, self.controller, latency_s=0.001
            )[0]
        )
        self.switch.start()
        self.run(1.0)

    def run(self, seconds: float) -> None:
        self.engine.run(until=self.engine.now + seconds)

    def send(self, message) -> None:
        self.controller.send(message)
        self.run(0.1)

    def inject(self, port: int, data: bytes) -> None:
        self.switch.frame_received(port, data)
        self.run(0.1)


@dataclass
class CheckResult:
    name: str
    passed: bool
    detail: str = ""


@dataclass
class ComplianceReport:
    results: List[CheckResult] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return all(result.passed for result in self.results)

    @property
    def passed_count(self) -> int:
        return sum(1 for result in self.results if result.passed)

    def render(self) -> str:
        lines = [f"switch compliance: {self.passed_count}/{len(self.results)} checks"]
        for result in self.results:
            status = "PASS" if result.passed else "FAIL"
            # Details are diagnostics for failures; passes stay clean.
            suffix = f" — {result.detail}" if (not result.passed and result.detail) else ""
            lines.append(f"  [{status}] {result.name}{suffix}")
        return "\n".join(lines)


Check = Callable[[], Tuple[bool, str]]
_CHECKS: List[Tuple[str, Check]] = []


def _check(name: str):
    def register(fn: Check) -> Check:
        _CHECKS.append((name, fn))
        return fn

    return register


# ---------------------------------------------------------------------- #
# Handshake and liveness
# ---------------------------------------------------------------------- #


@_check("handshake: HELLO then FEATURES_REPLY with dpid and ports")
def check_handshake():
    rig = ComplianceRig()
    rig.send(FeaturesRequest(xid=11))
    if not rig.controller.of_type(Hello):
        return False, "switch never sent HELLO"
    reply = rig.controller.last_of_type(FeaturesReply)
    if reply is None:
        return False, "no FEATURES_REPLY"
    if reply.xid != 11:
        return False, f"xid {reply.xid} != 11"
    if reply.datapath_id != 0xC0FFEE:
        return False, f"dpid 0x{reply.datapath_id:x}"
    ports = sorted(p.port_no for p in reply.ports)
    return ports == [1, 2, 3], f"ports {ports}"


@_check("echo: ECHO_REPLY mirrors xid and payload")
def check_echo():
    rig = ComplianceRig()
    rig.send(EchoRequest(payload=b"mirror-me", xid=77))
    reply = next((m for m in rig.controller.of_type(EchoReply) if m.xid == 77), None)
    if reply is None:
        return False, "no matching ECHO_REPLY"
    return reply.payload == b"mirror-me", f"payload {reply.payload!r}"


@_check("barrier: BARRIER_REPLY mirrors xid")
def check_barrier():
    rig = ComplianceRig()
    rig.send(BarrierRequest(xid=9))
    reply = rig.controller.last_of_type(BarrierReply)
    return (reply is not None and reply.xid == 9), f"reply {reply!r}"


@_check("config: SET_CONFIG miss_send_len reflected by GET_CONFIG")
def check_config():
    rig = ComplianceRig()
    rig.send(SetConfig(miss_send_len=64))
    rig.send(GetConfigRequest(xid=4))
    reply = rig.controller.last_of_type(GetConfigReply)
    return (reply is not None and reply.miss_send_len == 64), f"reply {reply!r}"


# ---------------------------------------------------------------------- #
# Miss path and buffering
# ---------------------------------------------------------------------- #


@_check("miss: PACKET_IN buffered and truncated to miss_send_len")
def check_miss_truncation():
    rig = ComplianceRig()
    rig.send(SetConfig(miss_send_len=64))
    frame = data_frame()
    rig.inject(1, frame)
    packet_in = rig.controller.last_of_type(PacketIn)
    if packet_in is None:
        return False, "no PACKET_IN"
    if packet_in.buffer_id == OFP_NO_BUFFER:
        return False, "not buffered"
    if packet_in.total_len != len(frame):
        return False, f"total_len {packet_in.total_len}"
    return len(packet_in.data) == 64, f"data len {len(packet_in.data)}"


@_check("buffering: PACKET_OUT releases the full buffered frame")
def check_packet_out_release():
    rig = ComplianceRig()
    frame = data_frame()
    rig.inject(1, frame)
    packet_in = rig.controller.last_of_type(PacketIn)
    rig.send(PacketOut(buffer_id=packet_in.buffer_id, in_port=1,
                       actions=[OutputAction(2)]))
    return rig.egress[2] == [frame], f"egress {len(rig.egress[2])} frames"


@_check("buffering: FLOW_MOD with buffer_id installs and releases")
def check_flow_mod_release():
    rig = ComplianceRig()
    frame = data_frame()
    rig.inject(1, frame)
    packet_in = rig.controller.last_of_type(PacketIn)
    rig.send(FlowMod(Match(in_port=1), buffer_id=packet_in.buffer_id,
                     actions=[OutputAction(2)]))
    if rig.egress[2] != [frame]:
        return False, "buffered frame not released"
    return len(rig.switch.flow_table) == 1, "flow not installed"


# ---------------------------------------------------------------------- #
# Flow table semantics
# ---------------------------------------------------------------------- #


@_check("forwarding: installed flow forwards without controller")
def check_flow_forwarding():
    rig = ComplianceRig()
    rig.send(FlowMod(Match(in_port=1), actions=[OutputAction(2)]))
    packet_ins_before = len(rig.controller.of_type(PacketIn))
    rig.inject(1, data_frame())
    if len(rig.controller.of_type(PacketIn)) != packet_ins_before:
        return False, "matched packet still sent to controller"
    return len(rig.egress[2]) == 1, f"egress {len(rig.egress[2])}"


@_check("priority: higher priority entry wins")
def check_priority():
    rig = ComplianceRig()
    rig.send(FlowMod(Match(in_port=1), priority=1, actions=[OutputAction(2)]))
    rig.send(FlowMod(Match(in_port=1), priority=10, actions=[OutputAction(3)]))
    rig.inject(1, data_frame())
    return (len(rig.egress[3]) == 1 and not rig.egress[2]), (
        f"port2={len(rig.egress[2])} port3={len(rig.egress[3])}"
    )


@_check("drop rule: empty action list drops matching packets")
def check_drop_rule():
    rig = ComplianceRig()
    rig.send(FlowMod(Match(in_port=1), actions=[]))
    rig.inject(1, data_frame())
    no_output = not rig.egress[2] and not rig.egress[3]
    no_packet_in = not rig.controller.of_type(PacketIn)
    return no_output and no_packet_in, "packet leaked"


@_check("flood: OFPP_FLOOD excludes the ingress port")
def check_flood():
    rig = ComplianceRig()
    rig.send(FlowMod(Match(in_port=1), actions=[OutputAction(Port.FLOOD)]))
    rig.inject(1, data_frame())
    return (not rig.egress[1] and len(rig.egress[2]) == 1
            and len(rig.egress[3]) == 1), (
        f"egress map {[len(rig.egress[p]) for p in (1, 2, 3)]}"
    )


@_check("delete: non-strict DELETE removes subsumed entries")
def check_delete_non_strict():
    rig = ComplianceRig()
    rig.send(FlowMod(Match(in_port=1), actions=[OutputAction(2)]))
    rig.send(FlowMod(Match(in_port=2), actions=[OutputAction(1)]))
    rig.send(FlowMod(Match(in_port=1), command=FlowModCommand.DELETE))
    return len(rig.switch.flow_table) == 1, f"{len(rig.switch.flow_table)} entries"


@_check("delete: strict DELETE requires exact match and priority")
def check_delete_strict():
    rig = ComplianceRig()
    rig.send(FlowMod(Match(in_port=1), priority=5, actions=[OutputAction(2)]))
    rig.send(FlowMod(Match(in_port=1), priority=6,
                     command=FlowModCommand.DELETE_STRICT))
    if len(rig.switch.flow_table) != 1:
        return False, "wrong-priority strict delete removed the entry"
    rig.send(FlowMod(Match(in_port=1), priority=5,
                     command=FlowModCommand.DELETE_STRICT))
    return len(rig.switch.flow_table) == 0, "exact strict delete did not remove"


@_check("timeouts: idle expiry removes entry and sends FLOW_REMOVED")
def check_idle_timeout():
    rig = ComplianceRig()
    rig.send(FlowMod(Match(in_port=1), idle_timeout=2,
                     flags=int(FlowModFlags.SEND_FLOW_REM),
                     actions=[OutputAction(2)]))
    rig.run(4.0)
    if len(rig.switch.flow_table) != 0:
        return False, "entry survived its idle timeout"
    removed = rig.controller.last_of_type(FlowRemoved)
    if removed is None:
        return False, "no FLOW_REMOVED"
    return removed.reason.name == "IDLE_TIMEOUT", removed.reason.name


@_check("timeouts: hard expiry fires even under continuous traffic")
def check_hard_timeout():
    rig = ComplianceRig()
    rig.send(FlowMod(Match(in_port=1), hard_timeout=2,
                     actions=[OutputAction(2)]))
    for _ in range(6):
        rig.inject(1, data_frame())
        rig.run(0.5)
    return len(rig.switch.flow_table) == 0, "entry survived its hard timeout"


# ---------------------------------------------------------------------- #
# Statistics
# ---------------------------------------------------------------------- #


@_check("stats: FLOW stats report per-entry packet/byte counters")
def check_flow_stats():
    rig = ComplianceRig()
    rig.send(FlowMod(Match(in_port=1), actions=[OutputAction(2)]))
    frame = data_frame()
    rig.inject(1, frame)
    rig.inject(1, frame)
    rig.send(flow_stats_request(xid=21))
    reply = rig.controller.last_of_type(StatsReply)
    if reply is None or reply.stats_type != StatsType.FLOW:
        return False, f"reply {reply!r}"
    entries = parse_flow_stats_reply(reply)
    if len(entries) != 1:
        return False, f"{len(entries)} records"
    entry = entries[0]
    return (entry.packet_count == 2 and entry.byte_count == 2 * len(frame)), (
        f"packets={entry.packet_count} bytes={entry.byte_count}"
    )


@_check("stats: AGGREGATE sums over matching entries")
def check_aggregate_stats():
    rig = ComplianceRig()
    rig.send(FlowMod(Match(in_port=1), actions=[OutputAction(2)]))
    rig.send(FlowMod(Match(in_port=2), actions=[OutputAction(1)]))
    rig.inject(1, data_frame())
    request = flow_stats_request(xid=22)
    rig.send(StatsRequest(StatsType.AGGREGATE, request.body, xid=22))
    reply = rig.controller.last_of_type(StatsReply)
    if reply is None or reply.stats_type != StatsType.AGGREGATE:
        return False, f"reply {reply!r}"
    packets, _bytes, flows = parse_aggregate_stats_reply(reply)
    return (packets == 1 and flows == 2), f"packets={packets} flows={flows}"


# ---------------------------------------------------------------------- #
# Fail modes
# ---------------------------------------------------------------------- #


@_check("fail-secure: misses dropped after controller loss")
def check_fail_secure():
    rig = ComplianceRig(FailMode.SECURE)
    rig.controller.channel.close()
    rig.run(1.0)
    rig.inject(1, data_frame())
    return (not rig.egress[2] and not rig.egress[3]
            and rig.switch.stats["dropped_no_controller"] == 1), "packet leaked"


@_check("fail-safe: standalone MAC learning after controller loss")
def check_fail_safe():
    rig = ComplianceRig(FailMode.STANDALONE)
    rig.controller.channel.close()
    rig.run(1.0)
    rig.inject(1, data_frame(src=MAC_A, dst=MAC_B))  # unknown dst: flood
    if not (rig.egress[2] and rig.egress[3]):
        return False, "unknown destination was not flooded"
    rig.inject(2, data_frame(src=MAC_B, dst=MAC_A))  # learned: unicast
    return len(rig.egress[1]) == 1, "learned destination was not unicast"


def run_compliance_suite() -> ComplianceReport:
    """Run every registered check against a fresh switch each time."""
    report = ComplianceReport()
    for name, check in _CHECKS:
        try:
            passed, detail = check()
        except Exception as exc:  # a crash is a failed check, not a crash
            passed, detail = False, f"exception: {exc!r}"
        report.results.append(CheckResult(name, passed, detail))
    return report


def run_cell(fail_mode: str = FailMode.SECURE.value, seed: int = 0,
             **_params) -> Dict[str, object]:
    """Campaign entry point: the whole compliance suite as one run record.

    The suite is deterministic and takes no controller/attack axes; the
    extra keyword arguments exist so campaign descriptors can dispatch to
    it uniformly.
    """
    report = run_compliance_suite()
    return {
        "experiment": "compliance",
        "fail_mode": fail_mode,
        "seed": seed,
        "checks_total": len(report.results),
        "checks_passed": report.passed_count,
        "all_passed": report.all_passed,
        "failed_checks": [r.name for r in report.results if not r.passed],
    }
