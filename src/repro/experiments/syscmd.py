"""SYSCMD routing: actuate workloads and monitors from attack descriptions.

"We note that practitioners can flexibly actuate monitors anywhere by
invoking the SYSCMD() action within attack descriptions" (Section VI-B3).
The paper's experiment scripts call SYSCMD(host, cmd) to start pings and
iperf endpoints at scripted times; this module provides the command
interpreter that turns those strings into simulated-host actions.

Supported commands (mirroring the utilities the paper runs):

* ``ping <target-host-or-ip> <count> [interval]``
* ``iperf -s [port]`` — start an iperf server;
* ``iperf -c <target-host-or-ip> <duration> [port]`` — run a client;
* ``capture`` — no-op acknowledgement (captures attach at build time).

Results land in the provided Ping/Iperf monitors, exactly as if the
harness had started them directly.
"""

from __future__ import annotations

import shlex
from typing import List, Optional

from repro.core.monitors import IperfMonitor, PingMonitor
from repro.dataplane.network import Network


class SysCmdError(Exception):
    """An attack description issued a command the router cannot honor."""


class HostCommandRouter:
    """Routes SYSCMD(host, command) strings onto simulated hosts."""

    def __init__(
        self,
        network: Network,
        ping_monitor: Optional[PingMonitor] = None,
        iperf_monitor: Optional[IperfMonitor] = None,
        strict: bool = True,
    ) -> None:
        self.network = network
        self.ping_monitor = ping_monitor or PingMonitor()
        self.iperf_monitor = iperf_monitor or IperfMonitor()
        self.strict = strict
        self.executed: List[tuple] = []
        self.rejected: List[tuple] = []

    # The callable signature RuntimeInjector.set_syscmd_router expects.
    def __call__(self, host_name: str, command: str) -> None:
        try:
            self._dispatch(host_name, command)
            self.executed.append((host_name, command))
        except SysCmdError:
            self.rejected.append((host_name, command))
            if self.strict:
                raise

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #

    def _dispatch(self, host_name: str, command: str) -> None:
        host = self.network.hosts.get(host_name)
        if host is None:
            raise SysCmdError(f"unknown host {host_name!r}")
        try:
            parts = shlex.split(command)
        except ValueError as exc:
            raise SysCmdError(f"unparseable command {command!r}: {exc}") from exc
        if not parts:
            raise SysCmdError("empty command")
        verb = parts[0]
        if verb == "ping":
            self._ping(host, parts[1:])
        elif verb == "iperf":
            self._iperf(host, parts[1:])
        elif verb == "capture":
            pass  # captures are attached at scenario-build time
        else:
            raise SysCmdError(f"unsupported command {verb!r}")

    def _resolve_ip(self, target: str):
        if target in self.network.hosts:
            return self.network.host_ip(target)
        from repro.netlib.addresses import Ipv4Address

        try:
            return Ipv4Address(target)
        except ValueError as exc:
            raise SysCmdError(f"unresolvable target {target!r}") from exc

    def _ping(self, host, args: List[str]) -> None:
        if len(args) < 2:
            raise SysCmdError("ping needs: <target> <count> [interval]")
        target = self._resolve_ip(args[0])
        try:
            count = int(args[1])
            interval = float(args[2]) if len(args) > 2 else 1.0
        except ValueError as exc:
            raise SysCmdError(f"bad ping arguments {args!r}") from exc
        if count < 1 or interval <= 0:
            raise SysCmdError(f"bad ping arguments {args!r}")
        self.ping_monitor.start_series(host, target, count, interval=interval,
                                       label=f"syscmd:{host.name}")

    def _iperf(self, host, args: List[str]) -> None:
        if not args:
            raise SysCmdError("iperf needs -s or -c")
        if args[0] == "-s":
            port = int(args[1]) if len(args) > 1 else 5001
            host.start_iperf_server(port)
            return
        if args[0] == "-c":
            if len(args) < 3:
                raise SysCmdError("iperf -c needs: <target> <duration> [port]")
            target_host = self.network.hosts.get(args[1])
            if target_host is None:
                raise SysCmdError(f"iperf target must be a host name, got {args[1]!r}")
            try:
                duration = float(args[2])
                port = int(args[3]) if len(args) > 3 else 5001
            except ValueError as exc:
                raise SysCmdError(f"bad iperf arguments {args!r}") from exc
            self.iperf_monitor.start_trial(host, target_host, duration=duration,
                                           port=port,
                                           label=f"syscmd:{host.name}")
            return
        raise SysCmdError(f"unsupported iperf mode {args[0]!r}")
