"""Fabric-scale experiments: sharded packet workloads on generated fabrics.

The paper's evaluation runs a 4-switch enterprise network; this harness
runs the same attack machinery against generated datacenter fabrics
(:mod:`repro.dataplane.fabrics`) with hundreds of switches, executed as a
sharded simulation (:mod:`repro.sim.shard`): the fabric is partitioned
into regions (fat-tree pods, leaf-spine leaves), each region runs on its
own engine, and cross-region frames/control bytes are exchanged at
conservative epoch barriers.

Two workloads:

* ``udp`` — controllerless throughput: proactive routes are preinstalled
  on every switch along the (deterministic BFS) path of each host pair,
  ARP tables are pre-populated, and each source streams fixed-size UDP
  datagrams.  This is the packets/sec scaling workload of
  ``benchmarks/test_fabric_scaling.py``.
* ``ping`` — control-plane-reactive ICMP series through a modelled
  controller (:class:`~repro.controllers.apps.FabricRoutingApp` — MAC
  learning floods, and a multi-path fabric turns a flood into a broadcast
  storm, so the controller routes instead).  With an ``attack``, the
  runtime injector and its proxies interpose every control connection in
  a dedicated *controller region*, preserving the paper's single
  total-ordering injector while the data plane is sharded.

Determinism: the region partition is a pure function of the config, so
results — including merged trace exports — are byte-identical for any
worker grouping (``shards``).  ``tests/sim/test_shard_determinism.py``
pins this down.
"""

from __future__ import annotations

import math
import multiprocessing
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.dataplane.fabrics import (
    FABRIC_CONTROL_LATENCY,
    FABRIC_LINK_LATENCY,
    Fabric,
    cut_links,
    generate_fabric,
    partition_topology,
)
from repro.dataplane.link import DataLink
from repro.dataplane.network import Network
from repro.dataplane.switch import FailMode
from repro.dataplane.topology import Topology
from repro.openflow.actions import OutputAction
from repro.openflow.match import Match
from repro.sim.shard import (
    BoundaryControlChannel,
    BoundaryHalf,
    BoundaryTx,
    ShardRegion,
    ShardedSimulation,
)

UDP_SRC_PORT = 40000
UDP_DST_PORT = 40001

#: Proxy <-> controller latency inside the controller region (the
#: switch <-> proxy leg crosses the shard boundary at
#: FABRIC_CONTROL_LATENCY).
INTRA_CONTROL_LATENCY = 0.00025


# --------------------------------------------------------------------- #
# Config
# --------------------------------------------------------------------- #

def fabric_config(
    topology: str = "fat-tree-k4",
    controller: Optional[str] = None,
    attack: Optional[str] = None,
    fail_mode: str = FailMode.SECURE.value,
    seed: int = 0,
    regions: Optional[int] = None,
    workload: Optional[str] = None,
    pairs: int = 4,
    packets: Optional[int] = None,
    interval_s: Optional[float] = None,
    payload_len: int = 64,
    start_s: Optional[float] = None,
    horizon_s: Optional[float] = None,
    attack_params: Optional[Dict[str, Any]] = None,
    workload_params: Optional[Dict[str, Any]] = None,
    table_capacity: Optional[int] = None,
    table_eviction: str = "refuse",
    trace: bool = False,
    trace_capacity: int = 262_144,
    adaptive_lookahead: bool = True,
    exchange_codec: bool = True,
    sketch: bool = False,
    sketch_window_s: Optional[float] = None,
    detectors: Optional[Any] = None,
    detector_params: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Normalize experiment arguments into the picklable config dict that
    shard workers rebuild their regions from.

    Every derived default (horizon, workload, region count) is resolved
    here, so each worker sees the identical fully-specified config.

    ``workload`` is ``udp``/``ping`` (the PR 6 built-ins) or any name
    from the :mod:`repro.workloads` source registry; registered sources
    take ``workload_params`` (``schedule``, ``senders``, ``duration_s``,
    source-specific keys).  ``table_capacity``/``table_eviction`` bound
    every switch's flow table (the overflow campaigns' lever).
    """
    from repro.workloads import source_info, source_names

    if controller in (None, "", "none"):
        controller = None
    fabric = generate_fabric(topology)  # validates the name eagerly
    if regions is None:
        regions = len(fabric.groups) if fabric.groups else min(
            4, fabric.switch_count
        )
    if workload is None:
        workload = "ping" if controller else "udp"
    registered = workload not in ("udp", "ping")
    if registered and workload not in source_names():
        raise ValueError(
            f"unknown workload {workload!r}; built-ins are 'udp'/'ping', "
            f"registered sources: {source_names()}"
        )
    if workload == "ping" and controller is None:
        raise ValueError("the ping workload needs a controller "
                         "(reactive flow setup); use workload='udp'")
    if registered and controller is None and source_info(workload).needs_controller:
        raise ValueError(f"workload {workload!r} needs a controller "
                         "(it provokes reactive control-plane load)")
    if packets is None:
        packets = 5 if workload == "ping" else 50
    if interval_s is None:
        interval_s = 1.0 if workload == "ping" else 0.002
    if start_s is None:
        start_s = 0.25 if controller else 0.05
    workload_params = dict(workload_params or {})
    if registered:
        # Resolve source defaults here so every shard worker builds the
        # identical source, and the horizon covers the emission window.
        workload_params.setdefault("senders", pairs)
        workload_params.setdefault("duration_s", 1.0)
        workload_params["start_s"] = start_s
        from repro.workloads import parse_schedule

        parse_schedule(workload_params.get("schedule", "constant:100"))
    if horizon_s is None:
        if registered:
            horizon_s = start_s + float(workload_params["duration_s"]) + (
                1.0 if controller else 0.15
            )
        else:
            tail = 2.5 if workload == "ping" else 0.15
            horizon_s = start_s + packets * interval_s + tail
    FailMode(fail_mode)  # validate eagerly
    if table_capacity is not None:
        table_capacity = int(table_capacity)
        if table_capacity <= 0:
            raise ValueError(f"table_capacity must be positive, got {table_capacity}")
    from repro.dataplane.flowtable import EVICTION_POLICIES

    if table_eviction not in EVICTION_POLICIES:
        raise ValueError(f"unknown table_eviction {table_eviction!r}; "
                         f"choose from {EVICTION_POLICIES}")
    # Defense plane: detectors imply sketch telemetry; names may arrive
    # as a comma-separated string (XML campaign params) or a sequence.
    if isinstance(detectors, str):
        detectors = [d.strip() for d in detectors.split(",") if d.strip()]
    detectors = list(detectors or [])
    if detectors:
        from repro.defense import detector_info

        for name in detectors:
            detector_info(name)  # validate eagerly
        sketch = True
    if sketch_window_s is None:
        from repro.defense.tap import DEFAULT_WINDOW_S

        sketch_window_s = DEFAULT_WINDOW_S
    elif sketch_window_s <= 0:
        raise ValueError(
            f"sketch_window_s must be positive, got {sketch_window_s}"
        )
    return {
        "topology": topology,
        "controller": controller,
        "attack": attack,
        "attack_params": dict(attack_params or {}),
        "fail_mode": fail_mode,
        "seed": int(seed),
        "regions": int(regions),
        "workload": workload,
        "pairs": int(pairs),
        "packets": int(packets),
        "interval_s": float(interval_s),
        "payload_len": int(payload_len),
        "start_s": float(start_s),
        "horizon_s": float(horizon_s),
        "workload_params": workload_params,
        "table_capacity": table_capacity,
        "table_eviction": table_eviction,
        "trace": bool(trace),
        "trace_capacity": int(trace_capacity),
        # Cross-shard fast-lane switches (see docs/PERFORMANCE.md): both
        # change only how the barrier executes, never the results.
        "adaptive_lookahead": bool(adaptive_lookahead),
        "exchange_codec": bool(exchange_codec),
        "sketch": bool(sketch),
        "sketch_window_s": float(sketch_window_s),
        "detectors": detectors,
        "detector_params": dict(detector_params or {}),
    }


# --------------------------------------------------------------------- #
# Deterministic routing helpers (pure functions of the topology)
# --------------------------------------------------------------------- #

def _switch_adjacency(topo: Topology) -> Dict[str, List[str]]:
    adjacency: Dict[str, List[str]] = {name: [] for name in topo.switches}
    for link in topo.links:
        if link.a in topo.switches and link.b in topo.switches:
            adjacency[link.a].append(link.b)
            adjacency[link.b].append(link.a)
    for neighbors in adjacency.values():
        neighbors.sort()
    return adjacency


def _port_map(topo: Topology) -> Dict[Tuple[str, str], int]:
    """``(switch, attached peer) -> switch port`` for every link."""
    ports: Dict[Tuple[str, str], int] = {}
    for link in topo.links:
        if link.a in topo.switches:
            ports[(link.a, link.b)] = link.a_port
        if link.b in topo.switches:
            ports[(link.b, link.a)] = link.b_port
    return ports


def _host_attach(topo: Topology) -> Dict[str, str]:
    """``host -> its edge switch`` (hosts have exactly one link)."""
    attach: Dict[str, str] = {}
    for link in topo.links:
        if link.a in topo.hosts and link.b in topo.switches:
            attach[link.a] = link.b
        elif link.b in topo.hosts and link.a in topo.switches:
            attach[link.b] = link.a
    return attach


def _bfs_parents(
    adjacency: Dict[str, List[str]], root: str
) -> Dict[str, List[str]]:
    """BFS shortest-path DAG toward ``root``: ``parents[s]`` is every
    neighbor of ``s`` one hop closer to the root (sorted).

    Keeping ALL equal-cost predecessors instead of the first-found one is
    what makes ECMP spreading possible: a fat-tree has (k/2)^2 shortest
    paths between cross-pod edge switches, and routing every flow down
    the lexicographically first one would funnel the whole workload
    through a single aggregation/core column.  Sorted adjacency makes the
    DAG a pure function of the topology.
    """
    depth = {root: 0}
    parents: Dict[str, List[str]] = {}
    frontier = [root]
    while frontier:
        next_frontier: List[str] = []
        for node in frontier:
            for neighbor in adjacency[node]:
                if neighbor not in depth:
                    depth[neighbor] = depth[node] + 1
                    parents[neighbor] = [node]
                    next_frontier.append(neighbor)
                elif depth[neighbor] == depth[node] + 1:
                    parents[neighbor].append(node)
        frontier = next_frontier
    for options in parents.values():
        options.sort()
    return parents


def _ecmp_pick(options: List[str], *key: object) -> str:
    """Deterministic equal-cost choice: a stable CRC32 of the flow key
    (``hash()`` is salted per process, which would break shard-count
    invariance) indexes into the sorted candidate list."""
    if len(options) == 1:
        return options[0]
    digest = zlib.crc32("|".join(str(part) for part in key).encode())
    return options[digest % len(options)]


def workload_pairs(fabric: Fabric, count: int) -> List[Tuple[str, str]]:
    """The first ``count`` cross-fabric host pairs, deterministically.

    Hosts sort by name (pod-major on a fat-tree), so pairing index ``i``
    with ``i + n/2`` yields far-apart pairs whose paths exercise the
    core — and the shard boundaries.
    """
    hosts = sorted(fabric.topology.hosts)
    half = len(hosts) // 2
    return [(hosts[i], hosts[i + half]) for i in range(min(count, half))]


def proactive_routes(
    topo: Topology, pairs: Sequence[Tuple[str, str]]
) -> Dict[str, List[Tuple[Any, int]]]:
    """Per-switch ``(dst_mac, out_port)`` entries covering both directions
    of every pair's BFS path (the controllerless workload's flow tables)."""
    adjacency = _switch_adjacency(topo)
    ports = _port_map(topo)
    attach = _host_attach(topo)
    entries: Dict[str, Dict[Any, int]] = {name: {} for name in topo.switches}

    def install(src: str, dst: str) -> None:
        dst_mac = topo.hosts[dst].mac
        path = _switch_path(adjacency, attach[src], attach[dst])
        for i, switch in enumerate(path):
            if i + 1 < len(path):
                out = ports[(switch, path[i + 1])]
            else:
                out = ports[(switch, dst)]
            entries[switch].setdefault(dst_mac, out)

    for a, b in pairs:
        install(a, b)
        install(b, a)
    return {
        switch: sorted(table.items(), key=lambda item: int(item[0]))
        for switch, table in entries.items()
    }


def _switch_path(
    adjacency: Dict[str, List[str]], src: str, dst: str
) -> List[str]:
    """A shortest switch path from ``src`` to ``dst``, ECMP-spread:
    each hop picks among the equal-cost predecessors by a stable hash of
    ``(src, dst, hop)``, so distinct flows fan out over distinct
    aggregation and core switches instead of piling onto one."""
    if src == dst:
        return [src]
    parents = _bfs_parents(adjacency, src)
    if dst not in parents:
        raise ValueError(f"no switch path from {src!r} to {dst!r}")
    path = [dst]
    while path[-1] != src:
        path.append(_ecmp_pick(parents[path[-1]], src, dst, len(path)))
    path.reverse()
    return path


def controller_routes(topo: Topology) -> Dict[int, Dict[Any, int]]:
    """Full next-hop tables for :class:`FabricRoutingApp`:
    ``datapath_id -> {host MAC -> out_port}`` toward every host."""
    adjacency = _switch_adjacency(topo)
    ports = _port_map(topo)
    attach = _host_attach(topo)
    dpid = {name: spec.datapath_id for name, spec in topo.switches.items()}
    routes: Dict[int, Dict[Any, int]] = {d: {} for d in dpid.values()}
    by_edge: Dict[str, List[str]] = {}
    for host, edge in attach.items():
        by_edge.setdefault(edge, []).append(host)
    for edge, hosts in sorted(by_edge.items()):
        parents = _bfs_parents(adjacency, edge)
        for host in sorted(hosts):
            mac = topo.hosts[host].mac
            for switch in topo.switches:
                if switch == edge:
                    routes[dpid[switch]][mac] = ports[(edge, host)]
                elif switch in parents:
                    # Per-(switch, destination) ECMP: every hop strictly
                    # decreases the distance to the edge, so independent
                    # per-switch choices still compose into loop-free
                    # paths.
                    choice = _ecmp_pick(parents[switch], switch, str(mac))
                    routes[dpid[switch]][mac] = ports[(switch, choice)]
    return routes


# --------------------------------------------------------------------- #
# The execution plan
# --------------------------------------------------------------------- #

@dataclass
class FabricPlan:
    """Everything the coordinator and every worker derive from a config —
    a pure function of the config dict, recomputed identically anywhere."""

    fabric: Fabric
    partition: List[List[str]]
    owner: Dict[str, int]          # device name -> region id
    region_ids: List[int]
    ctrl_rid: Optional[int]
    lookahead: float
    weights: Dict[int, int]
    pairs: List[Tuple[str, str]]
    cut: int
    #: Minimum boundary-channel latency — the adaptive barrier's safe
    #: widening promise (``inf`` when nothing crosses a region boundary).
    promise: float = FABRIC_LINK_LATENCY
    _routes: Optional[Dict[str, List[Tuple[Any, int]]]] = field(
        default=None, repr=False, compare=False)

    def proactive_route_tables(self) -> Dict[str, List[Tuple[Any, int]]]:
        """Per-switch proactive routes, computed once per plan.

        Every region built from this plan shares the object, so a worker
        holding N regions pays one BFS/ECMP pass instead of N.
        """
        if self._routes is None:
            self._routes = proactive_routes(self.fabric.topology, self.pairs)
        return self._routes


def _boundary_promise(
    fabric: Fabric, owner: Dict[str, int], has_controller: bool
) -> float:
    """The smallest latency of any channel that crosses a region cut."""
    promise = math.inf
    for link in fabric.topology.links:
        if owner.get(link.a) != owner.get(link.b):
            promise = min(promise, link.latency_s)
    if has_controller:
        promise = min(promise, FABRIC_CONTROL_LATENCY)
    return promise


def plan_fabric(config: Dict[str, Any]) -> FabricPlan:
    fabric = generate_fabric(config["topology"])
    partition = partition_topology(
        fabric.topology, config["regions"], groups=fabric.groups or None
    )
    owner = {
        name: rid
        for rid, devices in enumerate(partition)
        for name in devices
    }
    region_ids = list(range(len(partition)))
    ctrl_rid: Optional[int] = None
    weights = {rid: len(devices) for rid, devices in enumerate(partition)}
    if config["controller"]:
        ctrl_rid = len(partition)
        region_ids.append(ctrl_rid)
        # The controller region services every PACKET_IN; weight it like
        # half the fabric so LPT packing gives it room.
        weights[ctrl_rid] = max(1, fabric.switch_count // 2)
    return FabricPlan(
        fabric=fabric,
        partition=partition,
        owner=owner,
        region_ids=region_ids,
        ctrl_rid=ctrl_rid,
        lookahead=FABRIC_LINK_LATENCY,
        weights=weights,
        pairs=workload_pairs(fabric, config["pairs"]),
        cut=cut_links(fabric.topology, partition),
        promise=_boundary_promise(fabric, owner, bool(config["controller"])),
    )


# --------------------------------------------------------------------- #
# Regions
# --------------------------------------------------------------------- #

def _link_chan(index: int, side: str) -> str:
    return f"link:{index:06d}:{side}"


def _ctrl_chan(controller: str, switch: str, instance: int, tail: str) -> str:
    return f"ctl:{controller}:{switch}:{instance:06d}:{tail}"


class _FabricDataRegion(ShardRegion):
    """One fabric region: a subset of switches/hosts plus its workload."""

    def __init__(self, rid: int, config: Dict[str, Any], plan: FabricPlan) -> None:
        super().__init__(rid, len(plan.region_ids))
        self.config = config
        self.plan = plan
        self.workload: Dict[str, int] = {
            "udp_sent": 0, "udp_received": 0, "packets_synthesized": 0,
        }
        self.ping_monitor = None
        self.tracer = None
        self.sketch_tap = None
        self._drivers = []
        self._dial_instances: Dict[Tuple[str, str], int] = {}
        self._payload = b"\x00" * config["payload_len"]
        with self.ctx:
            self._build()

    # -- construction -------------------------------------------------- #

    def _build(self) -> None:
        config, plan = self.config, self.plan
        include = set(plan.partition[self.rid])
        topo = plan.fabric.topology

        def boundary(index: int, link_spec, side: str):
            if link_spec.latency_s < plan.lookahead:
                raise ValueError(
                    f"boundary link {link_spec.a}-{link_spec.b} latency "
                    f"{link_spec.latency_s} below lookahead {plan.lookahead}"
                )
            far = link_spec.b if side == "a" else link_spec.a
            out_chan = _link_chan(index, side)
            in_chan = _link_chan(index, "b" if side == "a" else "a")
            tx = BoundaryTx(
                self.engine, link_spec.bandwidth_bps, link_spec.latency_s,
                DataLink.DEFAULT_QUEUE_LIMIT, self.emit, out_chan,
            )
            half = BoundaryHalf(tx)
            self.chan_dest[out_chan] = plan.owner[far]
            self.link_sinks[in_chan] = half
            return half

        self.network = Network(
            self.engine, topo,
            fail_mode=FailMode(config["fail_mode"]),
            include=include,
            boundary=boundary,
            table_capacity=config["table_capacity"],
            table_eviction=config["table_eviction"],
        )

        if config["controller"]:
            for name in sorted(self.network.switches):
                switch = self.network.switches[name]
                switch.set_connect_factory(self._boundary_dialer(name))
        else:
            self._preinstall_routes()

        if config.get("sketch"):
            from repro.defense.tap import SketchTap

            # One tap per region, shared by its switches; payloads merge
            # deterministically at collection in sorted-region order.
            self.sketch_tap = SketchTap(window_s=config["sketch_window_s"])
            for switch in self.network.switches.values():
                switch.sketches = self.sketch_tap

        if config["trace"]:
            from repro.obs import TraceCollector, wire_run

            self.tracer = TraceCollector(capacity=config["trace_capacity"])
            monitors = ()
            if config["workload"] == "ping":
                monitors = (self._ping_monitor(),)
            wire_run(self.tracer, self.engine,
                     switches=self.network.switches.values(),
                     monitors=monitors)

        self._build_workload()
        self.network.start()

    def _preinstall_routes(self) -> None:
        routes = self.plan.proactive_route_tables()
        for name in sorted(self.network.switches):
            switch = self.network.switches[name]
            for dst_mac, out_port in routes[name]:
                switch.preinstall_flow(
                    Match(dl_dst=dst_mac), [OutputAction(out_port)]
                )

    def _boundary_dialer(self, switch_name: str):
        controller = self.config["controller"]
        plan = self.plan
        connection = ("c1", switch_name)

        def dial(switch):
            instance = self._dial_instances.get(connection, 0) + 1
            self._dial_instances[connection] = instance
            out_chan = _ctrl_chan("c1", switch_name, instance, "c")
            in_chan = _ctrl_chan("c1", switch_name, instance, "s")
            chan = BoundaryControlChannel(
                self.engine, switch, FABRIC_CONTROL_LATENCY,
                name=f"bctl-{switch_name}-{instance}",
                emit=self.emit, out_chan=out_chan,
            )
            self.chan_dest[out_chan] = plan.ctrl_rid
            self.ctrl_sinks[in_chan] = chan
            # The far side learns of the dial at one connection-setup
            # latency, exactly like connect_endpoints' notify; the local
            # side starts its handshake at the same instant.
            self.emit(out_chan, self.engine.now + FABRIC_CONTROL_LATENCY,
                      "open", b"")
            self.engine.schedule(FABRIC_CONTROL_LATENCY,
                                 switch.channel_opened, chan)
            return chan

        del controller  # the system model names it c1 regardless of kind
        return dial

    # -- workload ------------------------------------------------------ #

    def _ping_monitor(self):
        if self.ping_monitor is None:
            from repro.core.monitors import PingMonitor

            self.ping_monitor = PingMonitor()
        return self.ping_monitor

    def _build_workload(self) -> None:
        config, plan = self.config, self.plan
        topo = plan.fabric.topology
        local = self.network.hosts
        # Pre-populate ARP both ways: the routing layers never flood, so
        # an ARP broadcast would die — and real fabrics proxy/suppress
        # ARP anyway.
        for a, b in plan.pairs:
            if a in local:
                local[a].arp_table[topo.hosts[b].ip] = topo.hosts[b].mac
            if b in local:
                local[b].arp_table[topo.hosts[a].ip] = topo.hosts[a].mac
        if config["workload"] == "udp":
            for src, dst in plan.pairs:
                if dst in local:
                    local[dst].register_udp_handler(
                        UDP_DST_PORT, self._udp_received
                    )
                if src in local:
                    dst_ip = topo.hosts[dst].ip
                    for i in range(config["packets"]):
                        self.engine.schedule_at(
                            config["start_s"] + i * config["interval_s"],
                            self._udp_send, local[src], dst_ip,
                        )
        elif config["workload"] == "ping":
            monitor = self._ping_monitor()
            for src, dst in plan.pairs:
                if src in local:
                    self.engine.schedule_at(
                        config["start_s"],
                        monitor.start_series,
                        local[src], topo.hosts[dst].ip,
                        config["packets"], config["interval_s"],
                    )
        else:
            from repro.workloads import DEFAULT_TICK_S, build_source, drive_source
            from repro.workloads.sources import BENIGN_UDP_PORT, FLOOD_UDP_PORT

            # Each region builds the identical source (a pure function of
            # the config) and drives only the emitters it owns.
            source = build_source(
                config["workload"], topo, config["seed"],
                config["workload_params"],
            )
            for host in local.values():
                for port in (BENIGN_UDP_PORT + 1, FLOOD_UDP_PORT + 1):
                    host.register_udp_handler(port, self._udp_received)
            self._drivers = drive_source(
                self.engine, local, source,
                tick_s=float(config["workload_params"].get(
                    "tick_s", DEFAULT_TICK_S
                )),
            )

    def _udp_send(self, host, dst_ip) -> None:
        self.workload["udp_sent"] += 1
        host.send_udp(dst_ip, UDP_SRC_PORT, UDP_DST_PORT, self._payload)

    def _udp_received(self, src_ip, datagram) -> None:
        self.workload["udp_received"] += 1

    # -- results ------------------------------------------------------- #

    def _collect(self) -> Dict[str, Any]:
        result = super()._collect()
        self.workload["packets_synthesized"] = sum(
            driver.emitter.emitted for driver in self._drivers
        )
        result["workload"] = dict(self.workload)
        result["switch"] = {
            key: self.network.total_stat(key)
            for key in ("packet_ins_sent", "flow_mods_received",
                        "table_misses", "evictions_idle", "evictions_hard",
                        "evictions_capacity", "evictions_delete")
        }
        result["tables"] = {
            "occupancy_peak": max(
                (s.flow_table.occupancy_peak
                 for s in self.network.switches.values()), default=0
            ),
            "entries": sum(
                len(s.flow_table) for s in self.network.switches.values()
            ),
        }
        if self.ping_monitor is not None:
            results = self.ping_monitor.results
            result["ping"] = {
                "sent": sum(r.sent for r in results),
                "received": sum(r.received for r in results),
                "rtts": self.ping_monitor.all_rtts(),
            }
        if self.tracer is not None:
            result["trace"] = [
                dict(event, region=self.rid) for event in self.tracer.events()
            ]
        if self.sketch_tap is not None:
            result["sketch"] = self.sketch_tap.collect()
        return result


class _ControllerRegion(ShardRegion):
    """The controller region: controller + runtime injector + proxies.

    The paper's injector is "a single-threaded, centralized runtime
    injector instance" imposing a total order on interposed messages —
    sharding keeps that literal by giving the whole control plane one
    region (and therefore one engine), while the data plane spreads over
    the others.
    """

    def __init__(self, rid: int, config: Dict[str, Any], plan: FabricPlan) -> None:
        super().__init__(rid, len(plan.region_ids))
        self.config = config
        self.plan = plan
        self.tracer = None
        with self.ctx:
            self._build()

    def _build(self) -> None:
        from repro.attacks import build_attack
        from repro.controllers import CONTROLLER_FACTORIES
        from repro.controllers.apps import FabricRoutingApp
        from repro.core import RuntimeInjector
        from repro.core.model import AttackModel, SystemModel
        from repro.core.monitors import ControlPlaneMonitor
        from repro.sim.rng import SeededRng

        config, plan = self.config, self.plan
        topo = plan.fabric.topology
        factory = CONTROLLER_FACTORIES[config["controller"]]
        self.controller = factory(self.engine, name="c1")
        self.controller.apps.insert(
            0,
            FabricRoutingApp(controller_routes(topo), self.controller.behavior),
        )

        system = SystemModel.from_topology(topo, ["c1"])
        attack_model = AttackModel.no_tls_everywhere(system)
        attack = None
        if config["attack"]:
            attack = build_attack(
                config["attack"],
                connections=system.connection_keys(),
                **config["attack_params"],
            )
        self.injector = RuntimeInjector(
            self.engine, attack_model, attack, rng=SeededRng(config["seed"])
        )
        self.control_monitor = ControlPlaneMonitor()
        self.injector.add_observer(self.control_monitor)
        self._ports = {}
        for connection in system.connection_keys():
            self._ports[connection] = self.injector.port_for(
                connection, self.controller, latency_s=INTRA_CONTROL_LATENCY
            )

        if config["trace"]:
            from repro.obs import TraceCollector, wire_run

            self.tracer = TraceCollector(capacity=config["trace_capacity"])
            wire_run(self.tracer, self.engine, injector=self.injector,
                     monitors=(self.control_monitor,))

    def control_opened(self, chan_name: str) -> None:
        """A switch region dialled: hand the boundary channel to the
        connection's proxy port, which adopts it and dials the controller
        (in-region, through the normal connect_endpoints path)."""
        _tag, controller, switch, instance, _tail = chan_name.split(":")
        connection = (controller, switch)
        port = self._ports[connection]
        out_chan = _ctrl_chan(controller, switch, int(instance), "s")
        chan = BoundaryControlChannel(
            self.engine, port, FABRIC_CONTROL_LATENCY,
            name=f"bctl-{switch}-{instance}-ctrl",
            emit=self.emit, out_chan=out_chan,
        )
        self.chan_dest[out_chan] = self.plan.owner[switch]
        self.ctrl_sinks[chan_name] = chan
        port.channel_opened(chan)

    def _collect(self) -> Dict[str, Any]:
        result = super()._collect()
        monitor = self.control_monitor
        result["control"] = {
            "packet_ins": monitor.count_of("PACKET_IN"),
            "flow_mods_seen": monitor.count_of("FLOW_MOD"),
            "flow_mods_dropped": monitor.dropped_by_type.get("FLOW_MOD", 0),
            "total_messages": monitor.total_messages(),
        }
        result["controller"] = dict(self.controller.stats)
        result["injector"] = dict(self.injector.stats)
        if self.tracer is not None:
            result["trace"] = [
                dict(event, region=self.rid) for event in self.tracer.events()
            ]
        return result


def build_fabric_regions(
    config: Dict[str, Any], rids: Sequence[int]
) -> List[ShardRegion]:
    """Build the regions a worker owns (called by the shard executors)."""
    plan = plan_fabric(config)
    regions: List[ShardRegion] = []
    for rid in rids:
        if plan.ctrl_rid is not None and rid == plan.ctrl_rid:
            regions.append(_ControllerRegion(rid, config, plan))
        elif 0 <= rid < len(plan.partition):
            regions.append(_FabricDataRegion(rid, config, plan))
        else:
            raise ValueError(f"region id {rid} outside plan "
                             f"({len(plan.partition)} regions)")
    return regions


# --------------------------------------------------------------------- #
# Results
# --------------------------------------------------------------------- #

@dataclass
class FabricResult:
    """One sharded fabric run, aggregated across regions."""

    fabric: str
    controller: Optional[str]
    attack: Optional[str]
    fail_mode: str
    seed: int
    workload: str
    regions: int
    shards: int
    switches: int
    hosts: int
    cut_links: int
    packets_sent: int = 0
    packets_delivered: int = 0
    ping_sent: int = 0
    ping_received: int = 0
    median_rtt_s: Optional[float] = None
    packets_synthesized: int = 0
    packet_ins: int = 0
    switch_packet_ins: int = 0
    table_misses: int = 0
    table_occupancy_peak: int = 0
    evictions_idle: int = 0
    evictions_hard: int = 0
    evictions_capacity: int = 0
    evictions_delete: int = 0
    flow_mods_seen: int = 0
    flow_mods_dropped: int = 0
    total_control_messages: int = 0
    cross_shard_messages: int = 0
    epochs: int = 0
    epochs_skipped: int = 0
    epochs_widened: int = 0
    exchange_bytes: int = 0
    exchange_blobs: int = 0
    processed_events: int = 0
    sim_duration_s: float = 0.0
    wall_s: float = 0.0
    coordinator_cpu_s: float = 0.0
    worker_cpu_s: List[float] = field(default_factory=list)
    region_metrics: List[Dict[str, Any]] = field(default_factory=list)
    trace_jsonl: Optional[str] = None
    trace_events: int = 0
    sketch: Optional[Dict[str, Any]] = None
    sketch_digest: Optional[str] = None
    detections: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def delivery_rate(self) -> float:
        if self.packets_sent:
            return self.packets_delivered / self.packets_sent
        if self.ping_sent:
            return self.ping_received / self.ping_sent
        return 0.0

    @property
    def packet_in_rate(self) -> float:
        """Switch-side PACKET_IN per sim-second — the storm intensity a
        ``packetin-flood`` workload is measured by."""
        if self.sim_duration_s <= 0:
            return 0.0
        return self.switch_packet_ins / self.sim_duration_s

    @property
    def wall_packets_per_sec(self) -> float:
        delivered = self.packets_delivered or self.ping_received
        return delivered / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def capacity_packets_per_sec(self) -> float:
        """Delivered packets over the critical-path CPU seconds: the
        slowest worker plus the coordinator.  On a single-CPU host this —
        not wall clock — is what shard scaling improves; see
        docs/PERFORMANCE.md."""
        critical = max(self.worker_cpu_s, default=0.0) + self.coordinator_cpu_s
        if critical <= 0:
            critical = self.wall_s
        delivered = self.packets_delivered or self.ping_received
        return delivered / critical if critical > 0 else 0.0

    def record(self) -> Dict[str, Any]:
        """The campaign ResultStore metrics payload for this run."""
        payload = {
            "experiment": "fabric",
            "topology": self.fabric,
            "controller": self.controller,
            "attack": self.attack,
            "fail_mode": self.fail_mode,
            "seed": self.seed,
            "workload": self.workload,
            "regions": self.regions,
            "shards": self.shards,
            "switches": self.switches,
            "hosts": self.hosts,
            "cut_links": self.cut_links,
            "packets_sent": self.packets_sent,
            "packets_delivered": self.packets_delivered,
            "ping_sent": self.ping_sent,
            "ping_received": self.ping_received,
            "delivery_rate": round(self.delivery_rate, 6),
            "median_rtt_ms": (
                round(self.median_rtt_s * 1000, 4)
                if self.median_rtt_s is not None else None
            ),
            "packets_synthesized": self.packets_synthesized,
            "packet_ins": self.packet_ins,
            "switch_packet_ins": self.switch_packet_ins,
            "packet_in_rate": round(self.packet_in_rate, 2),
            "table_misses": self.table_misses,
            "table_occupancy_peak": self.table_occupancy_peak,
            "evictions_idle": self.evictions_idle,
            "evictions_hard": self.evictions_hard,
            "evictions_capacity": self.evictions_capacity,
            "evictions_delete": self.evictions_delete,
            "flow_mods_seen": self.flow_mods_seen,
            "flow_mods_dropped": self.flow_mods_dropped,
            "total_control_messages": self.total_control_messages,
            "cross_shard_messages": self.cross_shard_messages,
            "epochs": self.epochs,
            "epochs_skipped": self.epochs_skipped,
            "epochs_widened": self.epochs_widened,
            "exchange_bytes": self.exchange_bytes,
            "exchange_blobs": self.exchange_blobs,
            "processed_events": self.processed_events,
            "sim_duration_s": round(self.sim_duration_s, 6),
            "wall_s": round(self.wall_s, 4),
            "coordinator_cpu_s": round(self.coordinator_cpu_s, 4),
            "worker_cpu_s": [round(cpu, 4) for cpu in self.worker_cpu_s],
            "wall_packets_per_sec": round(self.wall_packets_per_sec, 2),
            "capacity_packets_per_sec": round(self.capacity_packets_per_sec, 2),
        }
        if self.sketch_digest is not None:
            from repro.defense.tap import sketch_summary

            payload["sketch_digest"] = self.sketch_digest
            payload["sketch_summary"] = sketch_summary(self.sketch)
        if self.detections:
            payload["detections"] = self.detections
            # Flatten the first detector's scores so the report layer's
            # numeric-metric aggregation picks them up as columns.
            first = self.detections[0]
            payload["detect_precision"] = first["precision"]
            payload["detect_recall"] = first["recall"]
            payload["detect_latency_s"] = first["detection_latency_s"]
        return payload


def _median(values: List[float]) -> Optional[float]:
    if not values:
        return None
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def run_fabric_experiment(
    topology: str = "fat-tree-k4",
    controller: Optional[str] = None,
    attack: Optional[str] = None,
    fail_mode: str = FailMode.SECURE.value,
    seed: int = 0,
    shards: int = 1,
    trace=None,
    **config_kwargs,
) -> FabricResult:
    """Run one sharded fabric workload and aggregate the region results.

    ``shards=1`` executes every region inline; ``shards=N`` spreads the
    regions over N pooled worker processes.  Results are byte-identical
    either way.  ``trace`` accepts ``True`` or an existing
    :class:`~repro.obs.TraceCollector` (the campaign runner's), which
    receives the merged, deterministically ordered per-region events.
    """
    collector = None
    if trace is not None and not isinstance(trace, bool):
        collector = trace
        trace = True
    config = fabric_config(
        topology=topology, controller=controller, attack=attack,
        fail_mode=fail_mode, seed=seed, trace=bool(trace), **config_kwargs,
    )
    plan = plan_fabric(config)
    if shards > 1 and multiprocessing.current_process().daemon:
        # Campaign workers are daemonic and cannot fork shard workers;
        # fall back to inline multi-region execution (same results).
        shards = 1
    sim = ShardedSimulation(
        config,
        region_ids=plan.region_ids,
        weights=plan.weights,
        lookahead=plan.lookahead,
        horizon=config["horizon_s"],
        shards=shards,
        adaptive=config.get("adaptive_lookahead", True),
        codec=config.get("exchange_codec", True),
        promise=plan.promise,
    )
    payload = sim.run()

    result = FabricResult(
        fabric=config["topology"],
        controller=config["controller"],
        attack=config["attack"],
        fail_mode=config["fail_mode"],
        seed=config["seed"],
        workload=config["workload"],
        regions=len(plan.region_ids),
        shards=payload["shards"],
        switches=plan.fabric.switch_count,
        hosts=plan.fabric.host_count,
        cut_links=plan.cut,
        epochs=payload["epochs"],
        epochs_skipped=payload["epochs_skipped"],
        epochs_widened=payload["epochs_widened"],
        exchange_bytes=payload["exchange_bytes"],
        exchange_blobs=payload["exchange_blobs"],
        sim_duration_s=config["horizon_s"],
        wall_s=payload["wall_s"],
        coordinator_cpu_s=payload["coordinator_cpu_s"],
        worker_cpu_s=list(payload["worker_cpu_s"]),
    )
    rtts: List[float] = []
    trace_events: List[Dict[str, Any]] = []
    sketch_parts: List[Dict[str, Any]] = []
    for rid in sorted(payload["regions"]):
        region = payload["regions"][rid]
        engine_metrics = region["engine"]
        result.processed_events += engine_metrics["processed_events"]
        result.cross_shard_messages += engine_metrics["cross_shard_messages"]
        result.region_metrics.append(
            dict(engine_metrics, region=rid)
        )
        workload = region.get("workload") or {}
        result.packets_sent += workload.get("udp_sent", 0)
        result.packets_delivered += workload.get("udp_received", 0)
        result.packets_synthesized += workload.get("packets_synthesized", 0)
        switch_stats = region.get("switch") or {}
        result.switch_packet_ins += switch_stats.get("packet_ins_sent", 0)
        result.table_misses += switch_stats.get("table_misses", 0)
        result.evictions_idle += switch_stats.get("evictions_idle", 0)
        result.evictions_hard += switch_stats.get("evictions_hard", 0)
        result.evictions_capacity += switch_stats.get("evictions_capacity", 0)
        result.evictions_delete += switch_stats.get("evictions_delete", 0)
        tables = region.get("tables") or {}
        result.table_occupancy_peak = max(
            result.table_occupancy_peak, tables.get("occupancy_peak", 0)
        )
        ping = region.get("ping")
        if ping:
            result.ping_sent += ping["sent"]
            result.ping_received += ping["received"]
            rtts.extend(ping["rtts"])
        control = region.get("control")
        if control:
            result.packet_ins += control["packet_ins"]
            result.flow_mods_seen += control["flow_mods_seen"]
            result.flow_mods_dropped += control["flow_mods_dropped"]
            result.total_control_messages += control["total_messages"]
        trace_events.extend(region.get("trace") or [])
        sketch = region.get("sketch")
        if sketch:
            sketch_parts.append(sketch)
    result.median_rtt_s = _median(rtts)

    if config.get("sketch"):
        from repro.defense import (
            attack_window, evaluate_detectors, merge_taps, sketch_digest,
        )

        result.sketch = merge_taps(sketch_parts)
        result.sketch_digest = sketch_digest(result.sketch)
        if config["detectors"]:
            from repro.workloads import source_info, source_names

            workload = config["workload"]
            if workload in source_names():
                span = attack_window(
                    config["workload_params"],
                    adversarial=source_info(workload).adversarial,
                )
            else:
                span = None  # built-in udp/ping traffic is benign
            result.detections = evaluate_detectors(
                result.sketch,
                horizon_s=config["horizon_s"],
                detectors=config["detectors"],
                detector_params=config["detector_params"],
                attack_span=span,
            )

    if config["trace"]:
        from repro.obs import event_to_json

        trace_events.sort(key=lambda e: (e["t"], e["region"], e["seq"]))
        lines = [event_to_json(event) for event in trace_events]
        result.trace_jsonl = "\n".join(lines) + ("\n" if lines else "")
        result.trace_events = len(trace_events)
        if collector is not None:
            # Feed the merged stream back into the caller's collector so
            # the campaign trace plumbing (to_jsonl, counts) sees it.
            for event in trace_events:
                collector.events_total += 1
                collector.counts[event["kind"]] = (
                    collector.counts.get(event["kind"], 0) + 1
                )
                collector._ring.append(event)
    return result


def run_cell(
    controller: str = "none",
    attack: Optional[str] = None,
    fail_mode: str = FailMode.SECURE.value,
    seed: int = 0,
    attack_params: Optional[Dict[str, Any]] = None,
    topology: str = "fat-tree-k4",
    trace=None,
    **params,
) -> Dict[str, Any]:
    """Campaign entry point: one fabric run -> metrics dict.

    ``topology`` is a fabric descriptor (``fat-tree-k8``, ...); remaining
    keyword arguments forward to :func:`run_fabric_experiment`
    (``shards``, ``pairs``, ``packets``, ``workload``, ...).
    """
    result = run_fabric_experiment(
        topology=topology,
        controller=controller,
        attack=attack,
        fail_mode=fail_mode,
        seed=seed,
        attack_params=attack_params,
        trace=trace,
        **params,
    )
    return result.record()
