"""The Section VII enterprise case study and experiment drivers."""

from repro.experiments.compliance import ComplianceReport, run_compliance_suite
from repro.experiments.enterprise import (
    EnterpriseSetup,
    INTERNAL_HOST_NAMES,
    build_enterprise,
    enterprise_system_model,
    enterprise_topology,
)
from repro.experiments.interruption import (
    InterruptionResult,
    run_interruption_experiment,
)
from repro.experiments.suppression import (
    SuppressionResult,
    run_suppression_experiment,
)
from repro.experiments.syscmd import HostCommandRouter

__all__ = [
    "ComplianceReport",
    "EnterpriseSetup",
    "HostCommandRouter",
    "INTERNAL_HOST_NAMES",
    "InterruptionResult",
    "SuppressionResult",
    "build_enterprise",
    "enterprise_system_model",
    "enterprise_topology",
    "run_compliance_suite",
    "run_interruption_experiment",
    "run_suppression_experiment",
]
