"""The Section VII enterprise case study and experiment drivers.

Each driver module also exposes a ``run_cell`` campaign entry point
(re-exported here with a qualified name) that runs one matrix cell and
returns the flat metrics dict the campaign ResultStore records.
"""

from repro.experiments.compliance import ComplianceReport, run_compliance_suite
from repro.experiments.compliance import run_cell as run_compliance_cell
from repro.experiments.fabric import (
    FabricResult,
    build_fabric_regions,
    fabric_config,
    plan_fabric,
    run_fabric_experiment,
)
from repro.experiments.fabric import run_cell as run_fabric_cell
from repro.experiments.enterprise import (
    EnterpriseSetup,
    INTERNAL_HOST_NAMES,
    build_enterprise,
    enterprise_system_model,
    enterprise_topology,
)
from repro.experiments.interruption import (
    InterruptionResult,
    run_interruption_experiment,
)
from repro.experiments.interruption import run_cell as run_interruption_cell
from repro.experiments.suppression import (
    SuppressionResult,
    run_suppression_experiment,
)
from repro.experiments.suppression import run_cell as run_suppression_cell
from repro.experiments.syscmd import HostCommandRouter
from repro.experiments.workload import run_cell as run_workload_cell

__all__ = [
    "ComplianceReport",
    "EnterpriseSetup",
    "FabricResult",
    "HostCommandRouter",
    "INTERNAL_HOST_NAMES",
    "InterruptionResult",
    "SuppressionResult",
    "build_enterprise",
    "build_fabric_regions",
    "enterprise_system_model",
    "enterprise_topology",
    "fabric_config",
    "plan_fabric",
    "run_compliance_cell",
    "run_compliance_suite",
    "run_fabric_cell",
    "run_fabric_experiment",
    "run_interruption_cell",
    "run_interruption_experiment",
    "run_suppression_cell",
    "run_suppression_experiment",
    "run_workload_cell",
]
