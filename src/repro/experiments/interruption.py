"""The connection-interruption experiment (Section VII-C, Table II).

Timeline (paper values):

* t = 0 s: set s2 to fail-secure or fail-safe;
* t = 5 s: initialize the controller (all devices boot at sim start);
* t = 10 s: initialize the attack injector to σ1;
* t = 30 s: h2 pings h1 for 10 s (external user -> external host) and
  h6 pings h1 for 10 s (internal user -> external host);
* t = 50 s: h2 pings h3 for 60 s (external user -> internal host; the
  firewall's drop FLOW_MOD for this flow is the attack's σ2 trigger);
* t = 95 s: h6 pings h1 for 10 s again (internal user -> external host
  after the interruption).

Security metrics: "unauthorized increased access" when an external user
reaches an internal host, and "denial of service" when an internal user
can no longer reach external hosts after the interruption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.attacks import connection_interruption_attack
from repro.core import RuntimeInjector
from repro.core.model import AttackModel
from repro.core.monitors import ControlPlaneMonitor, PingMonitor
from repro.dataplane import FailMode
from repro.experiments.enterprise import (
    DMZ_SWITCH,
    EXTERNAL_USER_HOST,
    build_enterprise,
)
from repro.sim.engine import SimulationEngine
from repro.sim.rng import SeededRng


@dataclass
class InterruptionResult:
    """One Table II column (controller x fail mode)."""

    controller: str
    fail_mode: str
    attacked: bool
    # The four Table II probe rows:
    external_to_external_t30: bool
    internal_to_external_t30: bool
    external_to_internal_t50: bool
    internal_to_external_t95: bool
    # Diagnostics:
    attack_states_visited: List[str]
    interruption_happened: bool
    connection_deaths: int
    seed: int = 0
    unauthorized_window_s: float = 0.0
    sim_duration_s: float = 0.0

    @property
    def unauthorized_increased_access(self) -> bool:
        """External user reached an internal host."""
        return self.external_to_internal_t50

    @property
    def denial_of_service(self) -> bool:
        """Internal user lost external access after the interruption."""
        return self.internal_to_external_t30 and not self.internal_to_external_t95

    def row(self) -> Dict[str, object]:
        mark = lambda ok: "yes" if ok else "no"  # noqa: E731
        return {
            "controller": self.controller,
            "fail_mode": self.fail_mode,
            "ext->ext (t=30s)": mark(self.external_to_external_t30),
            "int->ext (t=30s)": mark(self.internal_to_external_t30),
            "ext->int (t=50s)": mark(self.external_to_internal_t50),
            "int->ext (t=95s)": mark(self.internal_to_external_t95),
            "unauthorized_access": self.unauthorized_increased_access,
            "denial_of_service": self.denial_of_service,
        }

    def record(self) -> Dict[str, object]:
        """The campaign ResultStore metrics payload for this run."""
        return {
            "experiment": "interruption",
            "controller": self.controller,
            "attack": "connection-interruption" if self.attacked else None,
            "attacked": self.attacked,
            "fail_mode": self.fail_mode,
            "seed": self.seed,
            "external_to_external_t30": self.external_to_external_t30,
            "internal_to_external_t30": self.internal_to_external_t30,
            "external_to_internal_t50": self.external_to_internal_t50,
            "internal_to_external_t95": self.internal_to_external_t95,
            "attack_states_visited": list(self.attack_states_visited),
            "interruption_happened": self.interruption_happened,
            "connection_deaths": self.connection_deaths,
            "unauthorized_access": self.unauthorized_increased_access,
            "unauthorized_window_s": round(self.unauthorized_window_s, 3),
            "denial_of_service": self.denial_of_service,
            "sim_duration_s": round(self.sim_duration_s, 6),
        }


def run_interruption_experiment(
    controller_kind: str,
    fail_mode: FailMode,
    attacked: bool = True,
    time_scale: float = 1.0,
    behavior_override=None,
    seed: int = 0,
    trace=None,
) -> InterruptionResult:
    """Run one Table II cell.

    ``time_scale`` compresses the timeline for fast tests (0.5 halves all
    offsets and ping windows; liveness timeouts are protocol constants and
    are NOT scaled, so very small scales will not leave room for the
    interruption to be detected — keep >= 0.5).  ``seed`` roots the run's
    random streams so repeated runs are bit-identical.  ``trace`` accepts a
    :class:`~repro.obs.trace.TraceCollector` that will observe every layer
    of the run (see ``docs/OBSERVABILITY.md``).
    """
    engine = SimulationEngine()
    setup = build_enterprise(
        engine,
        controller_kind=controller_kind,
        fail_mode=fail_mode,
        with_firewall=True,
        behavior_override=behavior_override,
    )
    attack_model = AttackModel.no_tls_everywhere(setup.system)
    attack = None
    if attacked:
        attack = connection_interruption_attack(
            connection=("c1", DMZ_SWITCH),
            trigger_source_ip=setup.external_user_ip,
            protected_destination_ips=setup.internal_ips,
        )
    injector = RuntimeInjector(engine, attack_model, attack,
                               rng=SeededRng(seed))
    control_monitor = ControlPlaneMonitor()
    injector.add_observer(control_monitor)
    injector.install(setup.network, {"c1": setup.controller})
    setup.network.start()

    network = setup.network
    external = network.host(EXTERNAL_USER_HOST)          # h2
    internal_user = network.host("h6")
    web_server_ip = network.host_ip("h1")
    internal_server_ip = network.host_ip("h3")

    def scaled(t: float) -> float:
        return t * time_scale

    monitors: Dict[str, PingMonitor] = {
        name: PingMonitor(name)
        for name in ("ext_ext_t30", "int_ext_t30", "ext_int_t50", "int_ext_t95")
    }
    if trace is not None:
        from repro.obs import wire_run

        wire_run(trace, engine, injector=injector,
                 switches=network.switches.values(),
                 monitors=monitors.values())
    short = max(3, int(10 * time_scale))
    long = max(30, int(60 * time_scale))

    engine.schedule_at(
        scaled(30.0), monitors["ext_ext_t30"].start_series,
        external, web_server_ip, short,
    )
    engine.schedule_at(
        scaled(30.0), monitors["int_ext_t30"].start_series,
        internal_user, web_server_ip, short,
    )
    engine.schedule_at(
        scaled(50.0), monitors["ext_int_t50"].start_series,
        external, internal_server_ip, long,
    )
    t95 = scaled(50.0) + long + 5.0
    engine.schedule_at(
        t95, monitors["int_ext_t95"].start_series,
        internal_user, web_server_ip, short,
    )
    engine.run(until=t95 + short + 10.0)

    def reached(name: str) -> bool:
        results = monitors[name].results
        return bool(results) and results[0].any_success

    visited = control_monitor.visited_states() or (
        [injector.current_state] if injector.current_state else []
    )
    breached = reached("ext_int_t50")
    return InterruptionResult(
        controller=controller_kind,
        fail_mode=fail_mode.value,
        attacked=attacked,
        external_to_external_t30=reached("ext_ext_t30"),
        internal_to_external_t30=reached("int_ext_t30"),
        external_to_internal_t50=breached,
        internal_to_external_t95=reached("int_ext_t95"),
        attack_states_visited=visited,
        interruption_happened="sigma3" in visited,
        connection_deaths=network.switch(DMZ_SWITCH).stats["connection_deaths"],
        seed=seed,
        # Table II's security exposure, as a window: the external->internal
        # probe ran for `long` seconds, all of them unauthorized if any
        # probe got through (the firewall rule never recovers mid-series).
        unauthorized_window_s=float(long) if breached else 0.0,
        sim_duration_s=engine.now,
    )


def run_cell(
    controller: str = "floodlight",
    attack: Optional[str] = "connection-interruption",
    fail_mode: str = FailMode.SECURE.value,
    seed: int = 0,
    attack_params: Optional[Dict[str, object]] = None,
    trace=None,
    **params,
) -> Dict[str, object]:
    """Campaign entry point: one Table II cell -> metrics dict.

    ``attack`` is either ``"connection-interruption"`` or ``None`` /
    ``"passthrough"`` for the un-attacked baseline; other registry names
    do not fit this harness's probe timeline.
    """
    if attack not in (None, "passthrough", "connection-interruption"):
        raise ValueError(
            f"interruption harness runs 'connection-interruption' or a "
            f"baseline, not {attack!r}"
        )
    del attack_params  # the Fig. 12 attack is fully determined by the setup
    result = run_interruption_experiment(
        controller,
        FailMode(fail_mode),
        attacked=attack == "connection-interruption",
        seed=seed,
        trace=trace,
        **params,
    )
    return result.record()
