"""The flow-modification-suppression experiment (Section VII-B, Fig. 11).

Timeline (paper values; scaled variants supported for fast test runs):

* t = 0 s: controller initialized (everything boots at simulation start);
* t = 5 s: attack injector initialized to state σ1;
* t = 30 s: ``ping`` h1 -> h6, 60 one-second trials (Fig. 11b latency);
* t = 95 s: iperf server on h6, then 30 ten-second client trials from h1
  with ten-second gaps (Fig. 11a throughput).

Metrics: per-trial throughput, ping RTT statistics and loss, and the
control-plane message counts that quantify the PACKET_IN amplification.
A run with ``attacked=False`` produces the baseline series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.attacks import build_attack, flow_mod_suppression_attack
from repro.core import RuntimeInjector
from repro.core.model import AttackModel
from repro.core.monitors import ControlPlaneMonitor, IperfMonitor, PingMonitor
from repro.dataplane import FailMode
from repro.experiments.enterprise import build_enterprise
from repro.sim.engine import SimulationEngine
from repro.sim.rng import SeededRng


@dataclass
class SuppressionResult:
    """Everything the Fig. 11 plots and the E5 overhead table need."""

    controller: str
    attacked: bool
    ping_sent: int
    ping_received: int
    ping_loss_rate: float
    median_rtt_s: Optional[float]
    avg_rtt_s: Optional[float]
    throughputs_mbps: List[float] = field(default_factory=list)
    mean_throughput_mbps: float = 0.0
    iperf_connect_failures: int = 0
    packet_ins: int = 0
    flow_mods_seen: int = 0
    flow_mods_dropped: int = 0
    total_control_messages: int = 0
    attack: Optional[str] = None
    seed: int = 0
    fail_mode: str = FailMode.SECURE.value
    sim_duration_s: float = 0.0

    @property
    def denial_of_service(self) -> bool:
        """The Fig. 11 asterisk: zero throughput and infinite latency."""
        return self.ping_received == 0 and self.mean_throughput_mbps == 0.0

    def row(self) -> Dict[str, object]:
        return {
            "controller": self.controller,
            "attacked": self.attacked,
            "throughput_mbps": round(self.mean_throughput_mbps, 2),
            "median_rtt_ms": (
                round(self.median_rtt_s * 1000, 3) if self.median_rtt_s else None
            ),
            "ping_loss": round(self.ping_loss_rate, 3),
            "packet_ins": self.packet_ins,
            "flow_mods_dropped": self.flow_mods_dropped,
            "dos": self.denial_of_service,
        }

    def record(self) -> Dict[str, object]:
        """The campaign ResultStore metrics payload for this run."""
        return {
            "experiment": "suppression",
            "controller": self.controller,
            "attack": self.attack,
            "attacked": self.attacked,
            "fail_mode": self.fail_mode,
            "seed": self.seed,
            "throughput_mbps": round(self.mean_throughput_mbps, 4),
            "throughputs_mbps": [round(t, 4) for t in self.throughputs_mbps],
            "median_rtt_ms": (
                round(self.median_rtt_s * 1000, 4)
                if self.median_rtt_s is not None else None
            ),
            "avg_rtt_ms": (
                round(self.avg_rtt_s * 1000, 4)
                if self.avg_rtt_s is not None else None
            ),
            "ping_loss": round(self.ping_loss_rate, 4),
            "packet_ins": self.packet_ins,
            "flow_mods_seen": self.flow_mods_seen,
            "flow_mods_dropped": self.flow_mods_dropped,
            "total_control_messages": self.total_control_messages,
            "denial_of_service": self.denial_of_service,
            "unauthorized_access": False,
            "sim_duration_s": round(self.sim_duration_s, 6),
        }


def run_suppression_experiment(
    controller_kind: str,
    attacked: bool,
    ping_trials: int = 60,
    iperf_trials: int = 30,
    iperf_duration_s: float = 10.0,
    iperf_gap_s: float = 10.0,
    warmup_s: float = 30.0,
    source: str = "h1",
    target: str = "h6",
    behavior_override=None,
    seed: int = 0,
    attack_name: Optional[str] = None,
    attack_params: Optional[Dict[str, object]] = None,
    fail_mode: FailMode = FailMode.SECURE,
    trace=None,
) -> SuppressionResult:
    """Run one (controller, attacked?) cell of the Fig. 11 matrix.

    Use smaller ``ping_trials``/``iperf_trials``/``iperf_duration_s`` for
    quick runs; the defaults reproduce the paper's timing.

    ``seed`` roots every random stream the run draws from, so two runs
    with the same arguments are bit-identical and two seeds are
    independent.  ``attack_name`` swaps the interposed attack for any
    registry entry (``repro.attacks.list_attacks()``) bound to all
    control-plane connections; the default keeps the paper's pairing of
    ``attacked`` with Fig. 10's flow-mod suppression.
    """
    engine = SimulationEngine()
    setup = build_enterprise(
        engine,
        controller_kind=controller_kind,
        fail_mode=fail_mode,
        with_firewall=False,  # the paper runs plain learning switches here
        behavior_override=behavior_override,
    )
    attack_model = AttackModel.no_tls_everywhere(setup.system)
    if attack_name is not None:
        attack = build_attack(
            attack_name,
            connections=setup.system.connection_keys(),
            **(attack_params or {}),
        )
    elif attacked:
        attack = flow_mod_suppression_attack(setup.system.connection_keys())
    else:
        attack = None
    injector = RuntimeInjector(engine, attack_model, attack,
                               rng=SeededRng(seed))
    control_monitor = ControlPlaneMonitor()
    injector.add_observer(control_monitor)
    injector.install(setup.network, {"c1": setup.controller})
    setup.network.start()

    ping_monitor = PingMonitor()
    iperf_monitor = IperfMonitor()
    if trace is not None:
        from repro.obs import wire_run

        wire_run(trace, engine, injector=injector,
                 switches=setup.network.switches.values(),
                 monitors=(ping_monitor, iperf_monitor))
    source_host = setup.network.host(source)
    target_host = setup.network.host(target)

    # t = warmup: the ping series (one 1 s trial per ping).
    engine.schedule_at(
        warmup_s,
        ping_monitor.start_series,
        source_host,
        target_host.ip,
        ping_trials,
    )
    # After the pings: iperf trials with gaps.
    iperf_start = warmup_s + ping_trials * 1.0 + 5.0
    for trial in range(iperf_trials):
        engine.schedule_at(
            iperf_start + trial * (iperf_duration_s + iperf_gap_s),
            iperf_monitor.start_trial,
            source_host,
            target_host,
            iperf_duration_s,
        )
    horizon = iperf_start + iperf_trials * (iperf_duration_s + iperf_gap_s) + 30.0
    engine.run(until=horizon)

    ping_result = ping_monitor.results[0] if ping_monitor.results else None
    attack_label = attack_name if attack_name is not None else (
        "flow-mod-suppression" if attacked else None
    )
    return SuppressionResult(
        controller=controller_kind,
        attacked=attack is not None and attack.name != "passthrough",
        ping_sent=ping_result.sent if ping_result else 0,
        ping_received=ping_result.received if ping_result else 0,
        ping_loss_rate=ping_result.loss_rate if ping_result else 1.0,
        median_rtt_s=ping_result.median_rtt if ping_result else None,
        avg_rtt_s=ping_result.avg_rtt if ping_result else None,
        throughputs_mbps=iperf_monitor.throughputs_mbps(),
        mean_throughput_mbps=iperf_monitor.mean_throughput_mbps() or 0.0,
        iperf_connect_failures=iperf_monitor.connect_failures(),
        packet_ins=control_monitor.count_of("PACKET_IN"),
        flow_mods_seen=control_monitor.count_of("FLOW_MOD"),
        flow_mods_dropped=control_monitor.dropped_by_type.get("FLOW_MOD", 0),
        total_control_messages=control_monitor.total_messages(),
        attack=attack_label,
        seed=seed,
        fail_mode=fail_mode.value,
        sim_duration_s=engine.now,
    )


def run_cell(
    controller: str = "floodlight",
    attack: Optional[str] = "flow-mod-suppression",
    fail_mode: str = FailMode.SECURE.value,
    seed: int = 0,
    attack_params: Optional[Dict[str, object]] = None,
    trace=None,
    **params,
) -> Dict[str, object]:
    """Campaign entry point: one suppression-harness run -> metrics dict.

    ``attack`` is a registry name (``None`` means no injector attack at
    all); remaining keyword arguments are forwarded to
    :func:`run_suppression_experiment` (``ping_trials`` etc.).
    """
    result = run_suppression_experiment(
        controller,
        attacked=attack is not None,
        seed=seed,
        attack_name=attack,
        attack_params=attack_params,
        fail_mode=FailMode(fail_mode),
        trace=trace,
        **params,
    )
    return result.record()
