"""The ATTAIN attack model (Section IV)."""

from repro.core.model.capabilities import (
    Capability,
    CapabilityMap,
    gamma_all,
    gamma_no_tls,
    gamma_tls,
)
from repro.core.model.system import ControlConnection, SystemModel, SystemModelError
from repro.core.model.threat import AttackModel, CapabilityViolation

__all__ = [
    "AttackModel",
    "Capability",
    "CapabilityMap",
    "CapabilityViolation",
    "ControlConnection",
    "SystemModel",
    "SystemModelError",
    "gamma_all",
    "gamma_no_tls",
    "gamma_tls",
]
