"""The system model (Section IV-A): C, S, H, N_D, and N_C.

``SystemModel`` is the formal structure the compiler parses and the
injector consults; it can be built programmatically, from a
:class:`repro.dataplane.topology.Topology`, or from the system-model XML
file (see :mod:`repro.core.compiler.system_parser`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.netlib.addresses import Ipv4Address, MacAddress

ConnectionKey = Tuple[str, str]


class SystemModelError(Exception):
    """Raised when a system model violates the Section IV-A assumptions."""


@dataclass(frozen=True)
class ControllerSpec:
    """A controller c_i ∈ C."""

    name: str
    address: str = ""


@dataclass(frozen=True)
class SwitchSpec:
    """A switch s_i ∈ S with its port set P_i."""

    name: str
    datapath_id: int
    ports: Tuple[int, ...] = ()


@dataclass(frozen=True)
class HostSpec:
    """An end host h_i ∈ H."""

    name: str
    mac: Optional[MacAddress] = None
    ip: Optional[Ipv4Address] = None


@dataclass(frozen=True)
class ControlConnection:
    """An element of N_C ⊆ C × S (a controller-switch TCP connection)."""

    controller: str
    switch: str

    @property
    def key(self) -> ConnectionKey:
        return (self.controller, self.switch)

    def __str__(self) -> str:
        return f"({self.controller}, {self.switch})"


@dataclass(frozen=True)
class DataPlaneEdge:
    """A directed edge of N_D with its (ingress, egress) port attribute."""

    src: str
    dst: str
    src_port: Optional[int]  # NULL for host interfaces
    dst_port: Optional[int]


class SystemModel:
    """The complete system model: components plus N_D and N_C."""

    def __init__(
        self,
        controllers: Iterable[ControllerSpec],
        switches: Iterable[SwitchSpec],
        hosts: Iterable[HostSpec],
        data_plane_edges: Iterable[DataPlaneEdge] = (),
        control_connections: Iterable[ControlConnection] = (),
    ) -> None:
        self.controllers: Dict[str, ControllerSpec] = {c.name: c for c in controllers}
        self.switches: Dict[str, SwitchSpec] = {s.name: s for s in switches}
        self.hosts: Dict[str, HostSpec] = {h.name: h for h in hosts}
        self.data_plane_edges: List[DataPlaneEdge] = list(data_plane_edges)
        self.control_connections: List[ControlConnection] = list(control_connections)
        self.validate()

    # ------------------------------------------------------------------ #
    # Validation (Section IV-A assumptions)
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        if len(self.controllers) < 1:
            raise SystemModelError("a functional SDN network requires |C| >= 1")
        if len(self.switches) < 1:
            raise SystemModelError("a functional SDN network requires |S| >= 1")
        if len(self.hosts) < 2:
            raise SystemModelError("a functional SDN network requires |H| >= 2")
        names = set(self.controllers) | set(self.switches) | set(self.hosts)
        if len(names) != len(self.controllers) + len(self.switches) + len(self.hosts):
            raise SystemModelError("controller/switch/host names must be disjoint")
        vertices = self.data_plane_vertices()
        for edge in self.data_plane_edges:
            for endpoint in (edge.src, edge.dst):
                if endpoint not in vertices:
                    raise SystemModelError(
                        f"data-plane edge endpoint {endpoint!r} is not in V_ND "
                        "(switches and hosts only)"
                    )
            if edge.src in self.hosts and edge.src_port is not None:
                raise SystemModelError(
                    f"host {edge.src!r} must have a NULL egress port"
                )
        seen: Set[ConnectionKey] = set()
        for connection in self.control_connections:
            if connection.controller not in self.controllers:
                raise SystemModelError(
                    f"control connection references unknown controller "
                    f"{connection.controller!r}"
                )
            if connection.switch not in self.switches:
                raise SystemModelError(
                    f"control connection references unknown switch "
                    f"{connection.switch!r}"
                )
            if connection.key in seen:
                raise SystemModelError(f"duplicate control connection {connection}")
            seen.add(connection.key)

    # ------------------------------------------------------------------ #
    # N_D / N_C views
    # ------------------------------------------------------------------ #

    def data_plane_vertices(self) -> FrozenSet[str]:
        """V_ND = S ∪ H."""
        return frozenset(self.switches) | frozenset(self.hosts)

    def connection_keys(self) -> List[ConnectionKey]:
        return [connection.key for connection in self.control_connections]

    def has_connection(self, controller: str, switch: str) -> bool:
        return (controller, switch) in set(self.connection_keys())

    def connections_for_switch(self, switch: str) -> List[ControlConnection]:
        return [c for c in self.control_connections if c.switch == switch]

    def connections_for_controller(self, controller: str) -> List[ControlConnection]:
        return [c for c in self.control_connections if c.controller == controller]

    def neighbors(self, device: str) -> List[str]:
        """Data-plane neighbours of a device (for reachability analyses)."""
        result = []
        for edge in self.data_plane_edges:
            if edge.src == device:
                result.append(edge.dst)
        return sorted(set(result))

    # ------------------------------------------------------------------ #
    # Scalability accounting (Section VI-D1)
    # ------------------------------------------------------------------ #

    def memory_cells(self) -> Dict[str, int]:
        """Abstract memory-cell counts used by the scalability benchmark.

        N_D stores |S|+|H| vertices, |E| edges, and 2|E| port attributes;
        N_C stores up to |C|×|S| relations.
        """
        edge_count = len(self.data_plane_edges)
        return {
            "nd_vertices": len(self.switches) + len(self.hosts),
            "nd_edges": edge_count,
            "nd_attributes": 2 * edge_count,
            "nc_relations": len(self.control_connections),
        }

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_topology(
        cls,
        topology,
        controllers: Iterable[str],
        control_connections: Optional[Iterable[ConnectionKey]] = None,
    ) -> "SystemModel":
        """Derive a SystemModel from a dataplane Topology.

        By default every controller connects to every switch (the
        fully-connected worst case of Section VI-D1); pass explicit
        ``control_connections`` to restrict it.
        """
        controller_specs = [ControllerSpec(name) for name in controllers]
        switch_specs = [
            SwitchSpec(
                spec.name,
                spec.datapath_id,
                tuple(topology.switch_ports(spec.name)),
            )
            for spec in topology.switches.values()
        ]
        host_specs = [
            HostSpec(spec.name, spec.mac, spec.ip) for spec in topology.hosts.values()
        ]
        graph = topology.data_plane_graph()
        edges = [
            DataPlaneEdge(src, dst, *graph["attributes"][(src, dst)])
            for (src, dst) in sorted(graph["edges"])
        ]
        if control_connections is None:
            connections = [
                ControlConnection(controller, switch)
                for controller in sorted(c.name for c in controller_specs)
                for switch in sorted(s.name for s in switch_specs)
            ]
        else:
            connections = [ControlConnection(c, s) for (c, s) in control_connections]
        return cls(controller_specs, switch_specs, host_specs, edges, connections)

    def host_ip(self, name: str) -> Ipv4Address:
        host = self.hosts.get(name)
        if host is None or host.ip is None:
            raise KeyError(f"host {name!r} has no IP in the system model")
        return host.ip

    def __repr__(self) -> str:
        return (
            f"<SystemModel |C|={len(self.controllers)} |S|={len(self.switches)} "
            f"|H|={len(self.hosts)} |N_C|={len(self.control_connections)}>"
        )
