"""The threat model: binding attacker capabilities to the system model.

Section IV-B assumes the attacker manipulates control-plane messages; how
components were compromised is out of scope.  ``AttackModel`` couples a
:class:`~repro.core.model.system.SystemModel` with a
:class:`~repro.core.model.capabilities.CapabilityMap` and is what rules are
validated against: a rule demanding a capability outside γ(n) is rejected,
which is how a tester evaluates the same attack under different attacker
assumptions (the Section IV-C illustration).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple

from repro.core.model.capabilities import (
    Capability,
    CapabilityMap,
    gamma_no_tls,
    gamma_tls,
)
from repro.core.model.system import SystemModel

ConnectionKey = Tuple[str, str]


class CapabilityViolation(Exception):
    """An attack requires capabilities the attacker model does not grant."""

    def __init__(
        self,
        connection: ConnectionKey,
        missing: Iterable[Capability],
        context: str = "",
    ) -> None:
        self.connection = tuple(connection)
        self.missing = frozenset(missing)
        missing_names = ", ".join(sorted(c.value for c in self.missing))
        suffix = f" ({context})" if context else ""
        super().__init__(
            f"connection {self.connection} lacks capabilities: {missing_names}{suffix}"
        )


class AttackModel:
    """System model + per-connection attacker capabilities."""

    def __init__(self, system: SystemModel, capabilities: CapabilityMap) -> None:
        self.system = system
        self.capabilities = capabilities
        known = set(system.connection_keys())
        for connection in capabilities.connections():
            if connection not in known:
                raise ValueError(
                    f"capability map references connection {connection} "
                    "that is not in N_C"
                )

    # ------------------------------------------------------------------ #
    # Standard attacker placements
    # ------------------------------------------------------------------ #

    @classmethod
    def no_tls_everywhere(cls, system: SystemModel) -> "AttackModel":
        """Attacker on every connection, no TLS: γ(n) = Γ for all n."""
        return cls(
            system,
            CapabilityMap.uniform(system.connection_keys(), gamma_no_tls()),
        )

    @classmethod
    def tls_everywhere(cls, system: SystemModel) -> "AttackModel":
        """Attacker on every connection, TLS with intact PKI: γ(n) = Γ_TLS."""
        return cls(
            system,
            CapabilityMap.uniform(system.connection_keys(), gamma_tls()),
        )

    @classmethod
    def compromised(
        cls,
        system: SystemModel,
        connections: Iterable[ConnectionKey],
        tls: bool = False,
    ) -> "AttackModel":
        """Attacker only on ``connections`` (e.g. just (c1, s1))."""
        capability_set = gamma_tls() if tls else gamma_no_tls()
        return cls(system, CapabilityMap.uniform(connections, capability_set))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def gamma(self, connection: ConnectionKey) -> FrozenSet[Capability]:
        return self.capabilities.gamma(connection)

    def check(
        self,
        connection: ConnectionKey,
        required: Iterable[Capability],
        context: str = "",
    ) -> None:
        """Raise :class:`CapabilityViolation` unless required ⊆ γ(connection)."""
        granted = self.gamma(connection)
        missing = frozenset(required) - granted
        if missing:
            raise CapabilityViolation(connection, missing, context)

    def allows(self, connection: ConnectionKey, capability: Capability) -> bool:
        return self.capabilities.allows(connection, capability)

    def attacked_connections(self) -> list:
        """Connections where the attacker has at least one capability."""
        return [
            connection
            for connection in self.system.connection_keys()
            if self.gamma(connection)
        ]

    def __repr__(self) -> str:
        return (
            f"<AttackModel attacked={len(self.attacked_connections())}/"
            f"{len(self.system.control_connections)} connections>"
        )
