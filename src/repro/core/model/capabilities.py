"""Attacker capabilities Γ (Table I) and the Γ_NC capability map.

Capabilities describe "the extent to which an attacker can understand or
modify control messages in N_C" (Section IV-C).  They are mapped onto
control-plane connections, and the two standard capability classes model
connections with and without TLS protection.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

ConnectionKey = Tuple[str, str]  # (controller name, switch name)


class Capability(enum.Enum):
    """The ten attacker capabilities of Table I."""

    DROP_MESSAGE = "DropMessage"
    PASS_MESSAGE = "PassMessage"
    DELAY_MESSAGE = "DelayMessage"
    DUPLICATE_MESSAGE = "DuplicateMessage"
    READ_MESSAGE_METADATA = "ReadMessageMetadata"
    MODIFY_MESSAGE_METADATA = "ModifyMessageMetadata"
    FUZZ_MESSAGE = "FuzzMessage"
    READ_MESSAGE = "ReadMessage"
    MODIFY_MESSAGE = "ModifyMessage"
    INJECT_NEW_MESSAGE = "InjectNewMessage"

    @classmethod
    def from_name(cls, name: str) -> "Capability":
        """Resolve a capability by its paper name, case-insensitively."""
        normalized = name.replace("_", "").replace("-", "").lower()
        for capability in cls:
            if capability.value.lower() == normalized:
                return capability
            if capability.name.replace("_", "").lower() == normalized:
                return capability
        raise ValueError(f"unknown attacker capability {name!r}")

    def __repr__(self) -> str:
        return f"Capability.{self.name}"


def gamma_all() -> FrozenSet[Capability]:
    """Γ — the set of all possible attacker capabilities."""
    return frozenset(Capability)


def gamma_no_tls() -> FrozenSet[Capability]:
    """Γ_NoTLS = Γ: plain-TCP connections give the attacker everything."""
    return gamma_all()


def gamma_tls() -> FrozenSet[Capability]:
    """Γ_TLS: TLS (with an uncompromised PKI) removes the payload-touching
    and masquerading capabilities.

    Formally Γ_TLS = Γ \\ {READMESSAGE, MODIFYMESSAGE, FUZZMESSAGE,
    INJECTNEWMESSAGE, MODIFYMESSAGEMETADATA} (Section IV-C2).
    """
    return gamma_all() - {
        Capability.READ_MESSAGE,
        Capability.MODIFY_MESSAGE,
        Capability.FUZZ_MESSAGE,
        Capability.INJECT_NEW_MESSAGE,
        Capability.MODIFY_MESSAGE_METADATA,
    }


class CapabilityMap:
    """Γ_NC : N_C → P(Γ) — per-connection attacker capabilities.

    Connections not present in the map have no attacker presence at all
    (the empty capability set): the injector forwards their traffic
    untouched and rules may not bind to them.
    """

    def __init__(
        self, assignments: Mapping[ConnectionKey, Iterable[Capability]] = ()
    ) -> None:
        self._map: Dict[ConnectionKey, FrozenSet[Capability]] = {}
        if assignments:
            for connection, capabilities in dict(assignments).items():
                self.assign(connection, capabilities)

    def assign(
        self, connection: ConnectionKey, capabilities: Iterable[Capability]
    ) -> None:
        """Set γ(connection); replaces any previous assignment."""
        capability_set = frozenset(capabilities)
        for capability in capability_set:
            if not isinstance(capability, Capability):
                raise TypeError(f"not a Capability: {capability!r}")
        self._map[tuple(connection)] = capability_set

    def gamma(self, connection: ConnectionKey) -> FrozenSet[Capability]:
        """γ(connection) — the empty set when the attacker is absent."""
        return self._map.get(tuple(connection), frozenset())

    def allows(self, connection: ConnectionKey, capability: Capability) -> bool:
        return capability in self.gamma(connection)

    def connections(self):
        return list(self._map)

    def __contains__(self, connection: ConnectionKey) -> bool:
        return tuple(connection) in self._map

    def __len__(self) -> int:
        return len(self._map)

    @classmethod
    def uniform(
        cls, connections: Iterable[ConnectionKey], capabilities: Iterable[Capability]
    ) -> "CapabilityMap":
        """Assign the same capability set to every listed connection."""
        capability_set = frozenset(capabilities)
        return cls({tuple(connection): capability_set for connection in connections})

    def __repr__(self) -> str:
        return f"<CapabilityMap connections={len(self._map)}>"
