"""ATTAIN's core: attack model, attack language, compiler, injector, monitors.

This package is the paper's primary contribution:

* :mod:`repro.core.model` — the system / threat / attacker-capabilities
  models of Section IV;
* :mod:`repro.core.lang` — the attack language of Section V (message
  properties, conditionals, storage deques, actions, rules, attack states,
  and the attack state graph);
* :mod:`repro.core.compiler` — the Section VI-B1 compiler: XML parsers for
  the system model, attack model, and attack states files, plus the
  executable-code generator;
* :mod:`repro.core.injector` — the Section VI-B2 runtime injector: the
  control-plane connection proxy, the attack executor (Algorithm 1), and
  the message modifier;
* :mod:`repro.core.monitors` — the Section VI-B3 monitors.
"""

from repro.core.lang import (
    Attack,
    AttackState,
    AttackStateGraph,
    Rule,
)
from repro.core.model import (
    AttackModel,
    Capability,
    CapabilityMap,
    ControlConnection,
    SystemModel,
    gamma_all,
    gamma_no_tls,
    gamma_tls,
)
from repro.core.injector import RuntimeInjector

__all__ = [
    "Attack",
    "AttackModel",
    "AttackState",
    "AttackStateGraph",
    "Capability",
    "CapabilityMap",
    "ControlConnection",
    "Rule",
    "RuntimeInjector",
    "SystemModel",
    "gamma_all",
    "gamma_no_tls",
    "gamma_tls",
]
