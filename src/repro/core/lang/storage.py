"""Attack storage Δ: the set of double-ended queues (Section V-C).

"Deques can operate like queues or like stacks" — they hold previous
messages for replay/reordering or general-purpose variables such as
counters (the Section VIII-B modelling-efficiency idiom).
"""

from __future__ import annotations

from collections import deque as _deque
from typing import Any, Dict, Iterable, List, Optional


class DequeEmptyError(Exception):
    """Raised when removing from an empty deque."""


class Deque:
    """One named double-ended queue δ ∈ Δ."""

    def __init__(self, name: str, initial: Iterable[Any] = ()) -> None:
        self.name = name
        self._items: _deque = _deque(initial)
        self.total_prepends = 0
        self.total_appends = 0
        self.tracer = None

    def _trace(self, op: str) -> None:
        self.tracer.emit("deque", deque=self.name, op=op,
                         size=len(self._items))

    # -- mutations (the Section V-D deque operations) -------------------- #

    def prepend(self, value: Any) -> None:
        """PREPEND(δ, value): add value to the front of δ."""
        self.total_prepends += 1
        self._items.appendleft(value)
        if self.tracer is not None:
            self._trace("prepend")

    def append(self, value: Any) -> None:
        """APPEND(δ, value): add value to the end of δ."""
        self.total_appends += 1
        self._items.append(value)
        if self.tracer is not None:
            self._trace("append")

    def shift(self) -> Any:
        """value ← SHIFT(δ): remove and return the front element."""
        if not self._items:
            raise DequeEmptyError(f"SHIFT on empty deque {self.name!r}")
        value = self._items.popleft()
        if self.tracer is not None:
            self._trace("shift")
        return value

    def pop(self) -> Any:
        """value ← POP(δ): remove and return the end element."""
        if not self._items:
            raise DequeEmptyError(f"POP on empty deque {self.name!r}")
        value = self._items.pop()
        if self.tracer is not None:
            self._trace("pop")
        return value

    # -- reads ----------------------------------------------------------- #

    def examine_front(self) -> Any:
        """value ← EXAMINEFRONT(δ); None when empty (usable in conditionals)."""
        return self._items[0] if self._items else None

    def examine_end(self) -> Any:
        """value ← EXAMINEEND(δ); None when empty."""
        return self._items[-1] if self._items else None

    def __len__(self) -> int:
        return len(self._items)

    def snapshot(self) -> List[Any]:
        return list(self._items)

    def clear(self) -> None:
        self._items.clear()

    def __repr__(self) -> str:
        return f"<Deque {self.name!r} len={len(self._items)}>"


class StorageSet:
    """Δ = {δ1, δ2, ...}: the attack's named deques.

    Deques are created on first use (declarations in the attack-states file
    pre-create them, optionally with initial contents).
    """

    def __init__(self) -> None:
        self._deques: Dict[str, Deque] = {}
        self._tracer = None

    def set_tracer(self, tracer) -> None:
        """Attach a trace collector to every current and future deque."""
        self._tracer = tracer
        for stored in self._deques.values():
            stored.tracer = tracer

    def declare(self, name: str, initial: Iterable[Any] = ()) -> Deque:
        if name in self._deques:
            raise ValueError(f"deque {name!r} already declared")
        created = Deque(name, initial)
        created.tracer = self._tracer
        self._deques[name] = created
        return created

    def deque(self, name: str) -> Deque:
        """Fetch (creating on demand) the deque called ``name``."""
        existing = self._deques.get(name)
        if existing is None:
            existing = Deque(name)
            existing.tracer = self._tracer
            self._deques[name] = existing
        return existing

    def get(self, name: str) -> Optional[Deque]:
        return self._deques.get(name)

    def names(self) -> List[str]:
        return sorted(self._deques)

    def reset(self) -> None:
        for stored in self._deques.values():
            stored.clear()

    def __len__(self) -> int:
        return len(self._deques)

    def __contains__(self, name: str) -> bool:
        return name in self._deques

    def __repr__(self) -> str:
        return f"<StorageSet deques={self.names()}>"
