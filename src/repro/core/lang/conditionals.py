"""Conditional expressions λ and the shared expression language (Section V-B).

Conditionals are propositional logic over message properties with the
connectives AND, OR, NOT and the operators ``=`` (logical equality) and
``in`` (set membership).  The same expression layer supplies value
expressions for deque actions (e.g. the Section VIII-B counter idiom
``PREPEND(δ, SHIFT(δ) + 1)``), so expressions may deliberately carry
storage side effects.

Every node reports the attacker capabilities needed to *evaluate* it:
metadata properties need READMESSAGEMETADATA, payload properties (TYPE and
all TYPE OPTIONS) need READMESSAGE.  Rule validation aggregates these.
"""

from __future__ import annotations

from typing import Any, Callable, FrozenSet, Iterable, List, Optional, Sequence

from repro.core.lang.properties import (
    METADATA_PROPERTIES,
    InterposedMessage,
    MessageProperty,
)
from repro.core.lang.storage import StorageSet
from repro.core.model.capabilities import Capability


class EvalContext:
    """Evaluation context: the current message, storage Δ, the clock, and
    (for stochastic conditionals) a seeded random stream."""

    __slots__ = ("message", "storage", "now", "rng")

    def __init__(
        self,
        message: Optional[InterposedMessage],
        storage: StorageSet,
        now: float = 0.0,
        rng=None,
    ) -> None:
        self.message = message
        self.storage = storage
        self.now = now
        self.rng = rng


# ---------------------------------------------------------------------- #
# Value expressions
# ---------------------------------------------------------------------- #


class Expression:
    """Base class for value expressions."""

    def evaluate(self, ctx: EvalContext) -> Any:
        raise NotImplementedError

    def compile(self) -> Callable[[EvalContext], Any]:
        """Lower this expression to a plain closure.

        The default falls back to the interpreted :meth:`evaluate`, which is
        the required behaviour for storage-side-effect nodes (SHIFT/POP):
        their interpreted semantics *are* the semantics.  Pure nodes
        override this to return a dedicated closure that skips the AST walk.
        """
        return self.evaluate

    def required_capabilities(self) -> FrozenSet[Capability]:
        return frozenset()

    def children(self) -> Sequence["Expression"]:
        return ()


class Const(Expression):
    """A literal constant (number, string, or a set for ``in``)."""

    def __init__(self, value: Any) -> None:
        self.value = value

    def evaluate(self, ctx: EvalContext) -> Any:
        return self.value

    def compile(self) -> Callable[[EvalContext], Any]:
        value = self.value
        return lambda ctx: value

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


class Property(Expression):
    """A Section V-A message property reference."""

    def __init__(self, prop: MessageProperty) -> None:
        self.prop = prop

    def evaluate(self, ctx: EvalContext) -> Any:
        if ctx.message is None:
            return None
        return ctx.message.get_property(self.prop)

    def compile(self) -> Callable[[EvalContext], Any]:
        getter = _PROPERTY_GETTERS[self.prop]

        def run(ctx: EvalContext) -> Any:
            message = ctx.message
            return None if message is None else getter(message)

        return run

    def required_capabilities(self) -> FrozenSet[Capability]:
        if self.prop in METADATA_PROPERTIES:
            return frozenset({Capability.READ_MESSAGE_METADATA})
        return frozenset({Capability.READ_MESSAGE})

    def __repr__(self) -> str:
        return f"Property({self.prop.value})"


#: Direct per-property getters used by compiled Property nodes; each is the
#: body of the matching :meth:`InterposedMessage.get_property` branch.
_PROPERTY_GETTERS = {
    MessageProperty.SOURCE: lambda m: m.source,
    MessageProperty.DESTINATION: lambda m: m.destination,
    MessageProperty.TIMESTAMP: lambda m: m.timestamp,
    MessageProperty.LENGTH: lambda m: len(m.raw),
    MessageProperty.ID: lambda m: m.msg_id,
    MessageProperty.TYPE: lambda m: m.message_type_name,
}


class TypeOption(Expression):
    """A MESSAGETYPEOPTIONS reference, e.g. ``opt.match.nw_src``."""

    def __init__(self, path: str) -> None:
        self.path = path

    def evaluate(self, ctx: EvalContext) -> Any:
        if ctx.message is None:
            return None
        return ctx.message.get_type_option(self.path)

    def compile(self) -> Callable[[EvalContext], Any]:
        path = self.path

        def run(ctx: EvalContext) -> Any:
            message = ctx.message
            return None if message is None else message.get_type_option(path)

        return run

    def required_capabilities(self) -> FrozenSet[Capability]:
        return frozenset({Capability.READ_MESSAGE})

    def __repr__(self) -> str:
        return f"TypeOption({self.path!r})"


class MessageRef(Expression):
    """The current message itself (for storing messages in deques)."""

    def evaluate(self, ctx: EvalContext) -> Any:
        return ctx.message

    def compile(self) -> Callable[[EvalContext], Any]:
        return lambda ctx: ctx.message

    def required_capabilities(self) -> FrozenSet[Capability]:
        # Storing a message for replay requires having read it.
        return frozenset({Capability.READ_MESSAGE_METADATA})

    def __repr__(self) -> str:
        return "MessageRef()"


class _DequeExpr(Expression):
    def __init__(self, deque_name: str) -> None:
        self.deque_name = deque_name

    def _deque(self, ctx: EvalContext):
        return ctx.storage.deque(self.deque_name)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.deque_name!r})"


class ExamineFront(_DequeExpr):
    """value ← EXAMINEFRONT(δ): read the front element (no removal)."""

    def evaluate(self, ctx: EvalContext) -> Any:
        return self._deque(ctx).examine_front()

    def compile(self) -> Callable[[EvalContext], Any]:
        name = self.deque_name
        return lambda ctx: ctx.storage.deque(name).examine_front()


class ExamineEnd(_DequeExpr):
    """value ← EXAMINEEND(δ): read the end element (no removal)."""

    def evaluate(self, ctx: EvalContext) -> Any:
        return self._deque(ctx).examine_end()

    def compile(self) -> Callable[[EvalContext], Any]:
        name = self.deque_name
        return lambda ctx: ctx.storage.deque(name).examine_end()


class ShiftExpr(_DequeExpr):
    """value ← SHIFT(δ): remove and return the front element.

    Mutates storage, so :meth:`compile` keeps the interpreted fallback.
    """

    def evaluate(self, ctx: EvalContext) -> Any:
        return self._deque(ctx).shift()


class PopExpr(_DequeExpr):
    """value ← POP(δ): remove and return the end element.

    Mutates storage, so :meth:`compile` keeps the interpreted fallback.
    """

    def evaluate(self, ctx: EvalContext) -> Any:
        return self._deque(ctx).pop()


class Sum(Expression):
    """Left-associative ``+``/``-`` arithmetic over expressions."""

    def __init__(self, first: Expression, rest: Iterable = ()) -> None:
        self.first = first
        self.rest: List = list(rest)  # [(op, expr), ...] with op in "+-"

    def evaluate(self, ctx: EvalContext) -> Any:
        value = self.first.evaluate(ctx)
        for op, expr in self.rest:
            operand = expr.evaluate(ctx)
            value = 0 if value is None else value
            operand = 0 if operand is None else operand
            value = value + operand if op == "+" else value - operand
        return value

    def compile(self) -> Callable[[EvalContext], Any]:
        first = self.first.compile()
        rest = tuple((op == "+", expr.compile()) for op, expr in self.rest)

        def run(ctx: EvalContext) -> Any:
            value = first(ctx)
            for add, operand_fn in rest:
                operand = operand_fn(ctx)
                value = 0 if value is None else value
                operand = 0 if operand is None else operand
                value = value + operand if add else value - operand
            return value

        return run

    def required_capabilities(self) -> FrozenSet[Capability]:
        caps = set(self.first.required_capabilities())
        for _op, expr in self.rest:
            caps |= expr.required_capabilities()
        return frozenset(caps)

    def children(self) -> Sequence[Expression]:
        return [self.first] + [expr for _op, expr in self.rest]

    def __repr__(self) -> str:
        parts = [repr(self.first)] + [f"{op} {expr!r}" for op, expr in self.rest]
        return f"Sum({' '.join(parts)})"


# ---------------------------------------------------------------------- #
# Conditions
# ---------------------------------------------------------------------- #


class Condition:
    """Base class for conditional expressions λ."""

    def evaluate(self, ctx: EvalContext) -> bool:
        raise NotImplementedError

    def compile(self) -> Callable[[EvalContext], bool]:
        """Lower this conditional to a plain closure.

        The default falls back to the interpreted :meth:`evaluate`; the
        stochastic :class:`Probability` node keeps that fallback so its
        seeded-random draw order stays identical run-to-run.
        """
        return self.evaluate

    def required_capabilities(self) -> FrozenSet[Capability]:
        return frozenset()

    def __call__(self, ctx: EvalContext) -> bool:
        return self.evaluate(ctx)


def compile_condition(condition: Condition) -> Callable[[EvalContext], bool]:
    """Lower a λ AST to a Python closure (the executor's fast lane).

    Called once at attack-load time; the returned closure is semantically
    identical to ``condition.evaluate`` (including short-circuit order and
    storage side effects) but skips the per-message AST walk.  Stochastic
    and storage-side-effect nodes fall back to their interpreted
    ``evaluate`` internally.
    """
    return condition.compile()


class TrueCondition(Condition):
    """Matches every message (the trivial pass-everything rule of Fig. 5)."""

    def evaluate(self, ctx: EvalContext) -> bool:
        return True

    def compile(self) -> Callable[[EvalContext], bool]:
        return lambda ctx: True

    def __repr__(self) -> str:
        return "TrueCondition()"


def _as_number(value: Any):
    """Coerce a DSL value to a float for ordering, or None if impossible."""
    if isinstance(value, bool) or value is None:
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            return None
    return None


def smart_eq(left: Any, right: Any) -> bool:
    """Loose equality used by the DSL's ``=`` operator.

    Compares values directly first, then falls back to canonical string
    comparison so that e.g. ``Ipv4Address("10.0.0.2")``, ``"10.0.0.2"``,
    enum members, and their names all compare naturally.
    """
    if left is None or right is None:
        return left is None and right is None
    try:
        if left == right:
            return True
    except TypeError:
        pass
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    if isinstance(left, (int, float)) and isinstance(right, str):
        try:
            return float(left) == float(right)
        except ValueError:
            return False
    if isinstance(right, (int, float)) and isinstance(left, str):
        try:
            return float(right) == float(left)
        except ValueError:
            return False
    return str(left) == str(right)


class Comparison(Condition):
    """``=``, ``!=``, ``<``, ``>``, or set membership ``in``.

    The ordering operators are numeric (an extension beyond the paper's
    ``=``/``in``; they make time- and size-gated conditionals like
    ``timestamp > 30`` or ``length > 128`` expressible).
    """

    OPS = ("=", "!=", "<", ">", "in")

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in self.OPS:
            raise ValueError(f"unsupported comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, ctx: EvalContext) -> bool:
        left = self.left.evaluate(ctx)
        right = self.right.evaluate(ctx)
        if self.op == "=":
            return smart_eq(left, right)
        if self.op == "!=":
            return not smart_eq(left, right)
        if self.op in ("<", ">"):
            left_num = _as_number(left)
            right_num = _as_number(right)
            if left_num is None or right_num is None:
                return False
            return left_num < right_num if self.op == "<" else left_num > right_num
        # Membership: right must be iterable; compare with smart_eq so
        # "10.0.0.3" matches Ipv4Address("10.0.0.3") etc.
        if right is None:
            return False
        try:
            candidates = list(right)
        except TypeError:
            return False
        return any(smart_eq(left, candidate) for candidate in candidates)

    def compile(self) -> Callable[[EvalContext], bool]:
        left = self.left.compile()
        right = self.right.compile()
        op = self.op
        if op == "=":
            return lambda ctx: smart_eq(left(ctx), right(ctx))
        if op == "!=":
            return lambda ctx: not smart_eq(left(ctx), right(ctx))
        if op in ("<", ">"):
            less = op == "<"

            def run_order(ctx: EvalContext) -> bool:
                left_num = _as_number(left(ctx))
                right_num = _as_number(right(ctx))
                if left_num is None or right_num is None:
                    return False
                return left_num < right_num if less else left_num > right_num

            return run_order
        # Membership.  A constant right side is materialized once.
        if isinstance(self.right, Const):
            try:
                candidates = list(self.right.value) if self.right.value is not None else None
            except TypeError:
                candidates = None

            def run_in_const(ctx: EvalContext) -> bool:
                lhs = left(ctx)
                if candidates is None:
                    return False
                return any(smart_eq(lhs, candidate) for candidate in candidates)

            return run_in_const

        def run_in(ctx: EvalContext) -> bool:
            # Evaluate left before right — interpreted order, which matters
            # when either operand carries storage side effects.
            lhs = left(ctx)
            rhs = right(ctx)
            if rhs is None:
                return False
            try:
                values = list(rhs)
            except TypeError:
                return False
            return any(smart_eq(lhs, candidate) for candidate in values)

        return run_in

    def required_capabilities(self) -> FrozenSet[Capability]:
        return self.left.required_capabilities() | self.right.required_capabilities()

    def __repr__(self) -> str:
        return f"Comparison({self.left!r} {self.op} {self.right!r})"


class And(Condition):
    """Logical conjunction (∧)."""

    def __init__(self, *terms: Condition) -> None:
        self.terms = list(terms)

    def evaluate(self, ctx: EvalContext) -> bool:
        return all(term.evaluate(ctx) for term in self.terms)

    def compile(self) -> Callable[[EvalContext], bool]:
        compiled = tuple(term.compile() for term in self.terms)
        if len(compiled) == 2:
            first, second = compiled
            return lambda ctx: first(ctx) and second(ctx)
        return lambda ctx: all(term(ctx) for term in compiled)

    def required_capabilities(self) -> FrozenSet[Capability]:
        caps = set()
        for term in self.terms:
            caps |= term.required_capabilities()
        return frozenset(caps)

    def __repr__(self) -> str:
        return f"And({', '.join(map(repr, self.terms))})"


class Or(Condition):
    """Logical disjunction (∨)."""

    def __init__(self, *terms: Condition) -> None:
        self.terms = list(terms)

    def evaluate(self, ctx: EvalContext) -> bool:
        return any(term.evaluate(ctx) for term in self.terms)

    def compile(self) -> Callable[[EvalContext], bool]:
        compiled = tuple(term.compile() for term in self.terms)
        if len(compiled) == 2:
            first, second = compiled
            return lambda ctx: first(ctx) or second(ctx)
        return lambda ctx: any(term(ctx) for term in compiled)

    def required_capabilities(self) -> FrozenSet[Capability]:
        caps = set()
        for term in self.terms:
            caps |= term.required_capabilities()
        return frozenset(caps)

    def __repr__(self) -> str:
        return f"Or({', '.join(map(repr, self.terms))})"


class Probability(Condition):
    """Stochastic conditional: true with probability ``p``.

    The paper's language "implements deterministic attacks in the context
    of our testing, but we will consider stochastic ... decision-making in
    future work" (Section VIII-A); this node is that extension.  The draw
    comes from the evaluation context's *seeded* random stream, so a
    stochastic attack is still replayable run-to-run.
    """

    def __init__(self, p: float) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {p!r}")
        self.p = p

    def evaluate(self, ctx: EvalContext) -> bool:
        if self.p >= 1.0:
            return True
        if self.p <= 0.0 or ctx.rng is None:
            # Without a random stream a stochastic rule never fires —
            # deterministic contexts stay deterministic.
            return False
        return ctx.rng.random() < self.p

    # compile() deliberately not overridden: the stochastic draw keeps the
    # interpreted fallback so replayability analysis has one code path.

    def __repr__(self) -> str:
        return f"Probability({self.p})"


class Not(Condition):
    """Logical negation (¬)."""

    def __init__(self, term: Condition) -> None:
        self.term = term

    def evaluate(self, ctx: EvalContext) -> bool:
        return not self.term.evaluate(ctx)

    def compile(self) -> Callable[[EvalContext], bool]:
        term = self.term.compile()
        return lambda ctx: not term(ctx)

    def required_capabilities(self) -> FrozenSet[Capability]:
        return self.term.required_capabilities()

    def __repr__(self) -> str:
        return f"Not({self.term!r})"


# ---------------------------------------------------------------------- #
# Static analysis for the executor's rule index
# ---------------------------------------------------------------------- #


def condition_message_types(condition: Condition) -> Optional[FrozenSet[str]]:
    """Over-approximate the message TYPE values a conditional can match.

    Returns the set of ``MESSAGETYPE`` names for which ``condition`` could
    possibly evaluate true, or ``None`` when the conditional does not
    constrain the type (it must be evaluated for every message).  The
    analysis is conservative — a returned set may be too large, never too
    small — so the executor's per-type rule index can safely skip any rule
    whose set excludes the incoming message's type.
    """
    if isinstance(condition, Comparison):
        if condition.op == "=":
            const = _type_equality_const(condition)
            if const is not None:
                return frozenset({str(const)})
            return None
        if condition.op == "in":
            if isinstance(condition.left, Property) and isinstance(condition.right, Const):
                if condition.left.prop is MessageProperty.TYPE:
                    try:
                        values = list(condition.right.value)
                    except TypeError:
                        return None
                    return frozenset(str(value) for value in values)
            return None
        return None
    if isinstance(condition, And):
        known = [
            types
            for types in (condition_message_types(term) for term in condition.terms)
            if types is not None
        ]
        if not known:
            return None
        result = known[0]
        for types in known[1:]:
            result &= types
        return result
    if isinstance(condition, Or):
        union: set = set()
        for term in condition.terms:
            types = condition_message_types(term)
            if types is None:
                return None
            union |= types
        return frozenset(union)
    return None


def _type_equality_const(comparison: Comparison) -> Optional[Any]:
    """The constant a ``TYPE = const`` comparison pins, if it is one."""
    left, right = comparison.left, comparison.right
    if isinstance(left, Property) and left.prop is MessageProperty.TYPE:
        if isinstance(right, Const):
            return right.value
    if isinstance(right, Property) and right.prop is MessageProperty.TYPE:
        if isinstance(left, Const):
            return left.value
    return None
