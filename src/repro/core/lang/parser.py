"""Textual parser for conditional expressions and value expressions.

The attack-states XML file (Section VI-B1) carries conditionals as text,
e.g.::

    type = FLOW_MOD and destination in {s1, s2, s3, s4}
    source = s2 and opt.match.nw_src = 10.0.0.2
    front(counter) = 3

Grammar (propositional logic with AND/OR/NOT, parentheses, ``=`` and
``in``, exactly the connectives of Section V-B, plus the arithmetic the
deque-counter idiom of Section VIII-B needs):

* properties: ``type source destination length timestamp id``;
* type options: ``opt.<path>`` (e.g. ``opt.match.nw_src``, ``opt.packet.tp_dst``);
* deque reads: ``front(name) end(name) shift(name) pop(name)``;
* the current message: ``msg``;
* literals: integers, quoted strings, barewords (``FLOW_MOD``, ``s2``,
  ``10.0.0.2``), and set literals ``{a, b, c}``.
"""

from __future__ import annotations

import re
from typing import Any, List, Optional, Tuple

from repro.core.lang.conditionals import (
    And,
    Comparison,
    Condition,
    Const,
    ExamineEnd,
    ExamineFront,
    Expression,
    MessageRef,
    Not,
    Or,
    PopExpr,
    Probability,
    Property,
    ShiftExpr,
    Sum,
    TrueCondition,
    TypeOption,
)
from repro.core.lang.properties import MessageProperty


class ConditionParseError(Exception):
    """Raised for malformed conditional text."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<op>!=|=|<|>|\(|\)|\{|\}|,|\+|-)
  | (?P<word>[A-Za-z0-9_.:]+)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "in", "true", "false"}
_PROPERTIES = {
    "type": MessageProperty.TYPE,
    "source": MessageProperty.SOURCE,
    "destination": MessageProperty.DESTINATION,
    "length": MessageProperty.LENGTH,
    "timestamp": MessageProperty.TIMESTAMP,
    "id": MessageProperty.ID,
}
_DEQUE_FUNCS = {
    "front": ExamineFront,
    "end": ExamineEnd,
    "shift": ShiftExpr,
    "pop": PopExpr,
}


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ConditionParseError(
                f"unexpected character {text[pos]!r} at offset {pos} in {text!r}"
            )
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        value = match.group()
        if match.lastgroup == "string":
            tokens.append(("string", value[1:-1]))
        elif match.lastgroup == "op":
            tokens.append(("op", value))
        else:
            lowered = value.lower()
            if lowered in _KEYWORDS:
                tokens.append(("kw", lowered))
            else:
                tokens.append(("word", value))
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]], text: str) -> None:
        self.tokens = tokens
        self.text = text
        self.index = 0

    # -- token helpers --------------------------------------------------- #

    def peek(self) -> Optional[Tuple[str, str]]:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def advance(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise ConditionParseError(f"unexpected end of input in {self.text!r}")
        self.index += 1
        return token

    def accept(self, kind: str, value: Optional[str] = None) -> bool:
        token = self.peek()
        if token is None or token[0] != kind:
            return False
        if value is not None and token[1] != value:
            return False
        self.index += 1
        return True

    def expect(self, kind: str, value: str) -> None:
        if not self.accept(kind, value):
            found = self.peek()
            raise ConditionParseError(
                f"expected {value!r} but found {found!r} in {self.text!r}"
            )

    # -- condition grammar ------------------------------------------------ #

    def parse_condition(self) -> Condition:
        condition = self.parse_or()
        if self.peek() is not None:
            raise ConditionParseError(
                f"trailing tokens {self.tokens[self.index:]} in {self.text!r}"
            )
        return condition

    def parse_or(self) -> Condition:
        terms = [self.parse_and()]
        while self.accept("kw", "or"):
            terms.append(self.parse_and())
        return terms[0] if len(terms) == 1 else Or(*terms)

    def parse_and(self) -> Condition:
        terms = [self.parse_unary()]
        while self.accept("kw", "and"):
            terms.append(self.parse_unary())
        return terms[0] if len(terms) == 1 else And(*terms)

    def parse_unary(self) -> Condition:
        if self.accept("kw", "not"):
            return Not(self.parse_unary())
        if self.accept("op", "("):
            inner = self.parse_or()
            self.expect("op", ")")
            return inner
        if self.accept("kw", "true"):
            return TrueCondition()
        if self.accept("kw", "false"):
            return Not(TrueCondition())
        token = self.peek()
        if token is not None and token[0] == "word" and token[1].lower() == "prob":
            return self.parse_probability()
        return self.parse_comparison()

    def parse_probability(self) -> Condition:
        self.advance()  # the 'prob' word
        self.expect("op", "(")
        token = self.advance()
        if token[0] != "word":
            raise ConditionParseError(f"prob() expects a number, found {token!r}")
        try:
            p = float(token[1])
        except ValueError as exc:
            raise ConditionParseError(
                f"prob() expects a number, found {token[1]!r}"
            ) from exc
        self.expect("op", ")")
        return Probability(p)

    def parse_comparison(self) -> Condition:
        left = self.parse_sum()
        token = self.peek()
        if token in (("op", "="), ("op", "!="), ("op", "<"), ("op", ">")):
            self.advance()
            right = self.parse_sum()
            return Comparison(token[1], left, right)
        if token == ("kw", "in"):
            self.advance()
            right = self.parse_sum()
            return Comparison("in", left, right)
        raise ConditionParseError(
            f"expected a comparison operator after {left!r} in {self.text!r}"
        )

    # -- expression grammar ------------------------------------------------ #

    def parse_sum(self) -> Expression:
        first = self.parse_term()
        rest = []
        while True:
            token = self.peek()
            if token in (("op", "+"), ("op", "-")):
                self.advance()
                rest.append((token[1], self.parse_term()))
            else:
                break
        return first if not rest else Sum(first, rest)

    def parse_term(self) -> Expression:
        token = self.advance()
        kind, value = token
        if kind == "string":
            return Const(value)
        if kind == "op" and value == "{":
            return self.parse_set()
        if kind == "word":
            return self.parse_word(value)
        raise ConditionParseError(f"unexpected token {token!r} in {self.text!r}")

    def parse_set(self) -> Expression:
        items: List[Any] = []
        if self.accept("op", "}"):
            return Const(frozenset())
        while True:
            token = self.advance()
            if token[0] not in ("word", "string"):
                raise ConditionParseError(
                    f"set literals may only contain constants, found {token!r}"
                )
            items.append(_word_to_value(token[1]) if token[0] == "word" else token[1])
            if self.accept("op", "}"):
                break
            self.expect("op", ",")
        return Const(frozenset(items))

    def parse_word(self, word: str) -> Expression:
        lowered = word.lower()
        if lowered == "msg":
            return MessageRef()
        if lowered in _PROPERTIES:
            return Property(_PROPERTIES[lowered])
        if lowered.startswith("opt.") and len(word) > 4:
            return TypeOption(word[4:])
        if lowered in _DEQUE_FUNCS and self.peek() == ("op", "("):
            self.advance()
            name_token = self.advance()
            if name_token[0] != "word":
                raise ConditionParseError(
                    f"deque function expects a name, found {name_token!r}"
                )
            self.expect("op", ")")
            return _DEQUE_FUNCS[lowered](name_token[1])
        return Const(_word_to_value(word))


def _word_to_value(word: str) -> Any:
    """Barewords: pure digits become ints; everything else stays a string."""
    if word.isdigit():
        return int(word)
    return word


def parse_condition(text: str) -> Condition:
    """Parse conditional text into a :class:`Condition` AST."""
    stripped = text.strip()
    if not stripped:
        return TrueCondition()
    return _Parser(_tokenize(stripped), stripped).parse_condition()


def parse_expression(text: str) -> Expression:
    """Parse value-expression text (used by deque action arguments)."""
    stripped = text.strip()
    if not stripped:
        raise ConditionParseError("empty expression")
    parser = _Parser(_tokenize(stripped), stripped)
    expression = parser.parse_sum()
    if parser.peek() is not None:
        raise ConditionParseError(
            f"trailing tokens {parser.tokens[parser.index:]} in {stripped!r}"
        )
    return expression
