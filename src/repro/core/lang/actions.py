"""Attack actions α (Section V-D).

Each action either actuates one attacker capability from Table I
(``required_capability`` names it), operates on storage Δ, or is one of the
framework actions GOTOSTATE / SLEEP / SYSCMD.  Actions run inside an
:class:`ActionContext` supplied by the attack executor; capability-derived
actions manipulate the outgoing message list exactly as the paper's
MESSAGEMODIFIER does (Algorithm 1, line 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, FrozenSet, List, Optional, Union

from repro.netlib.addresses import Ipv4Address, MacAddress
from repro.openflow.match import MATCH_FIELD_NAMES
from repro.openflow.messages import FlowMod, FlowRemoved, OpenFlowMessage, PacketIn, PacketOut
from repro.core.lang.conditionals import EvalContext, Expression
from repro.core.lang.properties import InterposedMessage
from repro.core.model.capabilities import Capability


@dataclass
class OutgoingMessage:
    """One entry of the executor's outgoing message list (msg_out)."""

    message: InterposedMessage
    delay: float = 0.0
    injected: bool = False

    def __repr__(self) -> str:
        marks = []
        if self.delay:
            marks.append(f"+{self.delay}s")
        if self.injected:
            marks.append("injected")
        suffix = f" [{' '.join(marks)}]" if marks else ""
        return f"<Outgoing {self.message!r}{suffix}>"


class ActionContext:
    """Everything an action may touch while executing.

    ``out`` is the outgoing message list seeded with the incoming message
    (Algorithm 1, line 5).  ``goto``/``sleep``/``syscmd`` are executor
    hooks; ``record`` feeds the monitors; ``rng`` seeds FUZZMESSAGE.
    """

    def __init__(
        self,
        eval_ctx: EvalContext,
        out: List[OutgoingMessage],
        goto: Callable[[str], None],
        sleep: Callable[[float], None],
        syscmd: Callable[[str, str], None],
        record: Callable[[str, dict], None],
        rng,
    ) -> None:
        self.eval_ctx = eval_ctx
        self.out = out
        self.goto = goto
        self.sleep = sleep
        self.syscmd = syscmd
        self.record = record
        self.rng = rng

    @property
    def message(self) -> Optional[InterposedMessage]:
        return self.eval_ctx.message

    def current_entry(self) -> Optional[OutgoingMessage]:
        """The msg_out entry carrying the incoming message, if still present."""
        incoming = self.message
        if incoming is None:
            return None
        for entry in self.out:
            if entry.message is incoming:
                return entry
        return None


class AttackAction:
    """Base class for all actions."""

    #: The Table I capability this action actuates; None for storage and
    #: framework actions.
    required_capability: Optional[Capability] = None

    def apply(self, ctx: ActionContext) -> None:
        raise NotImplementedError

    def required_capabilities(self) -> FrozenSet[Capability]:
        """All capabilities needed: own capability + argument expressions'."""
        caps = set()
        if self.required_capability is not None:
            caps.add(self.required_capability)
        for expr in self.argument_expressions():
            caps |= expr.required_capabilities()
        return frozenset(caps)

    def argument_expressions(self) -> List[Expression]:
        return []

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


# ---------------------------------------------------------------------- #
# Capability actions (Table I)
# ---------------------------------------------------------------------- #


class PassMessage(AttackAction):
    """PASSMESSAGE(msg): allow the message through (explicit no-op)."""

    required_capability = Capability.PASS_MESSAGE

    def apply(self, ctx: ActionContext) -> None:
        ctx.record("pass_message", {"id": ctx.message.msg_id if ctx.message else None})


class DropMessage(AttackAction):
    """DROPMESSAGE(msg): remove the message from the outgoing list."""

    required_capability = Capability.DROP_MESSAGE

    def apply(self, ctx: ActionContext) -> None:
        entry = ctx.current_entry()
        if entry is not None:
            ctx.out.remove(entry)
            ctx.record("drop_message", {"id": entry.message.msg_id})


class DelayMessage(AttackAction):
    """DELAYMESSAGE(msg, t): postpone forwarding by ``seconds``."""

    required_capability = Capability.DELAY_MESSAGE

    def __init__(self, seconds: Union[float, Expression]) -> None:
        self.seconds = seconds

    def apply(self, ctx: ActionContext) -> None:
        entry = ctx.current_entry()
        if entry is None:
            return
        delay = self._resolve(ctx)
        entry.delay += max(0.0, delay)
        ctx.record("delay_message", {"id": entry.message.msg_id, "delay": delay})

    def _resolve(self, ctx: ActionContext) -> float:
        if isinstance(self.seconds, Expression):
            value = self.seconds.evaluate(ctx.eval_ctx)
            return float(value or 0.0)
        return float(self.seconds)

    def argument_expressions(self) -> List[Expression]:
        return [self.seconds] if isinstance(self.seconds, Expression) else []

    def __repr__(self) -> str:
        return f"DelayMessage({self.seconds!r})"


class DuplicateMessage(AttackAction):
    """DUPLICATEMESSAGE(msg): append a replica to the outgoing list."""

    required_capability = Capability.DUPLICATE_MESSAGE

    def __init__(self, copies: int = 1) -> None:
        if copies < 1:
            raise ValueError(f"copies must be >= 1, got {copies!r}")
        self.copies = copies

    def apply(self, ctx: ActionContext) -> None:
        incoming = ctx.message
        if incoming is None:
            return
        for _ in range(self.copies):
            ctx.out.append(OutgoingMessage(incoming.copy(), injected=True))
        ctx.record("duplicate_message", {"id": incoming.msg_id, "copies": self.copies})

    def __repr__(self) -> str:
        return f"DuplicateMessage(copies={self.copies})"


class ReadMessageMetadata(AttackAction):
    """READMESSAGEMETADATA(msg): record addressing/size/time metadata."""

    required_capability = Capability.READ_MESSAGE_METADATA

    def __init__(self, store_to: Optional[str] = None) -> None:
        self.store_to = store_to

    def apply(self, ctx: ActionContext) -> None:
        if ctx.message is None:
            return
        summary = ctx.message.metadata_summary()
        ctx.record("read_message_metadata", summary)
        if self.store_to is not None:
            ctx.eval_ctx.storage.deque(self.store_to).append(summary)

    def __repr__(self) -> str:
        return f"ReadMessageMetadata(store_to={self.store_to!r})"


class ModifyMessageMetadata(AttackAction):
    """MODIFYMESSAGEMETADATA(msg, field, value): rewrite metadata.

    ``destination`` rewrites cause the proxy to re-route the message to the
    named device's connection when one exists.
    """

    required_capability = Capability.MODIFY_MESSAGE_METADATA

    FIELDS = ("source", "destination")

    def __init__(self, metadata_field: str, value: Union[str, Expression]) -> None:
        if metadata_field not in self.FIELDS:
            raise ValueError(f"unsupported metadata field {metadata_field!r}")
        self.metadata_field = metadata_field
        self.value = value

    def apply(self, ctx: ActionContext) -> None:
        if ctx.message is None:
            return
        value = (
            self.value.evaluate(ctx.eval_ctx)
            if isinstance(self.value, Expression)
            else self.value
        )
        ctx.message.metadata_overrides[self.metadata_field] = value
        ctx.record(
            "modify_message_metadata",
            {"id": ctx.message.msg_id, "field": self.metadata_field, "value": value},
        )

    def argument_expressions(self) -> List[Expression]:
        return [self.value] if isinstance(self.value, Expression) else []

    def __repr__(self) -> str:
        return f"ModifyMessageMetadata({self.metadata_field!r}, {self.value!r})"


class FuzzMessage(AttackAction):
    """FUZZMESSAGE(msg): flip random bits, possibly breaking semantics."""

    required_capability = Capability.FUZZ_MESSAGE

    def __init__(self, bit_flips: int = 8, preserve_header: bool = False) -> None:
        if bit_flips < 1:
            raise ValueError(f"bit_flips must be >= 1, got {bit_flips!r}")
        self.bit_flips = bit_flips
        self.preserve_header = preserve_header

    def apply(self, ctx: ActionContext) -> None:
        incoming = ctx.message
        if incoming is None:
            return
        raw = incoming.raw
        if self.preserve_header and len(raw) > 8:
            fuzzed = raw[:8] + ctx.rng.flip_bits(raw[8:], self.bit_flips)
        else:
            fuzzed = ctx.rng.flip_bits(raw, self.bit_flips)
        incoming.set_raw(fuzzed)
        ctx.record("fuzz_message", {"id": incoming.msg_id, "bit_flips": self.bit_flips})

    def __repr__(self) -> str:
        return f"FuzzMessage(bit_flips={self.bit_flips})"


class ReadMessage(AttackAction):
    """READMESSAGE(msg): record the decoded payload; optionally store the
    message itself in a deque for later replay."""

    required_capability = Capability.READ_MESSAGE

    def __init__(self, store_to: Optional[str] = None) -> None:
        self.store_to = store_to

    def apply(self, ctx: ActionContext) -> None:
        if ctx.message is None:
            return
        ctx.record("read_message", ctx.message.payload_summary())
        if self.store_to is not None:
            ctx.eval_ctx.storage.deque(self.store_to).append(ctx.message.copy())

    def __repr__(self) -> str:
        return f"ReadMessage(store_to={self.store_to!r})"


class ModifyMessage(AttackAction):
    """MODIFYMESSAGE(msg, field, value): semantically valid payload edit.

    Field paths name type options, e.g. ``idle_timeout`` or
    ``match.nw_src`` on a FLOW_MOD, ``in_port`` on a PACKET_OUT.  The
    message is re-encoded after the edit, so it stays protocol-conformant.
    """

    required_capability = Capability.MODIFY_MESSAGE

    def __init__(self, field_path: str, value: Union[Any, Expression]) -> None:
        self.field_path = field_path
        self.value = value

    def apply(self, ctx: ActionContext) -> None:
        incoming = ctx.message
        if incoming is None or incoming.parsed is None:
            return
        value = (
            self.value.evaluate(ctx.eval_ctx)
            if isinstance(self.value, Expression)
            else self.value
        )
        message = incoming.parsed
        if self._set_field(message, self.field_path, value):
            # Nested edits (match fields, action ports) bypass the message's
            # __setattr__ cache invalidation — drop the stale pack cache.
            message.invalidate_packed()
            incoming.replace_payload(message)
            ctx.record(
                "modify_message",
                {"id": incoming.msg_id, "field": self.field_path, "value": value},
            )

    @staticmethod
    def _set_field(message: OpenFlowMessage, path: str, value: Any) -> bool:
        head, _, rest = path.partition(".")
        if head == "match" and rest and isinstance(message, (FlowMod, FlowRemoved)):
            if rest not in MATCH_FIELD_NAMES:
                return False
            setattr(message.match, rest, _coerce_match_value(rest, value))
            return True
        if head == "output_port" and isinstance(message, (FlowMod, PacketOut)):
            # Rewrite every OUTPUT action's port — the black-hole primitive:
            # the rule installs, the controller believes it, the traffic
            # goes somewhere else (or nowhere).
            from repro.openflow.actions import OutputAction

            rewrote = False
            for action in message.actions:
                if isinstance(action, OutputAction):
                    action.port = int(value)
                    rewrote = True
            return rewrote
        numeric_fields = {
            FlowMod: ("idle_timeout", "hard_timeout", "priority", "buffer_id",
                      "cookie", "out_port", "flags"),
            PacketIn: ("in_port", "buffer_id", "total_len"),
            PacketOut: ("in_port", "buffer_id"),
        }
        for cls, fields in numeric_fields.items():
            if isinstance(message, cls) and head in fields:
                setattr(message, head, int(value))
                return True
        return False

    def argument_expressions(self) -> List[Expression]:
        return [self.value] if isinstance(self.value, Expression) else []

    def __repr__(self) -> str:
        return f"ModifyMessage({self.field_path!r}, {self.value!r})"


def _coerce_match_value(field_name: str, value: Any):
    if value is None:
        return None
    if field_name in ("dl_src", "dl_dst"):
        return MacAddress(value) if not isinstance(value, MacAddress) else value
    if field_name in ("nw_src", "nw_dst"):
        return Ipv4Address(value) if not isinstance(value, Ipv4Address) else value
    return int(value)


MessageSource = Union[Expression, OpenFlowMessage, Callable[[ActionContext], Any]]


class InjectNewMessage(AttackAction):
    """INJECTNEWMESSAGE: place a new, semantically valid message on the wire.

    The payload source may be an expression over storage (replaying a
    stored :class:`InterposedMessage`), a literal
    :class:`~repro.openflow.messages.OpenFlowMessage`, or a factory
    callable.  The message is emitted on the current rule's connection in
    ``direction`` (defaults to the triggering message's direction).
    """

    required_capability = Capability.INJECT_NEW_MESSAGE

    def __init__(self, source: MessageSource, direction: Optional[str] = None) -> None:
        self.source = source
        self.direction = direction

    def apply(self, ctx: ActionContext) -> None:
        payload = self._resolve(ctx)
        if payload is None:
            return
        incoming = ctx.message
        if isinstance(payload, InterposedMessage):
            injected = payload.copy()
            injected.timestamp = ctx.eval_ctx.now
        elif isinstance(payload, OpenFlowMessage):
            if incoming is None:
                return
            from repro.core.lang.properties import Direction

            direction = (
                Direction(self.direction) if self.direction else incoming.direction
            )
            injected = InterposedMessage(
                incoming.connection, direction, ctx.eval_ctx.now, payload.pack(), payload
            )
        else:
            return
        ctx.out.append(OutgoingMessage(injected, injected=True))
        ctx.record("inject_new_message", {"id": injected.msg_id})

    def _resolve(self, ctx: ActionContext) -> Any:
        if isinstance(self.source, Expression):
            return self.source.evaluate(ctx.eval_ctx)
        if callable(self.source) and not isinstance(self.source, OpenFlowMessage):
            return self.source(ctx)
        return self.source

    def argument_expressions(self) -> List[Expression]:
        return [self.source] if isinstance(self.source, Expression) else []

    def __repr__(self) -> str:
        return f"InjectNewMessage({self.source!r})"


# ---------------------------------------------------------------------- #
# Storage actions (deque operations as statements)
# ---------------------------------------------------------------------- #


class _DequeAction(AttackAction):
    def __init__(self, deque_name: str) -> None:
        self.deque_name = deque_name

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.deque_name!r})"


class PrependAction(_DequeAction):
    """PREPEND(δ, value)."""

    def __init__(self, deque_name: str, value: Expression) -> None:
        super().__init__(deque_name)
        self.value = value

    def apply(self, ctx: ActionContext) -> None:
        value = self.value.evaluate(ctx.eval_ctx)
        ctx.eval_ctx.storage.deque(self.deque_name).prepend(value)

    def argument_expressions(self) -> List[Expression]:
        return [self.value]

    def __repr__(self) -> str:
        return f"PrependAction({self.deque_name!r}, {self.value!r})"


class AppendAction(_DequeAction):
    """APPEND(δ, value)."""

    def __init__(self, deque_name: str, value: Expression) -> None:
        super().__init__(deque_name)
        self.value = value

    def apply(self, ctx: ActionContext) -> None:
        value = self.value.evaluate(ctx.eval_ctx)
        ctx.eval_ctx.storage.deque(self.deque_name).append(value)

    def argument_expressions(self) -> List[Expression]:
        return [self.value]

    def __repr__(self) -> str:
        return f"AppendAction({self.deque_name!r}, {self.value!r})"


class ShiftAction(_DequeAction):
    """SHIFT(δ) as a statement (returned value discarded)."""

    def apply(self, ctx: ActionContext) -> None:
        stored = ctx.eval_ctx.storage.deque(self.deque_name)
        if len(stored):
            stored.shift()


class PopAction(_DequeAction):
    """POP(δ) as a statement (returned value discarded)."""

    def apply(self, ctx: ActionContext) -> None:
        stored = ctx.eval_ctx.storage.deque(self.deque_name)
        if len(stored):
            stored.pop()


# ---------------------------------------------------------------------- #
# Framework actions
# ---------------------------------------------------------------------- #


class GoToState(AttackAction):
    """GOTOSTATE(σ): transition the attack to another state."""

    def __init__(self, state_name: str) -> None:
        self.state_name = state_name

    def apply(self, ctx: ActionContext) -> None:
        ctx.goto(self.state_name)

    def __repr__(self) -> str:
        return f"GoToState({self.state_name!r})"


class Sleep(AttackAction):
    """SLEEP(t): halt attack-state execution for ``seconds``."""

    def __init__(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"sleep must be non-negative, got {seconds!r}")
        self.seconds = float(seconds)

    def apply(self, ctx: ActionContext) -> None:
        ctx.sleep(self.seconds)

    def __repr__(self) -> str:
        return f"Sleep({self.seconds})"


class SysCmd(AttackAction):
    """SYSCMD(host, cmd): run a system command on a (simulated) host.

    The runtime injector routes the command to the experiment harness's
    registered handler — the paper uses this to actuate monitors such as
    iperf and tcpdump from inside attack descriptions.
    """

    def __init__(self, host: str, command: str) -> None:
        self.host = host
        self.command = command

    def apply(self, ctx: ActionContext) -> None:
        ctx.record("syscmd", {"host": self.host, "command": self.command})
        ctx.syscmd(self.host, self.command)

    def __repr__(self) -> str:
        return f"SysCmd({self.host!r}, {self.command!r})"
