"""Message properties (Section V-A) and the interposed-message wrapper.

``InterposedMessage`` is the runtime injector's view of one control-plane
message as it crosses the proxy: its connection, direction, arrival
timestamp, raw bytes, and (lazily decoded) OpenFlow payload.  Conditional
expressions read the Section V-A properties through
:meth:`InterposedMessage.get_property` and the type-dependent
``MESSAGETYPEOPTIONS`` through :meth:`InterposedMessage.get_type_option`.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional, Tuple

from repro.openflow.actions import OutputAction
from repro.openflow.match import MATCH_FIELD_NAMES, extract_packet_fields
from repro.openflow.messages import (
    EchoReply,
    EchoRequest,
    ErrorMessage,
    FeaturesReply,
    FlowMod,
    FlowRemoved,
    OpenFlowDecodeError,
    OpenFlowMessage,
    PacketIn,
    PacketOut,
    PortStatus,
    StatsReply,
    StatsRequest,
    parse_message,
    peek_message_type_name,
)

_UNSET = object()

ConnectionKey = Tuple[str, str]


class Direction(enum.Enum):
    """Which way a message is travelling on its control connection."""

    TO_CONTROLLER = "to_controller"   # switch -> controller
    TO_SWITCH = "to_switch"           # controller -> switch


class MessageProperty(enum.Enum):
    """The Section V-A message properties."""

    SOURCE = "source"
    DESTINATION = "destination"
    TIMESTAMP = "timestamp"
    LENGTH = "length"
    TYPE = "type"
    ID = "id"

    @classmethod
    def from_name(cls, name: str) -> "MessageProperty":
        normalized = name.lower().replace("message", "").replace("_", "").strip()
        for prop in cls:
            if prop.value == normalized:
                return prop
        raise ValueError(f"unknown message property {name!r}")


#: Properties readable with READMESSAGEMETADATA: "Layers 2, 3, and 4 header
#: information and physical timestamp" — addressing, size, time, and the
#: injector-assigned identifier.  TYPE and all TYPE OPTIONS live in the
#: OpenFlow payload and therefore require READMESSAGE.
METADATA_PROPERTIES = frozenset(
    {
        MessageProperty.SOURCE,
        MessageProperty.DESTINATION,
        MessageProperty.TIMESTAMP,
        MessageProperty.LENGTH,
        MessageProperty.ID,
    }
)


class InterposedMessage:
    """One control-plane message observed at the runtime injector."""

    _id_counter = itertools.count(1)

    __slots__ = (
        "connection",
        "direction",
        "timestamp",
        "raw",
        "msg_id",
        "_parsed",
        "_parse_failed",
        "_coarse_type",
        "payload_replaced",
        "metadata_overrides",
    )

    def __init__(
        self,
        connection: ConnectionKey,
        direction: Direction,
        timestamp: float,
        raw: bytes,
        parsed: Optional[OpenFlowMessage] = None,
    ) -> None:
        self.connection = tuple(connection)
        self.direction = direction
        self.timestamp = timestamp
        self.raw = bytes(raw)
        self.msg_id = next(InterposedMessage._id_counter)
        self._parsed = parsed
        self._parse_failed = False
        self._coarse_type = _UNSET
        self.payload_replaced = False
        self.metadata_overrides: dict = {}

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #

    @property
    def controller(self) -> str:
        return self.connection[0]

    @property
    def switch(self) -> str:
        return self.connection[1]

    @property
    def source(self) -> str:
        """MESSAGESOURCE ∈ C ∪ S."""
        if "source" in self.metadata_overrides:
            return self.metadata_overrides["source"]
        return self.switch if self.direction is Direction.TO_CONTROLLER else self.controller

    @property
    def destination(self) -> str:
        """MESSAGEDESTINATION ∈ C ∪ S."""
        if "destination" in self.metadata_overrides:
            return self.metadata_overrides["destination"]
        return self.natural_destination

    @property
    def natural_destination(self) -> str:
        """The destination implied by connection+direction, ignoring any
        MODIFYMESSAGEMETADATA override (used by the proxy's router)."""
        return self.controller if self.direction is Direction.TO_CONTROLLER else self.switch

    # ------------------------------------------------------------------ #
    # Payload
    # ------------------------------------------------------------------ #

    @property
    def parsed(self) -> Optional[OpenFlowMessage]:
        """The decoded OpenFlow message, or None if the bytes are garbage."""
        if self._parsed is None and not self._parse_failed:
            try:
                self._parsed = parse_message(self.raw)
            except OpenFlowDecodeError:
                self._parse_failed = True
        return self._parsed

    @property
    def message_type_name(self) -> Optional[str]:
        message = self.parsed
        if message is None:
            return None
        return message.message_type.name

    @property
    def coarse_type_name(self) -> Optional[str]:
        """The message type from a header-only peek — no body decode.

        Used by the executor's rule index to dispatch without parsing.  An
        over-approximation of :attr:`message_type_name`: whenever the full
        decode succeeds, both agree; when it would fail, the peek may still
        name a type (the conditional then sees TYPE = None and cannot
        match, so dispatching on the peek stays conservative).
        """
        name = self._coarse_type
        if name is _UNSET:
            if self._parsed is not None:
                name = self._parsed.message_type.name
            else:
                name = peek_message_type_name(self.raw)
            self._coarse_type = name
        return name

    def set_raw(self, raw: bytes) -> None:
        """Replace the wire bytes (FUZZMESSAGE), dropping decode caches."""
        self.raw = bytes(raw)
        self._parsed = None
        self._parse_failed = False
        self._coarse_type = _UNSET

    def replace_payload(self, message: OpenFlowMessage) -> None:
        """Swap in a modified payload (MODIFYMESSAGE support)."""
        self._parsed = message
        self._parse_failed = False
        self._coarse_type = _UNSET
        self.payload_replaced = True
        self.raw = message.pack()

    def copy(self) -> "InterposedMessage":
        """An independent replica (DUPLICATEMESSAGE support) with a new id."""
        replica = InterposedMessage(
            self.connection, self.direction, self.timestamp, self.raw
        )
        replica.metadata_overrides = dict(self.metadata_overrides)
        return replica

    # ------------------------------------------------------------------ #
    # Property access
    # ------------------------------------------------------------------ #

    def get_property(self, prop: MessageProperty) -> Any:
        if prop is MessageProperty.SOURCE:
            return self.source
        if prop is MessageProperty.DESTINATION:
            return self.destination
        if prop is MessageProperty.TIMESTAMP:
            return self.timestamp
        if prop is MessageProperty.LENGTH:
            return len(self.raw)
        if prop is MessageProperty.ID:
            return self.msg_id
        if prop is MessageProperty.TYPE:
            return self.message_type_name
        raise ValueError(f"unhandled property {prop!r}")

    def get_type_option(self, path: str) -> Any:
        """MESSAGETYPEOPTIONS accessor, e.g. ``"match.nw_src"``.

        Returns ``None`` when the option does not exist for this message's
        type — conditionals over absent options simply do not match, which
        is exactly the behaviour behind the Table II Ryu anomaly.
        """
        message = self.parsed
        if message is None:
            return None
        head, _, rest = path.partition(".")
        head = head.lower()
        value = self._type_option_root(message, head, rest)
        return _normalize(value)

    @staticmethod
    def _type_option_root(message: OpenFlowMessage, head: str, rest: str) -> Any:
        if isinstance(message, FlowMod):
            if head == "match" and rest:
                if rest not in MATCH_FIELD_NAMES:
                    return None
                return getattr(message.match, rest)
            simple = {
                "command": message.command.name,
                "idle_timeout": message.idle_timeout,
                "hard_timeout": message.hard_timeout,
                "priority": message.priority,
                "buffer_id": message.buffer_id,
                "cookie": message.cookie,
                "out_port": message.out_port,
                "n_actions": len(message.actions),
                "output_ports": tuple(
                    a.port for a in message.actions if isinstance(a, OutputAction)
                ),
            }
            return simple.get(head)
        if isinstance(message, PacketIn):
            if head == "packet" and rest:
                try:
                    fields = extract_packet_fields(message.data, message.in_port)
                except Exception:
                    return None
                return fields.get(rest)
            simple = {
                "in_port": message.in_port,
                "reason": message.reason.name,
                "buffer_id": message.buffer_id,
                "total_len": message.total_len,
            }
            return simple.get(head)
        if isinstance(message, PacketOut):
            simple = {
                "in_port": message.in_port,
                "buffer_id": message.buffer_id,
                "n_actions": len(message.actions),
                "output_ports": tuple(
                    a.port for a in message.actions if isinstance(a, OutputAction)
                ),
            }
            return simple.get(head)
        if isinstance(message, FlowRemoved):
            if head == "match" and rest:
                if rest not in MATCH_FIELD_NAMES:
                    return None
                return getattr(message.match, rest)
            simple = {
                "reason": message.reason.name,
                "priority": message.priority,
                "packet_count": message.packet_count,
                "byte_count": message.byte_count,
            }
            return simple.get(head)
        if isinstance(message, FeaturesReply):
            simple = {
                "datapath_id": message.datapath_id,
                "n_ports": len(message.ports),
                "n_buffers": message.n_buffers,
            }
            return simple.get(head)
        if isinstance(message, (EchoRequest, EchoReply)):
            return {"payload_len": len(message.payload)}.get(head)
        if isinstance(message, ErrorMessage):
            return {"error_type": message.error_type, "code": message.code}.get(head)
        if isinstance(message, PortStatus):
            return {
                "reason": message.reason.name,
                "port_no": message.port.port_no,
            }.get(head)
        if isinstance(message, (StatsRequest, StatsReply)):
            return {"stats_type": message.stats_type.name}.get(head)
        return None

    def metadata_summary(self) -> dict:
        """The record produced by READMESSAGEMETADATA."""
        return {
            "id": self.msg_id,
            "source": self.source,
            "destination": self.destination,
            "timestamp": self.timestamp,
            "length": len(self.raw),
        }

    def payload_summary(self) -> dict:
        """The record produced by READMESSAGE."""
        summary = dict(self.metadata_summary())
        summary["type"] = self.message_type_name
        return summary

    def __repr__(self) -> str:
        arrow = "->" if self.direction is Direction.TO_SWITCH else "<-"
        return (
            f"<InterposedMessage #{self.msg_id} {self.controller}{arrow}{self.switch} "
            f"{self.message_type_name or 'undecodable'} len={len(self.raw)}>"
        )


def _normalize(value: Any) -> Any:
    """Canonicalize values for DSL comparison (MAC/IP objects -> strings)."""
    from repro.netlib.addresses import Ipv4Address, MacAddress

    if isinstance(value, (MacAddress, Ipv4Address)):
        return str(value)
    if isinstance(value, enum.Enum):
        return value.name
    return value
