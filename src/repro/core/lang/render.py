"""Render an attack description in the paper's textual notation.

Figures 10(a) and 12(a) present attacks as σ/φ/γ/λ/α listings; this module
produces the same layout from a validated :class:`Attack`, e.g.::

    attack: connection-interruption   (start = sigma1)

    sigma1:
      phi1 = (n1, gamma1, lambda1, alpha1)
        n1      = {(c1, s2)}
        gamma1  = GAMMA_NoTLS
        lambda1 = (source = s2 and type = HELLO)
        alpha1  = [PassMessage(), GoToState('sigma2')]
    ...

Useful for documentation, code review of attack descriptions, and the
``python -m repro show`` CLI subcommand.
"""

from __future__ import annotations

from typing import List

from repro.core.compiler.codegen import condition_to_text
from repro.core.lang.attack import Attack
from repro.core.model.capabilities import gamma_no_tls, gamma_tls


def _gamma_text(gamma: frozenset) -> str:
    if gamma == gamma_no_tls():
        return "GAMMA_NoTLS"
    if gamma == gamma_tls():
        return "GAMMA_TLS"
    names = ", ".join(sorted(c.value for c in gamma))
    return "{" + names + "}"


def render_attack_text(attack: Attack) -> str:
    """Produce the Fig. 10(a)/12(a)-style textual listing."""
    lines: List[str] = [
        f"attack: {attack.name}   (start = {attack.start})",
    ]
    if attack.description:
        lines.append(f"  # {attack.description}")
    if attack.deque_declarations:
        deques = ", ".join(
            f"{name} = {initial!r}"
            for name, initial in sorted(attack.deque_declarations.items())
        )
        lines.append(f"  storage: {deques}")
    absorbing = attack.graph.absorbing_states()
    end_states = attack.graph.end_states()
    for state_name in sorted(attack.states):
        state = attack.states[state_name]
        tags = []
        if state_name == attack.start:
            tags.append("start")
        if state_name in end_states:
            tags.append("end")
        elif state_name in absorbing:
            tags.append("absorbing")
        suffix = f"   ({', '.join(tags)})" if tags else ""
        lines.append("")
        lines.append(f"{state_name}:{suffix}")
        if not state.rules:
            lines.append("  (no rules: all messages pass)")
        for index, rule in enumerate(state.rules, start=1):
            connections = ", ".join(
                f"({c}, {s})" for c, s in sorted(rule.connections)
            )
            lines.append(
                f"  {rule.name} = (n{index}, gamma{index}, "
                f"lambda{index}, alpha{index})"
            )
            lines.append(f"    n{index}      = {{{connections}}}")
            lines.append(f"    gamma{index}  = {_gamma_text(rule.gamma)}")
            try:
                lambda_text = condition_to_text(rule.conditional)
            except Exception:
                lambda_text = repr(rule.conditional)
            lines.append(f"    lambda{index} = {lambda_text}")
            actions = ", ".join(repr(action) for action in rule.actions)
            lines.append(f"    alpha{index}  = [{actions}]")
    return "\n".join(lines)
