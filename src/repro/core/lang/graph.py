"""The attack state graph Σ_G = (V, E, A) (Section V-G).

The graph is *derived* from the states' GOTOSTATE actions: vertices are the
attack states, an edge (σ_x, σ_y) exists when some rule in σ_x transitions
to σ_y, and the edge attribute is the set of actions of the transitioning
rules.  Validation checks the structural properties the paper requires.

Construction is either **strict** (the default — any structural problem
raises :class:`GraphValidationError`, the historical behaviour) or lenient
(``strict=False``), in which case problems are recorded as
:class:`GraphProblem` entries for ``repro lint`` to surface as
diagnostics instead of a hard stop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.lang.actions import GoToState
from repro.core.lang.states import AttackState


class GraphValidationError(Exception):
    """Raised when a set of attack states is not a valid Σ_G."""


@dataclass(frozen=True)
class GraphProblem:
    """One structural defect of a (possibly invalid) Σ_G."""

    kind: str                      # empty | bad-start | duplicate-state
    message: str                   # | undefined-target | unreachable
    state: Optional[str] = None    # the state the problem anchors to
    target: Optional[str] = None   # the offending GOTOSTATE target, if any


class AttackStateGraph:
    """The derived attack state graph for a set of states."""

    def __init__(
        self, states: Iterable[AttackState], start: str, strict: bool = True
    ) -> None:
        self.states: Dict[str, AttackState] = {}
        self._duplicates: List[str] = []
        for state in states:
            if state.name in self.states:
                if strict:
                    raise GraphValidationError(
                        f"duplicate attack state {state.name!r}"
                    )
                self._duplicates.append(state.name)
                continue  # lenient mode keeps the first declaration
            self.states[state.name] = state
        self.start = start
        self.edges: Dict[Tuple[str, str], List] = {}
        # Successor adjacency, built once alongside the edge dict and
        # reused by every reachability/absorbing analysis (the historical
        # per-frontier-node rescan of the edge dict was O(V·E)).
        self.adjacency: Dict[str, Set[str]] = {
            name: set() for name in self.states
        }
        self._build_edges()
        if strict:
            self.validate()

    def _build_edges(self) -> None:
        for state in self.states.values():
            successors = self.adjacency[state.name]
            for rule in state.rules:
                for target in rule.goto_targets():
                    successors.add(target)
                    key = (state.name, target)
                    self.edges.setdefault(key, [])
                    # A_ΣG: the actions of the rules that transition x -> y.
                    self.edges[key].extend(rule.actions)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def structural_problems(self) -> List[GraphProblem]:
        """Every structural defect, in diagnostic order."""
        problems: List[GraphProblem] = []
        if not self.states:
            problems.append(GraphProblem(
                "empty", "an attack must have at least one state (|Σ| >= 1)"
            ))
            return problems
        for name in self._duplicates:
            problems.append(GraphProblem(
                "duplicate-state", f"duplicate attack state {name!r}",
                state=name,
            ))
        if self.start not in self.states:
            problems.append(GraphProblem(
                "bad-start", f"start state {self.start!r} is not in Σ",
            ))
        for (src, dst) in self.edges:
            if dst not in self.states:
                problems.append(GraphProblem(
                    "undefined-target",
                    f"state {src!r} transitions to undefined state {dst!r}",
                    state=src, target=dst,
                ))
        if self.start in self.states:
            unreachable = sorted(set(self.states) - self.reachable_states())
            for name in unreachable:
                problems.append(GraphProblem(
                    "unreachable",
                    f"states unreachable from {self.start!r}: {unreachable}",
                    state=name,
                ))
        return problems

    def validate(self) -> None:
        problems = self.structural_problems()
        if problems:
            raise GraphValidationError(problems[0].message)

    # ------------------------------------------------------------------ #
    # Analyses
    # ------------------------------------------------------------------ #

    def reachable_states(self) -> FrozenSet[str]:
        """States reachable from σ_start (including itself)."""
        seen: Set[str] = set()
        frontier = [self.start]
        adjacency = self.adjacency
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            successors = adjacency.get(current)
            if successors:
                frontier.extend(successors - seen)
        return frozenset(seen)

    def successors(self, state_name: str) -> FrozenSet[str]:
        return frozenset(self.adjacency.get(state_name, ()))

    def absorbing_states(self) -> FrozenSet[str]:
        """σ_absorbing — states with no outgoing transition to another state."""
        return frozenset(
            name
            for name in self.states
            if self.adjacency.get(name, set()) <= {name}
        )

    def end_states(self) -> FrozenSet[str]:
        """σ_end ⊆ σ_absorbing — absorbing states with no rules."""
        return frozenset(
            name for name in self.absorbing_states() if self.states[name].is_end
        )

    def edge_actions(self, src: str, dst: str) -> List:
        """A_ΣG attribute for edge (src, dst)."""
        return list(self.edges.get((src, dst), []))

    def to_dot(self) -> str:
        """Render Σ_G in Graphviz dot format (Figs. 5, 6, 10b, 12b style)."""
        lines = ["digraph attack {", "  rankdir=LR;"]
        for name, state in self.states.items():
            shape = "doublecircle" if name in self.end_states() else "circle"
            prefix = "start: " if name == self.start else ""
            lines.append(f'  "{name}" [shape={shape}, label="{prefix}{name}"];')
        for (src, dst), actions in sorted(self.edges.items()):
            label_actions = [a for a in actions if isinstance(a, GoToState)]
            label = f"{len(actions)} actions" if label_actions else ""
            lines.append(f'  "{src}" -> "{dst}" [label="{label}"];')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<AttackStateGraph states={len(self.states)} edges={len(self.edges)} "
            f"start={self.start!r}>"
        )
