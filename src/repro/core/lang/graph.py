"""The attack state graph Σ_G = (V, E, A) (Section V-G).

The graph is *derived* from the states' GOTOSTATE actions: vertices are the
attack states, an edge (σ_x, σ_y) exists when some rule in σ_x transitions
to σ_y, and the edge attribute is the set of actions of the transitioning
rules.  Validation checks the structural properties the paper requires.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.core.lang.actions import GoToState
from repro.core.lang.states import AttackState


class GraphValidationError(Exception):
    """Raised when a set of attack states is not a valid Σ_G."""


class AttackStateGraph:
    """The derived attack state graph for a set of states."""

    def __init__(self, states: Iterable[AttackState], start: str) -> None:
        self.states: Dict[str, AttackState] = {}
        for state in states:
            if state.name in self.states:
                raise GraphValidationError(f"duplicate attack state {state.name!r}")
            self.states[state.name] = state
        self.start = start
        self.edges: Dict[Tuple[str, str], List] = {}
        self._build_edges()
        self.validate()

    def _build_edges(self) -> None:
        for state in self.states.values():
            for rule in state.rules:
                for target in rule.goto_targets():
                    key = (state.name, target)
                    self.edges.setdefault(key, [])
                    # A_ΣG: the actions of the rules that transition x -> y.
                    self.edges[key].extend(rule.actions)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        if not self.states:
            raise GraphValidationError("an attack must have at least one state (|Σ| >= 1)")
        if self.start not in self.states:
            raise GraphValidationError(f"start state {self.start!r} is not in Σ")
        for (src, dst) in self.edges:
            if dst not in self.states:
                raise GraphValidationError(
                    f"state {src!r} transitions to undefined state {dst!r}"
                )
        unreachable = set(self.states) - self.reachable_states()
        if unreachable:
            raise GraphValidationError(
                f"states unreachable from {self.start!r}: {sorted(unreachable)}"
            )

    # ------------------------------------------------------------------ #
    # Analyses
    # ------------------------------------------------------------------ #

    def reachable_states(self) -> FrozenSet[str]:
        """States reachable from σ_start (including itself)."""
        seen: Set[str] = set()
        frontier = [self.start]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            for (src, dst) in self.edges:
                if src == current and dst not in seen:
                    frontier.append(dst)
        return frozenset(seen)

    def successors(self, state_name: str) -> FrozenSet[str]:
        return frozenset(dst for (src, dst) in self.edges if src == state_name)

    def absorbing_states(self) -> FrozenSet[str]:
        """σ_absorbing — states with no outgoing transition to another state."""
        return frozenset(
            name
            for name, state in self.states.items()
            if self.successors(name) <= {name}
        )

    def end_states(self) -> FrozenSet[str]:
        """σ_end ⊆ σ_absorbing — absorbing states with no rules."""
        return frozenset(
            name for name in self.absorbing_states() if self.states[name].is_end
        )

    def edge_actions(self, src: str, dst: str) -> List:
        """A_ΣG attribute for edge (src, dst)."""
        return list(self.edges.get((src, dst), []))

    def to_dot(self) -> str:
        """Render Σ_G in Graphviz dot format (Figs. 5, 6, 10b, 12b style)."""
        lines = ["digraph attack {", "  rankdir=LR;"]
        for name, state in self.states.items():
            shape = "doublecircle" if name in self.end_states() else "circle"
            prefix = "start: " if name == self.start else ""
            lines.append(f'  "{name}" [shape={shape}, label="{prefix}{name}"];')
        for (src, dst), actions in sorted(self.edges.items()):
            label_actions = [a for a in actions if isinstance(a, GoToState)]
            label = f"{len(actions)} actions" if label_actions else ""
            lines.append(f'  "{src}" -> "{dst}" [label="{label}"];')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<AttackStateGraph states={len(self.states)} edges={len(self.edges)} "
            f"start={self.start!r}>"
        )
