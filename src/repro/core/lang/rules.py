"""Rules φ = (n, γ, λ, α) (Section V-E).

A rule binds one or more control-plane connections ``n``, the capability
set ``γ`` the attacker claims for it, a conditional ``λ``, and an ordered
action list ``α``.  Validation enforces the two containments the attack
model demands: every capability the rule actually *uses* must be inside
its claimed ``γ``, and ``γ`` must be inside the attacker model's
``Γ_NC(n)`` for every bound connection.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.lang.actions import AttackAction, GoToState
from repro.core.lang.conditionals import (
    Condition,
    EvalContext,
    compile_condition,
    condition_message_types,
)
from repro.core.model.capabilities import Capability
from repro.core.model.threat import AttackModel, CapabilityViolation

ConnectionKey = Tuple[str, str]


class RuleValidationError(Exception):
    """Raised when a rule is internally inconsistent."""


class Rule:
    """One attack rule φ_i = (n_i, γ_i, λ_i, α_i)."""

    def __init__(
        self,
        name: str,
        connections: Union[ConnectionKey, Iterable[ConnectionKey]],
        gamma: Iterable[Capability],
        conditional: Condition,
        actions: Sequence[AttackAction],
    ) -> None:
        self.name = name
        self.connections = self._normalize_connections(connections)
        self.gamma: FrozenSet[Capability] = frozenset(gamma)
        self.conditional = conditional
        self.actions: List[AttackAction] = list(actions)
        self._compiled_conditional: Optional[Callable[[EvalContext], bool]] = None
        if not self.connections:
            raise RuleValidationError(f"rule {name!r} binds no connections")
        if not self.actions:
            raise RuleValidationError(f"rule {name!r} has no actions")
        self._check_gamma_covers_usage()

    @staticmethod
    def _normalize_connections(
        connections: Union[ConnectionKey, Iterable[ConnectionKey]]
    ) -> FrozenSet[ConnectionKey]:
        if (
            isinstance(connections, tuple)
            and len(connections) == 2
            and all(isinstance(part, str) for part in connections)
        ):
            return frozenset({connections})
        return frozenset(tuple(connection) for connection in connections)

    # ------------------------------------------------------------------ #
    # Capability accounting
    # ------------------------------------------------------------------ #

    def required_capabilities(self) -> FrozenSet[Capability]:
        """Capabilities the rule uses: conditional reads + action actuations."""
        caps = set(self.conditional.required_capabilities())
        for action in self.actions:
            caps |= action.required_capabilities()
        return frozenset(caps)

    def _check_gamma_covers_usage(self) -> None:
        missing = self.required_capabilities() - self.gamma
        if missing:
            names = ", ".join(sorted(c.value for c in missing))
            raise RuleValidationError(
                f"rule {self.name!r} uses capabilities outside its declared γ: {names}"
            )

    def validate_against(self, attack_model: AttackModel) -> None:
        """Check γ ⊆ Γ_NC(n) for every bound connection (Section IV-C)."""
        for connection in sorted(self.connections):
            granted = attack_model.gamma(connection)
            missing = self.gamma - granted
            if missing:
                raise CapabilityViolation(connection, missing, f"rule {self.name!r}")

    # ------------------------------------------------------------------ #
    # Matching
    # ------------------------------------------------------------------ #

    def binds(self, connection: ConnectionKey) -> bool:
        return tuple(connection) in self.connections

    def compiled_conditional(self) -> Callable[[EvalContext], bool]:
        """The λ lowered to a closure, compiled once and cached.

        The executor's fast lane calls this at attack-load time; the closure
        is semantically identical to ``self.conditional.evaluate``.
        """
        compiled = self._compiled_conditional
        if compiled is None:
            compiled = self._compiled_conditional = compile_condition(self.conditional)
        return compiled

    def message_types(self) -> Optional[FrozenSet[str]]:
        """Message TYPE names this rule can possibly fire on (None = any)."""
        return condition_message_types(self.conditional)

    def goto_targets(self) -> FrozenSet[str]:
        """Names of states this rule's GOTOSTATE actions can reach."""
        return frozenset(
            action.state_name for action in self.actions if isinstance(action, GoToState)
        )

    def __repr__(self) -> str:
        return (
            f"<Rule {self.name!r} connections={sorted(self.connections)} "
            f"actions={len(self.actions)}>"
        )
