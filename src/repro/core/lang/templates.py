"""Attack state-graph templates (the Section X future-work abstraction).

"Our future work will consider attack language abstractions that will
allow practitioners to use predefined attack state graph templates to
generate larger and more complex attack descriptions without having to
manually generate many of the lower-level details."

Three composable templates:

* :func:`sequential_stages` — a linear escalation: each stage runs its
  rules until its advance condition fires, then the attack moves on
  (the generalized shape of the Fig. 12 connection-interruption attack);
* :func:`watchdog` — prefix any attack with a wait-for-trigger state;
* :func:`product` — parallel composition: two attacks progress
  independently over the product state space, so e.g. a counting phase on
  one connection and a suppression campaign on another can run inside a
  single attack description.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.core.lang.actions import AttackAction, GoToState, PassMessage
from repro.core.lang.attack import Attack
from repro.core.lang.conditionals import Condition
from repro.core.lang.parser import parse_condition
from repro.core.lang.rules import Rule
from repro.core.lang.states import AttackState
from repro.core.model.capabilities import gamma_no_tls

ConnectionKey = Tuple[str, str]


@dataclass
class Stage:
    """One stage of a sequential template.

    ``rules`` run while the stage is active; when a message satisfies
    ``advance_when`` (text or AST), the attack transitions to the next
    stage, optionally executing ``advance_actions`` first (the message
    passes unless those actions say otherwise).
    """

    name: str
    rules: List[Rule] = field(default_factory=list)
    advance_when: object = None          # str | Condition | None (terminal)
    advance_actions: List[AttackAction] = field(default_factory=list)

    def advance_condition(self) -> Condition:
        if isinstance(self.advance_when, Condition):
            return self.advance_when
        return parse_condition(self.advance_when or "")


def sequential_stages(
    name: str,
    connections,
    stages: Sequence[Stage],
    deque_declarations=None,
) -> Attack:
    """Chain stages linearly; the last stage is absorbing (or terminal).

    A stage with ``advance_when=None`` is a terminal stage: no transition
    is generated out of it.
    """
    if not stages:
        raise ValueError("a sequential template needs at least one stage")
    bound = _normalize(connections)
    states: List[AttackState] = []
    for index, stage in enumerate(stages):
        rules = list(stage.rules)
        if stage.advance_when is not None:
            if index + 1 >= len(stages):
                raise ValueError(
                    f"stage {stage.name!r} advances but is the last stage"
                )
            actions = list(stage.advance_actions) or [PassMessage()]
            actions.append(GoToState(stages[index + 1].name))
            rules.append(
                Rule(
                    f"advance_{stage.name}",
                    bound,
                    gamma_no_tls(),
                    stage.advance_condition(),
                    actions,
                )
            )
        states.append(AttackState(stage.name, rules))
    return Attack(
        name,
        states,
        start=stages[0].name,
        deque_declarations=deque_declarations or {},
        description=f"sequential template with stages {[s.name for s in stages]}",
    )


def watchdog(
    name: str,
    connections,
    trigger_when,
    body: Attack,
    wait_state: str = "waiting",
) -> Attack:
    """Prefix ``body`` with a state that waits for a trigger message.

    Until the trigger fires the attack is inert (all messages pass); when
    it fires the attack enters ``body``'s start state and proceeds as
    ``body`` prescribes.
    """
    if wait_state in body.states:
        raise ValueError(f"wait state {wait_state!r} collides with body states")
    bound = _normalize(connections)
    condition = (trigger_when if isinstance(trigger_when, Condition)
                 else parse_condition(trigger_when))
    trigger_rule = Rule(
        "watchdog_trigger",
        bound,
        gamma_no_tls(),
        condition,
        [PassMessage(), GoToState(body.start)],
    )
    states = [AttackState(wait_state, [trigger_rule])]
    states.extend(body.states.values())
    return Attack(
        name,
        states,
        start=wait_state,
        deque_declarations=dict(body.deque_declarations),
        description=f"watchdog over {body.name!r}",
    )


def product(name: str, left: Attack, right: Attack,
            separator: str = "+") -> Attack:
    """Parallel composition over the product state space.

    The composite state ``"a+b"`` holds clones of ``a``'s and ``b``'s
    rules with every GOTOSTATE retargeted within the product: ``a``'s
    transition to ``a2`` lands in ``"a2+b"`` and vice versa — both
    components progress independently while sharing one executor (and its
    totally ordered message stream).

    Deque declarations must not collide; storage is shared, which is the
    point — composed attacks may deliberately communicate through Δ.
    """
    collisions = set(left.deque_declarations) & set(right.deque_declarations)
    if collisions:
        raise ValueError(f"deque declarations collide: {sorted(collisions)}")

    def compose_name(a: str, b: str) -> str:
        return f"{a}{separator}{b}"

    states: List[AttackState] = []
    for a_name, a_state in left.states.items():
        for b_name, b_state in right.states.items():
            rules: List[Rule] = []
            for rule in a_state.rules:
                rules.append(_retarget(rule, lambda t, b=b_name: compose_name(t, b),
                                       prefix="L"))
            for rule in b_state.rules:
                rules.append(_retarget(rule, lambda t, a=a_name: compose_name(a, t),
                                       prefix="R"))
            states.append(AttackState(compose_name(a_name, b_name), rules))
    deques = dict(left.deque_declarations)
    deques.update(right.deque_declarations)
    return Attack(
        name,
        states,
        start=compose_name(left.start, right.start),
        deque_declarations=deques,
        description=f"product of {left.name!r} and {right.name!r}",
    )


def _retarget(rule: Rule, rename, prefix: str) -> Rule:
    """Clone a rule with GOTOSTATE targets mapped through ``rename``."""
    actions: List[AttackAction] = []
    for action in rule.actions:
        if isinstance(action, GoToState):
            actions.append(GoToState(rename(action.state_name)))
        else:
            actions.append(action)
    return Rule(
        f"{prefix}:{rule.name}",
        rule.connections,
        rule.gamma,
        rule.conditional,
        actions,
    )


def _normalize(connections) -> frozenset:
    if (isinstance(connections, tuple) and len(connections) == 2
            and all(isinstance(part, str) for part in connections)):
        return frozenset({connections})
    return frozenset(tuple(connection) for connection in connections)
