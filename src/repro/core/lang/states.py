"""Attack states Σ (Section V-F).

Each state is an unordered set of rules; the executor evaluates incoming
messages against the *current* state's rules.  The three special cases:

* the single **start state** σ_start;
* **absorbing states** — no GOTOSTATE leads out of them;
* **end states** — absorbing states with no rules at all, "allow[ing] all
  messages to flow without any interference".
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List

from repro.core.lang.rules import Rule


class AttackState:
    """One attack state σ ∈ Σ."""

    def __init__(self, name: str, rules: Iterable[Rule] = ()) -> None:
        self.name = name
        self.rules: List[Rule] = list(rules)

    @property
    def is_end(self) -> bool:
        """σ_end: no rules — all messages pass uninterfered."""
        return not self.rules

    def goto_targets(self) -> FrozenSet[str]:
        """All states reachable from this one via its rules' GOTOSTATEs."""
        targets: set = set()
        for rule in self.rules:
            targets |= rule.goto_targets()
        return frozenset(targets)

    def is_absorbing(self) -> bool:
        """σ_absorbing: no transition leaves the state."""
        return self.goto_targets() <= {self.name}

    def rules_for(self, connection) -> List[Rule]:
        return [rule for rule in self.rules if rule.binds(connection)]

    def __repr__(self) -> str:
        kind = " end" if self.is_end else (" absorbing" if self.is_absorbing() else "")
        return f"<AttackState {self.name!r} rules={len(self.rules)}{kind}>"
