"""A complete attack description: states + start state + storage.

``Attack`` ties the language pieces together and validates the whole
description against an :class:`~repro.core.model.threat.AttackModel` —
every rule's declared γ must fit inside the attacker model's Γ_NC mapping,
and every rule's bound connections must exist in N_C.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.lang.graph import AttackStateGraph
from repro.core.lang.rules import RuleValidationError
from repro.core.lang.states import AttackState
from repro.core.lang.storage import StorageSet
from repro.core.model.threat import AttackModel, CapabilityViolation


class AttackValidationError(Exception):
    """The attack description is inconsistent with the attack model."""


class Attack:
    """A validated, runnable attack description."""

    def __init__(
        self,
        name: str,
        states: Iterable[AttackState],
        start: str,
        deque_declarations: Optional[Dict[str, List]] = None,
        description: str = "",
        strict: bool = True,
    ) -> None:
        self.name = name
        self.description = description
        self.graph = AttackStateGraph(states, start, strict=strict)
        self.deque_declarations: Dict[str, List] = dict(deque_declarations or {})

    @property
    def states(self) -> Dict[str, AttackState]:
        return self.graph.states

    @property
    def start(self) -> str:
        return self.graph.start

    def build_storage(self) -> StorageSet:
        """Fresh Δ with the declared deques (and initial contents)."""
        storage = StorageSet()
        for name, initial in self.deque_declarations.items():
            storage.declare(name, list(initial))
        return storage

    def all_rules(self):
        for state in self.states.values():
            for rule in state.rules:
                yield state, rule

    def bound_connections(self) -> frozenset:
        bound = set()
        for _state, rule in self.all_rules():
            bound |= rule.connections
        return frozenset(bound)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def validate_against(self, attack_model: AttackModel) -> None:
        """Check every rule against the attacker-capabilities model."""
        known = set(attack_model.system.connection_keys())
        problems: List[str] = []
        for state, rule in self.all_rules():
            unknown = rule.connections - known
            if unknown:
                problems.append(
                    f"state {state.name!r} rule {rule.name!r} binds connections "
                    f"not in N_C: {sorted(unknown)}"
                )
                continue
            try:
                rule.validate_against(attack_model)
            except (RuleValidationError, CapabilityViolation) as exc:
                problems.append(f"state {state.name!r}: {exc}")
        if problems:
            raise AttackValidationError("; ".join(problems))

    def summary(self) -> Dict[str, object]:
        """A compact description used by logs and documentation."""
        return {
            "name": self.name,
            "states": sorted(self.states),
            "start": self.start,
            "absorbing": sorted(self.graph.absorbing_states()),
            "end": sorted(self.graph.end_states()),
            "rules": sum(len(state.rules) for state in self.states.values()),
            "connections": sorted(self.bound_connections()),
            "deques": sorted(self.deque_declarations),
        }

    def __repr__(self) -> str:
        return f"<Attack {self.name!r} states={len(self.states)} start={self.start!r}>"
