"""The attack executor — a faithful implementation of Algorithm 1.

The executor keeps the attack's current state σ_current, evaluates each
incoming interposed message against the rules of the state saved at the
start of processing (σ_previous), executes matching rules' actions through
the :class:`~repro.core.injector.modifier.MessageModifier`, and returns the
outgoing message list.  GOTOSTATE actions set the next state (Algorithm 1,
lines 11–12); all other actions may alter the outgoing list (line 14).

Fast lane (on by default, ``fast_path=False`` restores the paper's linear
scan): at attack-load time every rule's conditional λ is lowered to a
Python closure (:func:`~repro.core.lang.conditionals.compile_condition`)
and each state's rules are indexed by ``(connection, coarse message
type)``.  ``handle_message`` then only evaluates rules that can possibly
bind and fire — the coarse type comes from a header-only byte peek, so a
message whose type no rule constrains passes through without ever being
decoded.  The per-message cost drops from O(|Φ|) conditional evaluations
to O(|candidates|), with ``rules_skipped_by_index`` counting the saving.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

from repro.core.lang.actions import ActionContext, GoToState, OutgoingMessage
from repro.core.lang.attack import Attack
from repro.core.lang.conditionals import EvalContext
from repro.core.lang.properties import InterposedMessage
from repro.core.lang.rules import Rule
from repro.core.lang.states import AttackState
from repro.core.injector.modifier import MessageModifier
from repro.openflow.messages import peek_xid
from repro.sim.engine import SimulationEngine
from repro.sim.rng import SeededRng

ConnectionKey = Tuple[str, str]


class ExecutorObserver(Protocol):
    """Receives executor events (for the Section VI-B3 monitors)."""

    def rule_fired(self, state: str, rule_name: str, message: InterposedMessage) -> None:
        ...

    def state_changed(self, previous: str, current: str, at: float) -> None:
        ...

    def action_record(self, kind: str, data: dict, at: float) -> None:
        ...


class _ConnectionDispatch:
    """Ordered rule dispatch for one (state, connection) pair.

    Holds the state's rules bound to the connection in their original order,
    each annotated with the conservative message-type set its conditional
    can fire on (``None`` = any type).  Candidate lists per coarse type are
    materialized lazily and cached — the type domain is the small, closed
    OpenFlow 1.0 message-type set.
    """

    __slots__ = ("annotated", "wildcard", "_by_type")

    def __init__(self, annotated: Sequence[Tuple[Rule, Optional[frozenset]]]) -> None:
        self.annotated = tuple(annotated)
        self.wildcard = tuple(rule for rule, types in annotated if types is None)
        self._by_type: Dict[Optional[str], Tuple[Rule, ...]] = {}

    @property
    def bound_count(self) -> int:
        return len(self.annotated)

    def candidates(self, type_name: Optional[str]) -> Tuple[Rule, ...]:
        """Rules that could fire for a message of ``type_name`` (in order)."""
        cached = self._by_type.get(type_name, None)
        if cached is None:
            if type_name is None:
                # Undecodable/unknown type: TYPE evaluates to None, so only
                # rules that do not constrain the type can fire.
                cached = self.wildcard
            else:
                cached = tuple(
                    rule
                    for rule, types in self.annotated
                    if types is None or type_name in types
                )
            self._by_type[type_name] = cached
        return cached


def _build_state_dispatch(state: AttackState) -> Dict[ConnectionKey, _ConnectionDispatch]:
    """Index one state's rules by connection, preserving rule order."""
    per_connection: Dict[ConnectionKey, List[Tuple[Rule, Optional[frozenset]]]] = {}
    for rule in state.rules:
        types = rule.message_types()
        for connection in rule.connections:
            per_connection.setdefault(connection, []).append((rule, types))
    return {
        connection: _ConnectionDispatch(annotated)
        for connection, annotated in per_connection.items()
    }


class AttackExecutor:
    """Runs one attack (Algorithm 1: ATTACKEXECUTOR(Σ, σ_start))."""

    def __init__(
        self,
        attack: Attack,
        engine: SimulationEngine,
        rng: Optional[SeededRng] = None,
        syscmd_router: Optional[Callable[[str, str], None]] = None,
        fast_path: bool = True,
    ) -> None:
        self.attack = attack
        self.engine = engine
        self.rng = (rng or SeededRng(0)).child("executor")
        self.storage = attack.build_storage()
        self.modifier = MessageModifier()
        self.current_state_name = attack.start            # line 2
        self.sleep_until = 0.0
        self.fast_path = fast_path
        self._syscmd_router = syscmd_router or (lambda host, cmd: None)
        self._observers: List[ExecutorObserver] = []
        # Trace hook: None keeps every hot-path guard to one attribute
        # load + identity check (the zero-overhead-when-disabled contract).
        self.tracer = None
        self.stats: Dict[str, int] = {
            "messages_processed": 0,
            "rules_evaluated": 0,
            "rules_fired": 0,
            "rules_skipped_by_index": 0,
            "state_transitions": 0,
            "messages_dropped": 0,
            "messages_injected": 0,
        }
        # Attack-load-time lowering: compile every conditional once and
        # index every state's rules by (connection, coarse message type).
        self._dispatch: Dict[str, Dict[ConnectionKey, _ConnectionDispatch]] = {}
        if fast_path:
            for state in attack.states.values():
                self._dispatch[state.name] = _build_state_dispatch(state)
                for rule in state.rules:
                    rule.compiled_conditional()

    # ------------------------------------------------------------------ #
    # Observers / routing
    # ------------------------------------------------------------------ #

    def add_observer(self, observer: ExecutorObserver) -> None:
        self._observers.append(observer)

    def set_tracer(self, tracer) -> None:
        """Attach a :class:`~repro.obs.trace.TraceCollector` (or None)."""
        self.tracer = tracer
        self.storage.set_tracer(tracer)

    def set_syscmd_router(self, router: Callable[[str, str], None]) -> None:
        self._syscmd_router = router

    @property
    def current_state(self):
        return self.attack.states[self.current_state_name]

    def sleeping(self, now: float) -> bool:
        """True while a SLEEP action is holding up state execution."""
        return now < self.sleep_until

    # ------------------------------------------------------------------ #
    # Algorithm 1
    # ------------------------------------------------------------------ #

    def handle_message(self, incoming: InterposedMessage) -> List[OutgoingMessage]:
        """Process one asynchronous incoming message (lines 4–21)."""
        if not self.fast_path:
            return self._handle_message_linear(incoming)
        stats = self.stats
        stats["messages_processed"] += 1
        out: List[OutgoingMessage] = [OutgoingMessage(incoming)]       # line 5
        previous_state = self.current_state                            # line 6
        dispatch = self._dispatch[previous_state.name].get(incoming.connection)
        if dispatch is None:
            return out
        candidates = dispatch.candidates(incoming.coarse_type_name)
        stats["rules_skipped_by_index"] += dispatch.bound_count - len(candidates)
        if not candidates:
            # No rule can bind and fire: pass-through without building the
            # evaluation/action contexts (or decoding the message at all).
            return out
        eval_ctx = EvalContext(incoming, self.storage, self.engine.now,
                               rng=self.rng)
        action_ctx: Optional[ActionContext] = None
        tracer = self.tracer
        for rule in candidates:                                        # line 7
            stats["rules_evaluated"] += 1
            fired = rule.compiled_conditional()(eval_ctx)              # line 9
            if tracer is not None:
                tracer.emit("rule_eval", state=previous_state.name,
                            rule=rule.name, msg_id=incoming.msg_id,
                            fired=bool(fired))
            if fired:
                stats["rules_fired"] += 1
                self._notify_rule(previous_state.name, rule.name, incoming)
                if action_ctx is None:
                    action_ctx = self._action_context(eval_ctx, out)
                for action in rule.actions:                            # line 10
                    if isinstance(action, GoToState):                  # lines 11–12
                        self._goto(action.state_name)
                    else:                                              # line 14
                        if tracer is not None:
                            tracer.emit("action", state=previous_state.name,
                                        rule=rule.name,
                                        action=type(action).__name__)
                        self.modifier.apply(action, action_ctx)
        if action_ctx is not None:
            if not any(entry.message is incoming for entry in out):
                stats["messages_dropped"] += 1
                if tracer is not None:
                    self._trace_drop(previous_state.name, incoming)
            stats["messages_injected"] += sum(1 for entry in out if entry.injected)
        return out                                                     # lines 19–21

    def _handle_message_linear(self, incoming: InterposedMessage) -> List[OutgoingMessage]:
        """The paper's O(|Φ|) scan with interpreted conditionals.

        Kept verbatim as the measured baseline for the fast lane
        (``benchmarks/test_fastpath.py``) and selectable via
        ``fast_path=False``.
        """
        self.stats["messages_processed"] += 1
        out: List[OutgoingMessage] = [OutgoingMessage(incoming)]       # line 5
        previous_state = self.current_state                            # line 6
        eval_ctx = EvalContext(incoming, self.storage, self.engine.now,
                               rng=self.rng)
        action_ctx = self._action_context(eval_ctx, out)
        tracer = self.tracer
        for rule in previous_state.rules:                              # line 7
            if not rule.binds(incoming.connection):
                continue
            self.stats["rules_evaluated"] += 1
            fired = rule.conditional.evaluate(eval_ctx)                # line 9
            if tracer is not None:
                tracer.emit("rule_eval", state=previous_state.name,
                            rule=rule.name, msg_id=incoming.msg_id,
                            fired=bool(fired))
            if fired:
                self.stats["rules_fired"] += 1
                self._notify_rule(previous_state.name, rule.name, incoming)
                for action in rule.actions:                            # line 10
                    if isinstance(action, GoToState):                  # lines 11–12
                        self._goto(action.state_name)
                    else:                                              # line 14
                        if tracer is not None:
                            tracer.emit("action", state=previous_state.name,
                                        rule=rule.name,
                                        action=type(action).__name__)
                        self.modifier.apply(action, action_ctx)
        if not any(entry.message is incoming for entry in out):
            self.stats["messages_dropped"] += 1
            if tracer is not None:
                self._trace_drop(previous_state.name, incoming)
        self.stats["messages_injected"] += sum(1 for entry in out if entry.injected)
        return out                                                     # lines 19–21

    def _action_context(
        self, eval_ctx: EvalContext, out: List[OutgoingMessage]
    ) -> ActionContext:
        return ActionContext(
            eval_ctx,
            out,
            goto=self._goto,
            sleep=self._sleep,
            syscmd=self._syscmd,
            record=self._record,
            rng=self.rng,
        )

    # ------------------------------------------------------------------ #
    # Framework hooks
    # ------------------------------------------------------------------ #

    def _goto(self, state_name: str) -> None:
        if state_name not in self.attack.states:
            raise KeyError(
                f"GOTOSTATE target {state_name!r} is not a state of "
                f"attack {self.attack.name!r}"
            )
        if state_name == self.current_state_name:
            return
        previous = self.current_state_name
        self.current_state_name = state_name
        self.stats["state_transitions"] += 1
        if self.tracer is not None:
            self.tracer.emit("state", **{"from": previous, "to": state_name})
        for observer in self._observers:
            observer.state_changed(previous, state_name, self.engine.now)

    def _sleep(self, seconds: float) -> None:
        self.sleep_until = max(self.sleep_until, self.engine.now + seconds)

    def _syscmd(self, host: str, command: str) -> None:
        self._syscmd_router(host, command)

    def _record(self, kind: str, data: dict) -> None:
        if self.tracer is not None:
            self.tracer.emit("record", record_kind=kind, data=dict(data))
        for observer in self._observers:
            observer.action_record(kind, data, self.engine.now)

    def _notify_rule(self, state: str, rule_name: str, message: InterposedMessage) -> None:
        if self.tracer is not None:
            self.tracer.emit(
                "rule_fired",
                state=state,
                rule=rule_name,
                msg_id=message.msg_id,
                type=message.coarse_type_name,
                xid=peek_xid(message.raw),
                connection=list(message.connection),
                direction=message.direction.value,
            )
        for observer in self._observers:
            observer.rule_fired(state, rule_name, message)

    def _trace_drop(self, state: str, message: InterposedMessage) -> None:
        self.tracer.emit(
            "message_drop",
            state=state,
            msg_id=message.msg_id,
            type=message.coarse_type_name,
            xid=peek_xid(message.raw),
        )

    def __repr__(self) -> str:
        return (
            f"<AttackExecutor attack={self.attack.name!r} "
            f"state={self.current_state_name!r}>"
        )
