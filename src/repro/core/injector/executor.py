"""The attack executor — a faithful implementation of Algorithm 1.

The executor keeps the attack's current state σ_current, evaluates each
incoming interposed message against the rules of the state saved at the
start of processing (σ_previous), executes matching rules' actions through
the :class:`~repro.core.injector.modifier.MessageModifier`, and returns the
outgoing message list.  GOTOSTATE actions set the next state (Algorithm 1,
lines 11–12); all other actions may alter the outgoing list (line 14).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol

from repro.core.lang.actions import ActionContext, GoToState, OutgoingMessage
from repro.core.lang.attack import Attack
from repro.core.lang.conditionals import EvalContext
from repro.core.lang.properties import InterposedMessage
from repro.core.injector.modifier import MessageModifier
from repro.sim.engine import SimulationEngine
from repro.sim.rng import SeededRng


class ExecutorObserver(Protocol):
    """Receives executor events (for the Section VI-B3 monitors)."""

    def rule_fired(self, state: str, rule_name: str, message: InterposedMessage) -> None:
        ...

    def state_changed(self, previous: str, current: str, at: float) -> None:
        ...

    def action_record(self, kind: str, data: dict, at: float) -> None:
        ...


class AttackExecutor:
    """Runs one attack (Algorithm 1: ATTACKEXECUTOR(Σ, σ_start))."""

    def __init__(
        self,
        attack: Attack,
        engine: SimulationEngine,
        rng: Optional[SeededRng] = None,
        syscmd_router: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        self.attack = attack
        self.engine = engine
        self.rng = (rng or SeededRng(0)).child("executor")
        self.storage = attack.build_storage()
        self.modifier = MessageModifier()
        self.current_state_name = attack.start            # line 2
        self.sleep_until = 0.0
        self._syscmd_router = syscmd_router or (lambda host, cmd: None)
        self._observers: List[ExecutorObserver] = []
        self.stats: Dict[str, int] = {
            "messages_processed": 0,
            "rules_evaluated": 0,
            "rules_fired": 0,
            "state_transitions": 0,
            "messages_dropped": 0,
            "messages_injected": 0,
        }

    # ------------------------------------------------------------------ #
    # Observers / routing
    # ------------------------------------------------------------------ #

    def add_observer(self, observer: ExecutorObserver) -> None:
        self._observers.append(observer)

    def set_syscmd_router(self, router: Callable[[str, str], None]) -> None:
        self._syscmd_router = router

    @property
    def current_state(self):
        return self.attack.states[self.current_state_name]

    def sleeping(self, now: float) -> bool:
        """True while a SLEEP action is holding up state execution."""
        return now < self.sleep_until

    # ------------------------------------------------------------------ #
    # Algorithm 1
    # ------------------------------------------------------------------ #

    def handle_message(self, incoming: InterposedMessage) -> List[OutgoingMessage]:
        """Process one asynchronous incoming message (lines 4–21)."""
        self.stats["messages_processed"] += 1
        out: List[OutgoingMessage] = [OutgoingMessage(incoming)]       # line 5
        previous_state = self.current_state                            # line 6
        eval_ctx = EvalContext(incoming, self.storage, self.engine.now,
                               rng=self.rng)
        action_ctx = ActionContext(
            eval_ctx,
            out,
            goto=self._goto,
            sleep=self._sleep,
            syscmd=self._syscmd,
            record=self._record,
            rng=self.rng,
        )
        for rule in previous_state.rules:                              # line 7
            if not rule.binds(incoming.connection):
                continue
            self.stats["rules_evaluated"] += 1
            if rule.conditional.evaluate(eval_ctx):                    # line 9
                self.stats["rules_fired"] += 1
                self._notify_rule(previous_state.name, rule.name, incoming)
                for action in rule.actions:                            # line 10
                    if isinstance(action, GoToState):                  # lines 11–12
                        self._goto(action.state_name)
                    else:                                              # line 14
                        self.modifier.apply(action, action_ctx)
        if not any(entry.message is incoming for entry in out):
            self.stats["messages_dropped"] += 1
        self.stats["messages_injected"] += sum(1 for entry in out if entry.injected)
        return out                                                     # lines 19–21

    # ------------------------------------------------------------------ #
    # Framework hooks
    # ------------------------------------------------------------------ #

    def _goto(self, state_name: str) -> None:
        if state_name not in self.attack.states:
            raise KeyError(
                f"GOTOSTATE target {state_name!r} is not a state of "
                f"attack {self.attack.name!r}"
            )
        if state_name == self.current_state_name:
            return
        previous = self.current_state_name
        self.current_state_name = state_name
        self.stats["state_transitions"] += 1
        for observer in self._observers:
            observer.state_changed(previous, state_name, self.engine.now)

    def _sleep(self, seconds: float) -> None:
        self.sleep_until = max(self.sleep_until, self.engine.now + seconds)

    def _syscmd(self, host: str, command: str) -> None:
        self._syscmd_router(host, command)

    def _record(self, kind: str, data: dict) -> None:
        for observer in self._observers:
            observer.action_record(kind, data, self.engine.now)

    def _notify_rule(self, state: str, rule_name: str, message: InterposedMessage) -> None:
        for observer in self._observers:
            observer.rule_fired(state, rule_name, message)

    def __repr__(self) -> str:
        return (
            f"<AttackExecutor attack={self.attack.name!r} "
            f"state={self.current_state_name!r}>"
        )
