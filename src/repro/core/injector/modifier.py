"""The MESSAGEMODIFIER component (Section VI-B2, Algorithm 1 line 14).

"The MESSAGEMODIFIER function evaluates the specific action and may alter
the outgoing message list (e.g., an action's dropping of the message would
remove it from the list; an action's duplicating of the message would
append a second copy to the list)."
"""

from __future__ import annotations

from typing import Dict

from repro.core.lang.actions import ActionContext, AttackAction


class MessageModifier:
    """Applies non-GOTOSTATE actions to the outgoing message list."""

    def __init__(self) -> None:
        self.actions_applied = 0
        self.by_action: Dict[str, int] = {}

    def apply(self, action: AttackAction, ctx: ActionContext) -> None:
        """Run one action against the current outgoing list."""
        self.actions_applied += 1
        key = type(action).__name__
        self.by_action[key] = self.by_action.get(key, 0) + 1
        action.apply(ctx)

    def __repr__(self) -> str:
        return f"<MessageModifier applied={self.actions_applied}>"
