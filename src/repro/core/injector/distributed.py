"""Distributed runtime injection (the Section VIII-C discussion).

"The runtime injector, as described, inherently imposes a total ordering
of control plane events because of its centralized nature.  In the case of
a distributed runtime injector architecture, total ordering could be
imposed through distributed systems techniques.  However, a guarantee of
total ordering may come at the cost of increased latency ..."

This module makes that trade-off measurable.  A
:class:`DistributedInjection` cluster runs one injector *instance* per
administrative slice of N_C, in one of two coordination modes:

* ``TOTAL_ORDER`` — every interposed message is shipped to a central
  coordinator (paying ``coordination_latency`` each way), which runs the
  single authoritative executor.  Semantics identical to the centralized
  injector; control-plane latency grows by two coordination hops per
  message.
* ``OPTIMISTIC`` — each instance runs a local executor replica and
  processes messages immediately; state transitions are broadcast to the
  other replicas with ``coordination_latency`` delay.  Latency stays flat,
  but replicas can evaluate messages against a *stale* attack state — the
  cluster counts those divergences (``stale_decisions``), and each replica
  keeps private storage Δ, so cross-connection deque attacks lose global
  consistency exactly as the paper warns.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

from repro.core.injector.executor import AttackExecutor
from repro.core.injector.runtime import RuntimeInjector
from repro.core.lang.attack import Attack
from repro.core.lang.properties import InterposedMessage
from repro.core.model.threat import AttackModel
from repro.sim.engine import SimulationEngine
from repro.sim.rng import SeededRng

ConnectionKey = Tuple[str, str]


class CoordinationMode(enum.Enum):
    TOTAL_ORDER = "total-order"
    OPTIMISTIC = "optimistic"


class _InstanceInjector(RuntimeInjector):
    """One distributed injector instance; defers execution to the cluster."""

    def __init__(self, cluster: "DistributedInjection", name: str,
                 engine: SimulationEngine, attack_model: AttackModel) -> None:
        super().__init__(engine, attack_model, attack=None, name=name)
        self.cluster = cluster
        self.local_executor: Optional[AttackExecutor] = None

    def submit(self, proxy, message: InterposedMessage) -> None:
        self.stats["messages_interposed"] += 1
        self.cluster.route_message(self, proxy, message)


class DistributedInjection:
    """A cluster of injector instances sharing one attack."""

    def __init__(
        self,
        engine: SimulationEngine,
        attack_model: AttackModel,
        attack: Attack,
        instance_names: List[str],
        coordination_latency: float = 0.005,
        mode: CoordinationMode = CoordinationMode.TOTAL_ORDER,
        rng: Optional[SeededRng] = None,
    ) -> None:
        if not instance_names:
            raise ValueError("a cluster needs at least one instance")
        attack.validate_against(attack_model)
        self.engine = engine
        self.attack_model = attack_model
        self.attack = attack
        self.mode = mode
        self.coordination_latency = coordination_latency
        self.rng = rng or SeededRng(0)

        self.instances: Dict[str, _InstanceInjector] = {}
        for name in instance_names:
            self.instances[name] = _InstanceInjector(self, name, engine, attack_model)

        #: authoritative transition log: ordered (time, new_state)
        self.transition_log: List[Tuple[float, str]] = [(0.0, attack.start)]
        self.stats = {
            "messages_coordinated": 0,
            "stale_decisions": 0,
            "broadcasts": 0,
        }

        if mode is CoordinationMode.TOTAL_ORDER:
            self._executor = AttackExecutor(attack, engine,
                                            rng=self.rng.child("coordinator"))
            self._executor.add_observer(_TransitionRecorder(self))
        else:
            self._executor = None
            for index, instance in enumerate(self.instances.values()):
                replica = AttackExecutor(
                    attack, engine, rng=self.rng.child(f"replica-{index}")
                )
                replica.add_observer(_ReplicaBroadcaster(self, instance))
                instance.local_executor = replica

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #

    def instance(self, name: str) -> _InstanceInjector:
        return self.instances[name]

    def install_slices(self, network, controllers,
                       assignment: Dict[str, List[ConnectionKey]],
                       latency_s: float = RuntimeInjector.DEFAULT_CONTROL_LATENCY) -> None:
        """Point each connection at its assigned instance's proxy port."""
        for instance_name, connections in assignment.items():
            instance = self.instances[instance_name]
            for connection in connections:
                controller_name, switch_name = connection
                endpoint = controllers[controller_name]
                port = instance.port_for(connection, endpoint, latency_s)
                network.set_controller_target(switch_name, port, latency_s)

    # ------------------------------------------------------------------ #
    # Message routing
    # ------------------------------------------------------------------ #

    def route_message(self, instance: _InstanceInjector, proxy,
                      message: InterposedMessage) -> None:
        if self.mode is CoordinationMode.TOTAL_ORDER:
            # Ship to the coordinator, execute there, ship the result back.
            self.engine.schedule(
                self.coordination_latency, self._coordinate, instance, proxy, message
            )
        else:
            self._process_optimistically(instance, proxy, message)

    def _coordinate(self, instance: _InstanceInjector, proxy,
                    message: InterposedMessage) -> None:
        assert self._executor is not None
        if self._executor.sleeping(self.engine.now):
            self.engine.schedule_at(
                self._executor.sleep_until, self._coordinate, instance, proxy, message
            )
            return
        self.stats["messages_coordinated"] += 1
        outgoing = self._executor.handle_message(message)
        for observer in instance._observers:
            handler = getattr(observer, "message_interposed", None)
            if handler is not None:
                handler(message, outgoing, self.engine.now)
        self.engine.schedule(self.coordination_latency, proxy.deliver, outgoing)

    def _process_optimistically(self, instance: _InstanceInjector, proxy,
                                message: InterposedMessage) -> None:
        replica = instance.local_executor
        assert replica is not None
        authoritative = self.authoritative_state(self.engine.now)
        if replica.current_state_name != authoritative:
            # The replica is acting on a state the global order has already
            # left (or not yet reached): the Section VIII-C consistency risk.
            self.stats["stale_decisions"] += 1
        outgoing = replica.handle_message(message)
        for observer in instance._observers:
            handler = getattr(observer, "message_interposed", None)
            if handler is not None:
                handler(message, outgoing, self.engine.now)
        proxy.deliver(outgoing)

    # ------------------------------------------------------------------ #
    # State propagation
    # ------------------------------------------------------------------ #

    def record_transition(self, new_state: str) -> None:
        self.transition_log.append((self.engine.now, new_state))

    def broadcast_transition(self, origin: _InstanceInjector, new_state: str) -> None:
        """OPTIMISTIC mode: propagate a replica's transition to its peers."""
        self.record_transition(new_state)
        for instance in self.instances.values():
            if instance is origin:
                continue
            self.stats["broadcasts"] += 1
            self.engine.schedule(
                self.coordination_latency, self._apply_remote, instance, new_state
            )

    @staticmethod
    def _apply_remote(instance: _InstanceInjector, new_state: str) -> None:
        replica = instance.local_executor
        if replica is not None and new_state in replica.attack.states:
            if replica.current_state_name != new_state:
                replica.current_state_name = new_state

    def authoritative_state(self, at: float) -> str:
        """The state the single-injector total order prescribes at ``at``."""
        current = self.transition_log[0][1]
        for time, state in self.transition_log:
            if time <= at:
                current = state
            else:
                break
        return current

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def current_state(self) -> str:
        if self._executor is not None:
            return self._executor.current_state_name
        return self.transition_log[-1][1]

    def replica_states(self) -> Dict[str, str]:
        return {
            name: (instance.local_executor.current_state_name
                   if instance.local_executor else self.current_state)
            for name, instance in self.instances.items()
        }

    def __repr__(self) -> str:
        return (
            f"<DistributedInjection {self.mode.value} "
            f"instances={sorted(self.instances)} state={self.current_state!r}>"
        )


class _TransitionRecorder:
    """Observer feeding the coordinator's transition log."""

    def __init__(self, cluster: DistributedInjection) -> None:
        self.cluster = cluster

    def rule_fired(self, state, rule_name, message) -> None:
        pass

    def state_changed(self, previous, current, at) -> None:
        self.cluster.record_transition(current)

    def action_record(self, kind, data, at) -> None:
        pass


class _ReplicaBroadcaster:
    """Observer broadcasting a replica's transitions to its peers."""

    def __init__(self, cluster: DistributedInjection,
                 instance: _InstanceInjector) -> None:
        self.cluster = cluster
        self.instance = instance

    def rule_fired(self, state, rule_name, message) -> None:
        pass

    def state_changed(self, previous, current, at) -> None:
        self.cluster.broadcast_transition(self.instance, current)

    def action_record(self, kind, data, at) -> None:
        pass
