"""The runtime injector: orchestration of proxies, executor, and monitors.

The paper's deployment (Section VI-C): all control-plane connections are
proxied "through a single-threaded, centralized runtime injector instance",
imposing a total order on interposed messages.  Here that total order is
the simulation engine's deterministic event order, and the single executor
instance holds the one global state σ and storage Δ.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.dataplane.control import ControlEndpoint, connect_endpoints
from repro.dataplane.network import Network
from repro.core.injector.executor import AttackExecutor
from repro.core.injector.proxy import ConnectionProxy, ProxyPort
from repro.core.lang.actions import OutgoingMessage
from repro.core.lang.attack import Attack
from repro.core.lang.properties import Direction, InterposedMessage
from repro.core.model.threat import AttackModel
from repro.sim.engine import SimulationEngine
from repro.sim.rng import SeededRng

ConnectionKey = Tuple[str, str]


class RuntimeInjector:
    """The centralized ATTAIN runtime injector."""

    DEFAULT_CONTROL_LATENCY = 0.00025

    def __init__(
        self,
        engine: SimulationEngine,
        attack_model: AttackModel,
        attack: Optional[Attack] = None,
        rng: Optional[SeededRng] = None,
        name: str = "injector",
    ) -> None:
        self.engine = engine
        self.attack_model = attack_model
        self.name = name
        self.rng = rng or SeededRng(0)
        self.executor: Optional[AttackExecutor] = None
        if attack is not None:
            attack.validate_against(attack_model)
            self.executor = AttackExecutor(attack, engine, rng=self.rng)
        self._controller_endpoints: Dict[ConnectionKey, ControlEndpoint] = {}
        self._latency: Dict[ConnectionKey, float] = {}
        self._ports: Dict[ConnectionKey, ProxyPort] = {}
        self.active_proxies: Dict[ConnectionKey, ConnectionProxy] = {}
        self._observers: List = []
        self.tracer = None
        self.stats: Dict[str, int] = {
            "messages_interposed": 0,
            "messages_deferred": 0,
            "proxies_created": 0,
        }

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #

    def port_for(
        self,
        connection: ConnectionKey,
        controller_endpoint: ControlEndpoint,
        latency_s: float = DEFAULT_CONTROL_LATENCY,
    ) -> ProxyPort:
        """Create (or fetch) the proxy listen port for one connection."""
        connection = tuple(connection)
        if connection not in set(self.attack_model.system.connection_keys()):
            raise KeyError(f"connection {connection} is not in the system model's N_C")
        self._controller_endpoints[connection] = controller_endpoint
        self._latency[connection] = latency_s
        if connection not in self._ports:
            self._ports[connection] = ProxyPort(self, connection)
        return self._ports[connection]

    def install(
        self,
        network: Network,
        controllers: Dict[str, ControlEndpoint],
        latency_s: float = DEFAULT_CONTROL_LATENCY,
    ) -> None:
        """Interpose every N_C connection of ``network``.

        ``controllers`` maps system-model controller names to live
        controller endpoints.  Each switch is re-pointed at its proxy port
        — the paper's "point to the proxy as the SDN controller" step.
        """
        wired = set()
        for connection in self.attack_model.system.connection_keys():
            controller_name, switch_name = connection
            endpoint = controllers.get(controller_name)
            if endpoint is None:
                raise KeyError(f"no live endpoint for controller {controller_name!r}")
            port = self.port_for(connection, endpoint, latency_s)
            if switch_name in wired:
                # N_C is many-to-many: further controllers become
                # additional (redundant) connections on the same switch.
                network.add_controller_target(switch_name, port, latency_s,
                                              target_name=controller_name)
            else:
                network.set_controller_target(switch_name, port, latency_s)
                wired.add(switch_name)

    def add_observer(self, observer) -> None:
        """Register a monitor for executor and message events."""
        self._observers.append(observer)
        if self.executor is not None:
            self.executor.add_observer(observer)

    def set_syscmd_router(self, router: Callable[[str, str], None]) -> None:
        if self.executor is not None:
            self.executor.set_syscmd_router(router)

    def set_tracer(self, tracer) -> None:
        """Attach a trace collector to the executor and every proxy."""
        self.tracer = tracer
        if self.executor is not None:
            self.executor.set_tracer(tracer)
        for proxy in self.active_proxies.values():
            proxy.tracer = tracer

    # ------------------------------------------------------------------ #
    # Proxy lifecycle (called by ProxyPort / ConnectionProxy)
    # ------------------------------------------------------------------ #

    def create_proxy(self, connection: ConnectionKey) -> ConnectionProxy:
        old = self.active_proxies.get(tuple(connection))
        if old is not None and not old.closed:
            old.close()
        proxy = ConnectionProxy(self, connection)
        self.active_proxies[tuple(connection)] = proxy
        self.stats["proxies_created"] += 1
        return proxy

    def dial_controller(self, proxy: ConnectionProxy) -> None:
        endpoint = self._controller_endpoints[proxy.connection]
        latency = self._latency[proxy.connection]
        chan_proxy, _chan_ctl = connect_endpoints(
            self.engine,
            proxy,
            endpoint,
            latency_s=latency,
            name=f"proxy-{proxy.connection[1]}-to-{proxy.connection[0]}",
        )
        proxy.controller_channel = chan_proxy

    def proxy_closed(self, proxy: ConnectionProxy) -> None:
        if self.active_proxies.get(proxy.connection) is proxy:
            del self.active_proxies[proxy.connection]

    # ------------------------------------------------------------------ #
    # Message path
    # ------------------------------------------------------------------ #

    def submit(self, proxy: ConnectionProxy, message: InterposedMessage) -> None:
        """Run one interposed message through the attack executor.

        SLEEP actions hold up state execution: messages arriving during a
        sleep are deferred (in order) until it elapses.
        """
        if self.executor is None:
            self.stats["messages_interposed"] += 1
            outgoing = [OutgoingMessage(message)]
            for observer in self._observers:
                handler = getattr(observer, "message_interposed", None)
                if handler is not None:
                    handler(message, outgoing, self.engine.now)
            proxy.deliver(outgoing)
            return
        if self.executor.sleeping(self.engine.now):
            self.stats["messages_deferred"] += 1
            self.engine.schedule_at(
                self.executor.sleep_until, self._process, proxy, message
            )
            return
        self._process(proxy, message)

    def _process(self, proxy: ConnectionProxy, message: InterposedMessage) -> None:
        if self.executor is not None and self.executor.sleeping(self.engine.now):
            # A SLEEP landed while this message waited; defer again.
            self.engine.schedule_at(
                self.executor.sleep_until, self._process, proxy, message
            )
            return
        self.stats["messages_interposed"] += 1
        assert self.executor is not None
        outgoing = self.executor.handle_message(message)
        for observer in self._observers:
            handler = getattr(observer, "message_interposed", None)
            if handler is not None:
                handler(message, outgoing, self.engine.now)
        proxy.deliver(outgoing)

    def route(self, proxy: ConnectionProxy, entry: OutgoingMessage):
        """Pick the output channel for one outgoing message.

        Honors MODIFYMESSAGEMETADATA destination rewrites when the new
        destination names a device with an active interposed connection.
        """
        message = entry.message
        override = message.metadata_overrides.get("destination")
        if override and override != message.natural_destination:
            redirected = self._channel_for_destination(override, message.direction)
            if redirected is not None:
                return redirected
        return proxy.channel_for(message.direction)

    def _channel_for_destination(self, destination: str, direction: Direction):
        for connection, proxy in self.active_proxies.items():
            controller, switch = connection
            if direction is Direction.TO_SWITCH and switch == destination:
                return proxy.channel_for(Direction.TO_SWITCH)
            if direction is Direction.TO_CONTROLLER and controller == destination:
                return proxy.channel_for(Direction.TO_CONTROLLER)
        return None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def current_state(self) -> Optional[str]:
        return self.executor.current_state_name if self.executor else None

    def proxy_stats_total(self, key: str) -> int:
        return sum(p.stats.get(key, 0) for p in self.active_proxies.values())

    def __repr__(self) -> str:
        attack = self.executor.attack.name if self.executor else "pass-through"
        return f"<RuntimeInjector {attack} proxies={len(self.active_proxies)}>"
