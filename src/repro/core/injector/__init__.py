"""The ATTAIN runtime injector (Section VI)."""

from repro.core.injector.distributed import CoordinationMode, DistributedInjection
from repro.core.injector.executor import AttackExecutor, ExecutorObserver
from repro.core.injector.modifier import MessageModifier
from repro.core.injector.proxy import ConnectionProxy, ProxyPort
from repro.core.injector.runtime import RuntimeInjector

__all__ = [
    "AttackExecutor",
    "ConnectionProxy",
    "CoordinationMode",
    "DistributedInjection",
    "ExecutorObserver",
    "MessageModifier",
    "ProxyPort",
    "RuntimeInjector",
]
