"""The control-plane connection proxy (Section VI-B2).

"The control plane connection proxy proxies all control plane connections
for interposing, and it operates as a server for switch connections and as
a client for controller connections."

Each switch is pointed at a :class:`ProxyPort` instead of its controller
(the only deployment change the paper requires).  When the switch dials in,
the port spins up a :class:`ConnectionProxy` which dials the real
controller, decodes the byte streams into OpenFlow messages, runs each
through the attack executor, and re-encodes the executor's outgoing list.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.dataplane.control import ControlChannel
from repro.openflow.connection import MessageFramer
from repro.openflow.messages import (
    OpenFlowDecodeError,
    peek_message_type_name,
    peek_xid,
)
from repro.core.lang.actions import OutgoingMessage
from repro.core.lang.properties import Direction, InterposedMessage

ConnectionKey = Tuple[str, str]


class ConnectionProxy:
    """One interposed control-plane connection (controller, switch)."""

    def __init__(self, injector, connection: ConnectionKey) -> None:
        self.injector = injector
        self.connection = tuple(connection)
        self.switch_channel: Optional[ControlChannel] = None
        self.controller_channel: Optional[ControlChannel] = None
        self._to_controller_framer = MessageFramer()
        self._to_switch_framer = MessageFramer()
        self._interposed = bool(injector.attack_model.gamma(connection))
        self.tracer = getattr(injector, "tracer", None)
        self.closed = False
        self.stats: Dict[str, int] = {
            "to_controller_messages": 0,
            "to_switch_messages": 0,
            "forwarded": 0,
            "dropped": 0,
            "injected": 0,
            "delayed": 0,
            "decode_avoided": 0,
            "repack_avoided": 0,
        }

    # ------------------------------------------------------------------ #
    # ControlEndpoint interface (both sides land here)
    # ------------------------------------------------------------------ #

    def channel_opened(self, channel: ControlChannel) -> None:
        # Only the controller-side dial lands here (the switch side is
        # adopted by ProxyPort); mark it live.
        self.controller_channel = channel

    def bytes_received(self, channel: ControlChannel, data: bytes) -> None:
        if self.closed:
            return
        if channel is self.switch_channel:
            direction = Direction.TO_CONTROLLER
            framer = self._to_controller_framer
        elif channel is self.controller_channel:
            direction = Direction.TO_SWITCH
            framer = self._to_switch_framer
        else:
            return
        if not self._interposed:
            # No attacker on this connection: forward raw bytes untouched.
            peer = self._peer_channel(direction)
            if peer is not None:
                peer.send(data)
            return
        try:
            # Frame on the header length field only — no body decode.  The
            # executor's dispatch peeks the type from the header; the full
            # parse happens lazily iff an evaluated conditional reads the
            # payload, and pass-through reuses these exact wire bytes.
            frames = framer.feed_frames(data)
        except OpenFlowDecodeError:
            # Give up interposing a corrupt stream: pass bytes through so
            # the endpoints see the same garbage a real TCP proxy would.
            peer = self._peer_channel(direction)
            if peer is not None:
                peer.send(data)
            return
        for frame in frames:
            interposed = InterposedMessage(
                self.connection,
                direction,
                self.injector.engine.now,
                frame,
            )
            if direction is Direction.TO_CONTROLLER:
                self.stats["to_controller_messages"] += 1
            else:
                self.stats["to_switch_messages"] += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "message",
                    connection=list(self.connection),
                    direction=direction.value,
                    type=peek_message_type_name(frame),
                    xid=peek_xid(frame),
                    length=len(frame),
                    msg_id=interposed.msg_id,
                )
            self.injector.submit(self, interposed)

    def channel_closed(self, channel: ControlChannel) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Output
    # ------------------------------------------------------------------ #

    def deliver(self, outgoing: List[OutgoingMessage]) -> None:
        """Send the executor's outgoing list to the proper sides."""
        if self.closed:
            return
        self.stats["forwarded"] += len(outgoing)
        for entry in outgoing:
            if entry.injected:
                self.stats["injected"] += 1
            else:
                # Fast-lane accounting for interposed originals: a message
                # no rule decoded ships without ever being parsed, and one
                # whose payload was never replaced re-uses its wire bytes.
                message = entry.message
                if message._parsed is None and not message._parse_failed:
                    self.stats["decode_avoided"] += 1
                if not message.payload_replaced:
                    self.stats["repack_avoided"] += 1
            target = self.injector.route(self, entry)
            if target is None:
                continue
            if entry.delay > 0:
                self.stats["delayed"] += 1
                self.injector.engine.schedule(
                    entry.delay, self._send_if_open, target, entry.message.raw
                )
            else:
                self._send_if_open(target, entry.message.raw)

    @staticmethod
    def _send_if_open(channel: ControlChannel, data: bytes) -> None:
        if channel.open:
            channel.send(data)

    def _peer_channel(self, direction: Direction) -> Optional[ControlChannel]:
        if direction is Direction.TO_CONTROLLER:
            return self.controller_channel
        return self.switch_channel

    def channel_for(self, direction: Direction) -> Optional[ControlChannel]:
        return self._peer_channel(direction)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        for channel in (self.switch_channel, self.controller_channel):
            if channel is not None and channel.open:
                channel.close()
        self.injector.proxy_closed(self)

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"<ConnectionProxy {self.connection} {state}>"


class ProxyPort:
    """The listening endpoint a switch is configured to dial.

    One port exists per registered control connection; it identifies which
    (controller, switch) pair an inbound connection belongs to — the
    equivalent of the paper's per-switch proxy listen sockets.
    """

    def __init__(self, injector, connection: ConnectionKey) -> None:
        self.injector = injector
        self.connection = tuple(connection)

    def channel_opened(self, channel: ControlChannel) -> None:
        proxy = self.injector.create_proxy(self.connection)
        proxy.switch_channel = channel
        channel.owner = proxy
        self.injector.dial_controller(proxy)

    def bytes_received(self, channel: ControlChannel, data: bytes) -> None:
        # Until channel_opened fires, no bytes can arrive (connect latency).
        raise AssertionError("ProxyPort received bytes before adoption")

    def channel_closed(self, channel: ControlChannel) -> None:
        pass

    def __repr__(self) -> str:
        return f"<ProxyPort {self.connection}>"
