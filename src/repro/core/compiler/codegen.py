"""The executable-code generator (Section VI-B1).

"Finally, the executable code generator takes the parser data and
generates an executable code file to be included at the attack's runtime."

``generate_attack_source`` turns a validated :class:`Attack` into a
standalone Python module (the "executable code file") that rebuilds the
same attack through the public API; ``compile_attack_source`` executes
such a module and returns its attack.  The round trip
``compile(generate(attack))`` is semantics-preserving and is
property-tested.
"""

from __future__ import annotations

from typing import List

from repro.core.compiler.errors import CompileError
from repro.core.lang.actions import (
    AppendAction,
    AttackAction,
    DelayMessage,
    DropMessage,
    DuplicateMessage,
    FuzzMessage,
    GoToState,
    InjectNewMessage,
    ModifyMessage,
    ModifyMessageMetadata,
    PassMessage,
    PopAction,
    PrependAction,
    ReadMessage,
    ReadMessageMetadata,
    ShiftAction,
    Sleep,
    SysCmd,
)
from repro.core.lang.attack import Attack
from repro.core.lang.conditionals import (
    And,
    Comparison,
    Condition,
    Const,
    ExamineEnd,
    ExamineFront,
    Expression,
    MessageRef,
    Not,
    Or,
    PopExpr,
    Probability,
    Property,
    ShiftExpr,
    Sum,
    TrueCondition,
    TypeOption,
)
from repro.core.model.capabilities import gamma_no_tls, gamma_tls

KIND = "codegen"


# ---------------------------------------------------------------------- #
# DSL unparser (expressions and conditions back to parseable text)
# ---------------------------------------------------------------------- #

_BAREWORD_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.:")


def _const_to_text(value) -> str:
    if isinstance(value, frozenset) or isinstance(value, (set, tuple, list)):
        inner = ", ".join(sorted(_const_to_text(item) for item in value))
        return "{" + inner + "}"
    if isinstance(value, bool):
        raise CompileError(KIND, "boolean constants are not expressible in the DSL")
    if isinstance(value, int):
        return str(value)
    text = str(value)
    if text and all(ch in _BAREWORD_OK for ch in text) and not text.isdigit():
        return text
    return f"'{text}'"


def expression_to_text(expr: Expression) -> str:
    """Unparse an expression into DSL text accepted by parse_expression."""
    if isinstance(expr, Const):
        return _const_to_text(expr.value)
    if isinstance(expr, Property):
        return expr.prop.value
    if isinstance(expr, TypeOption):
        return f"opt.{expr.path}"
    if isinstance(expr, MessageRef):
        return "msg"
    if isinstance(expr, ExamineFront):
        return f"front({expr.deque_name})"
    if isinstance(expr, ExamineEnd):
        return f"end({expr.deque_name})"
    if isinstance(expr, ShiftExpr):
        return f"shift({expr.deque_name})"
    if isinstance(expr, PopExpr):
        return f"pop({expr.deque_name})"
    if isinstance(expr, Sum):
        parts = [expression_to_text(expr.first)]
        for op, operand in expr.rest:
            parts.append(f"{op} {expression_to_text(operand)}")
        return " ".join(parts)
    raise CompileError(KIND, f"cannot unparse expression {expr!r}")


def condition_to_text(condition: Condition) -> str:
    """Unparse a condition into DSL text accepted by parse_condition."""
    if isinstance(condition, TrueCondition):
        return "true"
    if isinstance(condition, Probability):
        return f"prob({condition.p})"
    if isinstance(condition, Comparison):
        return (
            f"{expression_to_text(condition.left)} {condition.op} "
            f"{expression_to_text(condition.right)}"
        )
    if isinstance(condition, And):
        return "(" + " and ".join(condition_to_text(t) for t in condition.terms) + ")"
    if isinstance(condition, Or):
        return "(" + " or ".join(condition_to_text(t) for t in condition.terms) + ")"
    if isinstance(condition, Not):
        return f"not ({condition_to_text(condition.term)})"
    raise CompileError(KIND, f"cannot unparse condition {condition!r}")


# ---------------------------------------------------------------------- #
# Action serialization
# ---------------------------------------------------------------------- #


def _value_arg(value) -> str:
    if isinstance(value, Expression):
        return f"parse_expression({expression_to_text(value)!r})"
    return repr(value)


def action_to_source(action: AttackAction) -> str:
    if isinstance(action, PassMessage):
        return "PassMessage()"
    if isinstance(action, DropMessage):
        return "DropMessage()"
    if isinstance(action, DelayMessage):
        return f"DelayMessage({_value_arg(action.seconds)})"
    if isinstance(action, DuplicateMessage):
        return f"DuplicateMessage(copies={action.copies})"
    if isinstance(action, ReadMessageMetadata):
        return f"ReadMessageMetadata(store_to={action.store_to!r})"
    if isinstance(action, ModifyMessageMetadata):
        return (
            f"ModifyMessageMetadata({action.metadata_field!r}, "
            f"{_value_arg(action.value)})"
        )
    if isinstance(action, FuzzMessage):
        return (
            f"FuzzMessage(bit_flips={action.bit_flips}, "
            f"preserve_header={action.preserve_header})"
        )
    if isinstance(action, ReadMessage):
        return f"ReadMessage(store_to={action.store_to!r})"
    if isinstance(action, ModifyMessage):
        return f"ModifyMessage({action.field_path!r}, {_value_arg(action.value)})"
    if isinstance(action, InjectNewMessage):
        if not isinstance(action.source, Expression):
            raise CompileError(
                KIND,
                "only expression-sourced InjectNewMessage actions can be "
                "serialized (factories/literals are runtime-only)",
            )
        return (
            f"InjectNewMessage(parse_expression("
            f"{expression_to_text(action.source)!r}), "
            f"direction={action.direction!r})"
        )
    if isinstance(action, PrependAction):
        return f"PrependAction({action.deque_name!r}, {_value_arg(action.value)})"
    if isinstance(action, AppendAction):
        return f"AppendAction({action.deque_name!r}, {_value_arg(action.value)})"
    if isinstance(action, ShiftAction):
        return f"ShiftAction({action.deque_name!r})"
    if isinstance(action, PopAction):
        return f"PopAction({action.deque_name!r})"
    if isinstance(action, GoToState):
        return f"GoToState({action.state_name!r})"
    if isinstance(action, Sleep):
        return f"Sleep({action.seconds})"
    if isinstance(action, SysCmd):
        return f"SysCmd({action.host!r}, {action.command!r})"
    raise CompileError(KIND, f"cannot serialize action {action!r}")


def _gamma_source(gamma: frozenset) -> str:
    if gamma == gamma_no_tls():
        return "gamma_no_tls()"
    if gamma == gamma_tls():
        return "gamma_tls()"
    names = ", ".join(
        f"Capability.{capability.name}" for capability in sorted(gamma, key=lambda c: c.name)
    )
    return "{" + names + "}"


# ---------------------------------------------------------------------- #
# Module generation / loading
# ---------------------------------------------------------------------- #

_HEADER = '''\
"""Executable attack code generated by the ATTAIN compiler.

Regenerate with repro.core.compiler.generate_attack_source(); load with
repro.core.compiler.compile_attack_source().
"""

from repro.core.lang.actions import (
    AppendAction, DelayMessage, DropMessage, DuplicateMessage, FuzzMessage,
    GoToState, InjectNewMessage, ModifyMessage, ModifyMessageMetadata,
    PassMessage, PopAction, PrependAction, ReadMessage, ReadMessageMetadata,
    ShiftAction, Sleep, SysCmd,
)
from repro.core.lang.attack import Attack
from repro.core.lang.parser import parse_condition, parse_expression
from repro.core.lang.rules import Rule
from repro.core.lang.states import AttackState
from repro.core.model.capabilities import Capability, gamma_no_tls, gamma_tls


def build_attack() -> Attack:
'''


def generate_attack_source(attack: Attack) -> str:
    """Emit the executable Python module for ``attack``."""
    lines: List[str] = [_HEADER]
    indent = "    "
    for state_name in sorted(attack.states):
        state = attack.states[state_name]
        var = _state_var(state_name)
        lines.append(f"{indent}{var}_rules = []")
        for rule in state.rules:
            connections = sorted(rule.connections)
            actions_src = ", ".join(action_to_source(action) for action in rule.actions)
            lines.append(
                f"{indent}{var}_rules.append(Rule(\n"
                f"{indent}    {rule.name!r},\n"
                f"{indent}    {connections!r},\n"
                f"{indent}    {_gamma_source(rule.gamma)},\n"
                f"{indent}    parse_condition({condition_to_text(rule.conditional)!r}),\n"
                f"{indent}    [{actions_src}],\n"
                f"{indent}))"
            )
        lines.append(f"{indent}{var} = AttackState({state_name!r}, {var}_rules)")
    state_vars = ", ".join(_state_var(name) for name in sorted(attack.states))
    lines.append(
        f"{indent}return Attack(\n"
        f"{indent}    {attack.name!r},\n"
        f"{indent}    [{state_vars}],\n"
        f"{indent}    start={attack.start!r},\n"
        f"{indent}    deque_declarations={attack.deque_declarations!r},\n"
        f"{indent}    description={attack.description!r},\n"
        f"{indent})"
    )
    lines.append("")
    lines.append("ATTACK = build_attack()")
    lines.append("")
    return "\n".join(lines)


def _state_var(state_name: str) -> str:
    cleaned = "".join(ch if ch.isalnum() else "_" for ch in state_name)
    return f"state_{cleaned}"


def compile_attack_source(source: str) -> Attack:
    """Execute a generated module and return its ATTACK object."""
    namespace: dict = {"__name__": "attain_generated_attack"}
    try:
        exec(compile(source, "<generated attack>", "exec"), namespace)
    except Exception as exc:
        raise CompileError(KIND, f"generated code failed to execute: {exc}") from exc
    attack = namespace.get("ATTACK")
    if not isinstance(attack, Attack):
        raise CompileError(KIND, "generated module did not produce an ATTACK object")
    return attack
