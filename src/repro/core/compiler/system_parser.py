"""System-model XML parser.

Input format::

    <system name="enterprise">
      <controllers>
        <controller name="c1" address="10.1.0.1"/>
      </controllers>
      <switches>
        <switch name="s1" dpid="1" ports="1,2,3"/>
      </switches>
      <hosts>
        <host name="h1" mac="00:00:00:00:00:01" ip="10.0.0.1"/>
      </hosts>
      <dataplane>
        <link a="h1" b="s1" b-port="1"/>
        <link a="s1" a-port="3" b="s2" b-port="1"/>
      </dataplane>
      <controlplane>
        <connection controller="c1" switch="s1"/>
      </controlplane>
    </system>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import List, Optional

from repro.netlib.addresses import Ipv4Address, MacAddress
from repro.core.compiler.errors import CompileError
from repro.core.compiler.source import SourceMap, parse_xml_with_source
from repro.core.model.system import (
    ControlConnection,
    ControllerSpec,
    DataPlaneEdge,
    HostSpec,
    SwitchSpec,
    SystemModel,
    SystemModelError,
)

KIND = "system-model"


def parse_system_model_xml(text: str) -> SystemModel:
    """Parse system-model XML text into a validated :class:`SystemModel`."""
    root, source = parse_xml_with_source(text, KIND)
    if root.tag != "system":
        raise CompileError(
            KIND, f"root element must be <system>, got <{root.tag}>",
            line=source.line(root), tag=root.tag,
        )

    controllers = [
        ControllerSpec(
            name=_require(element, "name", source),
            address=element.get("address", ""),
        )
        for element in root.iterfind("./controllers/controller")
    ]
    switches = []
    for element in root.iterfind("./switches/switch"):
        name = _require(element, "name", source)
        ports_attr = element.get("ports", "")
        try:
            ports = tuple(
                int(part, 0) for part in ports_attr.split(",") if part.strip()
            )
        except ValueError as exc:
            raise CompileError(
                KIND, f"switch {name!r} has a malformed ports list "
                f"{ports_attr!r}",
                line=source.line(element), tag="switch",
            ) from exc
        switches.append(
            SwitchSpec(
                name=name,
                datapath_id=_int_attr(element, "dpid", len(switches) + 1, source),
                ports=ports,
            )
        )
    hosts = []
    for element in root.iterfind("./hosts/host"):
        mac = element.get("mac")
        ip = element.get("ip")
        try:
            hosts.append(
                HostSpec(
                    name=_require(element, "name", source),
                    mac=MacAddress(mac) if mac else None,
                    ip=Ipv4Address(ip) if ip else None,
                )
            )
        except ValueError as exc:
            raise CompileError(
                KIND, f"bad host address: {exc}",
                line=source.line(element), tag="host",
            ) from exc

    edges: List[DataPlaneEdge] = []
    for element in root.iterfind("./dataplane/link"):
        a = _require(element, "a", source)
        b = _require(element, "b", source)
        a_port = _optional_int(element, "a-port", source)
        b_port = _optional_int(element, "b-port", source)
        edges.append(DataPlaneEdge(a, b, a_port, b_port))
        edges.append(DataPlaneEdge(b, a, b_port, a_port))

    connections = [
        ControlConnection(
            controller=_require(element, "controller", source),
            switch=_require(element, "switch", source),
        )
        for element in root.iterfind("./controlplane/connection")
    ]
    try:
        return SystemModel(controllers, switches, hosts, edges, connections)
    except SystemModelError as exc:
        raise CompileError(KIND, str(exc), line=source.line(root)) from exc


def _require(element: ET.Element, attr: str, source: SourceMap) -> str:
    value = element.get(attr)
    if value is None or not value.strip():
        raise CompileError(
            KIND, f"<{element.tag}> missing required attribute {attr!r}",
            line=source.line(element), tag=element.tag,
        )
    return value.strip()


def _int_attr(element: ET.Element, attr: str, default: int, source: SourceMap) -> int:
    value = element.get(attr)
    if value is None:
        return default
    try:
        return int(value, 0)
    except ValueError as exc:
        raise CompileError(
            KIND, f"<{element.tag}> attribute {attr!r} not an int",
            line=source.line(element), tag=element.tag,
        ) from exc


def _optional_int(element: ET.Element, attr: str, source: SourceMap) -> Optional[int]:
    value = element.get(attr)
    if value is None:
        return None
    try:
        return int(value, 0)
    except ValueError as exc:
        raise CompileError(
            KIND, f"<{element.tag}> attribute {attr!r} not an int",
            line=source.line(element), tag=element.tag,
        ) from exc
