"""System-model XML parser.

Input format::

    <system name="enterprise">
      <controllers>
        <controller name="c1" address="10.1.0.1"/>
      </controllers>
      <switches>
        <switch name="s1" dpid="1" ports="1,2,3"/>
      </switches>
      <hosts>
        <host name="h1" mac="00:00:00:00:00:01" ip="10.0.0.1"/>
      </hosts>
      <dataplane>
        <link a="h1" b="s1" b-port="1"/>
        <link a="s1" a-port="3" b="s2" b-port="1"/>
      </dataplane>
      <controlplane>
        <connection controller="c1" switch="s1"/>
      </controlplane>
    </system>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import List, Optional

from repro.netlib.addresses import Ipv4Address, MacAddress
from repro.core.compiler.errors import CompileError
from repro.core.model.system import (
    ControlConnection,
    ControllerSpec,
    DataPlaneEdge,
    HostSpec,
    SwitchSpec,
    SystemModel,
    SystemModelError,
)

KIND = "system-model"


def parse_system_model_xml(text: str) -> SystemModel:
    """Parse system-model XML text into a validated :class:`SystemModel`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise CompileError(KIND, f"not well-formed XML: {exc}") from exc
    if root.tag != "system":
        raise CompileError(KIND, f"root element must be <system>, got <{root.tag}>")

    controllers = [
        ControllerSpec(
            name=_require(element, "name"),
            address=element.get("address", ""),
        )
        for element in root.iterfind("./controllers/controller")
    ]
    switches = []
    for element in root.iterfind("./switches/switch"):
        name = _require(element, "name")
        ports_attr = element.get("ports", "")
        try:
            ports = tuple(
                int(part, 0) for part in ports_attr.split(",") if part.strip()
            )
        except ValueError as exc:
            raise CompileError(
                KIND, f"switch {name!r} has a malformed ports list "
                f"{ports_attr!r}"
            ) from exc
        switches.append(
            SwitchSpec(
                name=name,
                datapath_id=_int_attr(element, "dpid", default=len(switches) + 1),
                ports=ports,
            )
        )
    hosts = []
    for element in root.iterfind("./hosts/host"):
        mac = element.get("mac")
        ip = element.get("ip")
        try:
            hosts.append(
                HostSpec(
                    name=_require(element, "name"),
                    mac=MacAddress(mac) if mac else None,
                    ip=Ipv4Address(ip) if ip else None,
                )
            )
        except ValueError as exc:
            raise CompileError(KIND, f"bad host address: {exc}") from exc

    edges: List[DataPlaneEdge] = []
    for element in root.iterfind("./dataplane/link"):
        a = _require(element, "a")
        b = _require(element, "b")
        a_port = _optional_int(element, "a-port")
        b_port = _optional_int(element, "b-port")
        edges.append(DataPlaneEdge(a, b, a_port, b_port))
        edges.append(DataPlaneEdge(b, a, b_port, a_port))

    connections = [
        ControlConnection(
            controller=_require(element, "controller"),
            switch=_require(element, "switch"),
        )
        for element in root.iterfind("./controlplane/connection")
    ]
    try:
        return SystemModel(controllers, switches, hosts, edges, connections)
    except SystemModelError as exc:
        raise CompileError(KIND, str(exc)) from exc


def _require(element: ET.Element, attr: str) -> str:
    value = element.get(attr)
    if value is None or not value.strip():
        raise CompileError(KIND, f"<{element.tag}> missing required attribute {attr!r}")
    return value.strip()


def _int_attr(element: ET.Element, attr: str, default: int) -> int:
    value = element.get(attr)
    if value is None:
        return default
    try:
        return int(value, 0)
    except ValueError as exc:
        raise CompileError(KIND, f"<{element.tag}> attribute {attr!r} not an int") from exc


def _optional_int(element: ET.Element, attr: str) -> Optional[int]:
    value = element.get(attr)
    if value is None:
        return None
    try:
        return int(value, 0)
    except ValueError as exc:
        raise CompileError(KIND, f"<{element.tag}> attribute {attr!r} not an int") from exc
