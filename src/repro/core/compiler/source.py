"""Line-aware XML parsing for compiler diagnostics.

``xml.etree.ElementTree`` discards source positions, so a
:class:`CompileError` raised halfway through a big attack-states file
could historically only say *what* was wrong, never *where*.  This module
parses XML through expat directly, building the same
:class:`~xml.etree.ElementTree.Element` tree while recording each
element's source line in a :class:`SourceMap`.  The parsers thread those
lines into :class:`~repro.core.compiler.errors.CompileError` and attach
them to the compiled language objects (``source_line`` attributes on
attacks, states, and rules) so ``repro lint`` diagnostics point at the
offending element.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional, Tuple
from xml.parsers import expat

from repro.core.compiler.errors import CompileError


class SourceMap:
    """Element -> source line lookup for one parsed document."""

    def __init__(self) -> None:
        self.root: Optional[ET.Element] = None
        # Values keep the element alive so id() keys stay unambiguous.
        self._lines: dict = {}

    def record(self, element: ET.Element, line: int) -> None:
        self._lines[id(element)] = (line, element)

    def line(self, element: Optional[ET.Element]) -> Optional[int]:
        """The 1-based source line ``element`` started on, if known."""
        if element is None:
            return None
        entry = self._lines.get(id(element))
        return entry[0] if entry is not None else None


def parse_xml_with_source(text: str, kind: str) -> Tuple[ET.Element, SourceMap]:
    """Parse ``text`` into an Element tree plus a :class:`SourceMap`.

    Malformed XML raises :class:`CompileError` with ``kind`` and the
    expat-reported line, matching the parsers' historical behaviour.
    """
    source = SourceMap()
    builder = ET.TreeBuilder()
    parser = expat.ParserCreate()

    def handle_start(tag: str, attrs: dict) -> None:
        element = builder.start(tag, attrs)
        source.record(element, parser.CurrentLineNumber)

    parser.StartElementHandler = handle_start
    parser.EndElementHandler = lambda tag: builder.end(tag)
    parser.CharacterDataHandler = builder.data
    parser.buffer_text = True
    try:
        parser.Parse(text, True)
        root = builder.close()
    except (expat.ExpatError, ET.ParseError) as exc:
        line = getattr(exc, "lineno", None)
        raise CompileError(kind, f"not well-formed XML: {exc}", line=line) from exc
    source.root = root
    return root, source
