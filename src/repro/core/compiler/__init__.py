"""The ATTAIN compiler (Section VI-B1).

"The compiler converts user-defined files specifying the system model,
attack model, and attack states into executable code that the attack
injector can run at runtime."

* :mod:`repro.core.compiler.system_parser` — system-model XML;
* :mod:`repro.core.compiler.attack_parser` — attack-model (capability map)
  XML;
* :mod:`repro.core.compiler.states_parser` — attack-states XML;
* :mod:`repro.core.compiler.source` — line-aware XML parsing shared by the
  parsers, so compile errors and lint diagnostics carry source locations;
* :mod:`repro.core.compiler.codegen` — the executable-code generator: emit
  a standalone Python module that rebuilds the attack, and load such
  modules back.

:func:`compile_attack` is the front door that composes parsing with the
``repro.lint`` static analysis.
"""

from __future__ import annotations

from typing import Optional

from repro.core.compiler.attack_parser import parse_attack_model_xml
from repro.core.compiler.codegen import compile_attack_source, generate_attack_source
from repro.core.compiler.errors import CompileError
from repro.core.compiler.source import SourceMap, parse_xml_with_source
from repro.core.compiler.states_parser import parse_attack_states_xml
from repro.core.compiler.system_parser import parse_system_model_xml


class LintFailure(CompileError):
    """Compilation aborted because lint found error-severity diagnostics.

    ``report`` carries the full :class:`~repro.lint.diagnostics.LintReport`
    (errors and advisories) for callers that render diagnostics themselves.
    """

    def __init__(self, report) -> None:
        self.report = report
        summary = "; ".join(d.render() for d in report.errors)
        super().__init__("attack-states", f"lint failed: {summary}")


def compile_attack(
    states_xml: str,
    system,
    attack_model=None,
    lint: bool = False,
):
    """Parse attack-states XML and optionally lint the result.

    Without ``lint`` this is strict parsing (structural graph problems
    raise :class:`CompileError`, the historical behaviour).  With
    ``lint=True`` the parse is lenient, the full ``repro.lint`` pass
    battery runs (against ``attack_model`` when given), the report is
    attached to the attack as ``attack.lint_report``, and error-severity
    diagnostics raise :class:`LintFailure` — warnings and infos are
    collected, not fatal.
    """
    if not lint:
        attack = parse_attack_states_xml(states_xml, system, strict=True)
        if attack_model is not None:
            attack.validate_against(attack_model)
        return attack

    from repro.lint import lint_attack

    attack = parse_attack_states_xml(states_xml, system, strict=False)
    report = lint_attack(attack, attack_model)
    attack.lint_report = report
    if report.has_errors:
        raise LintFailure(report)
    return attack


__all__ = [
    "CompileError",
    "LintFailure",
    "SourceMap",
    "compile_attack",
    "compile_attack_source",
    "generate_attack_source",
    "parse_attack_model_xml",
    "parse_attack_states_xml",
    "parse_system_model_xml",
]
