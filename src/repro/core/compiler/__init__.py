"""The ATTAIN compiler (Section VI-B1).

"The compiler converts user-defined files specifying the system model,
attack model, and attack states into executable code that the attack
injector can run at runtime."

* :mod:`repro.core.compiler.system_parser` — system-model XML;
* :mod:`repro.core.compiler.attack_parser` — attack-model (capability map)
  XML;
* :mod:`repro.core.compiler.states_parser` — attack-states XML;
* :mod:`repro.core.compiler.codegen` — the executable-code generator: emit
  a standalone Python module that rebuilds the attack, and load such
  modules back.
"""

from repro.core.compiler.attack_parser import parse_attack_model_xml
from repro.core.compiler.codegen import compile_attack_source, generate_attack_source
from repro.core.compiler.errors import CompileError
from repro.core.compiler.states_parser import parse_attack_states_xml
from repro.core.compiler.system_parser import parse_system_model_xml

__all__ = [
    "CompileError",
    "compile_attack_source",
    "generate_attack_source",
    "parse_attack_model_xml",
    "parse_attack_states_xml",
    "parse_system_model_xml",
]
