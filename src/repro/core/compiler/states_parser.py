"""Attack-states XML parser.

Input format::

    <attack name="flow-mod-suppression" start="sigma1">
      <deque name="count"><value type="int">0</value></deque>
      <state name="sigma1">
        <rule name="phi1">
          <connections>
            <all-connections/>          <!-- or explicit <connection .../> -->
          </connections>
          <gamma class="no-tls"/>       <!-- or explicit <capability .../> -->
          <condition>type = FLOW_MOD</condition>
          <actions>
            <drop/>
          </actions>
        </rule>
      </state>
    </attack>

Supported action elements (Section V-D): ``pass drop delay duplicate
read-metadata modify-metadata fuzz read modify inject prepend append shift
pop goto sleep syscmd``.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any, List

from repro.core.compiler.errors import CompileError
from repro.core.lang.actions import (
    AppendAction,
    AttackAction,
    DelayMessage,
    DropMessage,
    DuplicateMessage,
    FuzzMessage,
    GoToState,
    InjectNewMessage,
    ModifyMessage,
    ModifyMessageMetadata,
    PassMessage,
    PopAction,
    PrependAction,
    ReadMessage,
    ReadMessageMetadata,
    ShiftAction,
    Sleep,
    SysCmd,
)
from repro.core.lang.attack import Attack
from repro.core.lang.parser import ConditionParseError, parse_condition, parse_expression
from repro.core.lang.rules import Rule, RuleValidationError
from repro.core.lang.states import AttackState
from repro.core.model.capabilities import Capability, gamma_no_tls, gamma_tls
from repro.core.model.system import SystemModel

KIND = "attack-states"


def parse_attack_states_xml(text: str, system: SystemModel) -> Attack:
    """Parse attack-states XML into a validated :class:`Attack`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise CompileError(KIND, f"not well-formed XML: {exc}") from exc
    if root.tag != "attack":
        raise CompileError(KIND, f"root element must be <attack>, got <{root.tag}>")
    name = root.get("name") or "unnamed-attack"
    start = root.get("start")
    if not start:
        raise CompileError(KIND, "<attack> needs a start attribute")

    deques = {}
    for element in root.iterfind("./deque"):
        deque_name = element.get("name")
        if not deque_name:
            raise CompileError(KIND, "<deque> needs a name attribute")
        deques[deque_name] = [_parse_value(child) for child in element.iterfind("./value")]

    states: List[AttackState] = []
    for state_element in root.iterfind("./state"):
        state_name = state_element.get("name")
        if not state_name:
            raise CompileError(KIND, "<state> needs a name attribute")
        rules = [
            _parse_rule(rule_element, system, state_name)
            for rule_element in state_element.iterfind("./rule")
        ]
        states.append(AttackState(state_name, rules))
    if not states:
        raise CompileError(KIND, "an attack must declare at least one <state>")
    try:
        return Attack(
            name,
            states,
            start=start,
            deque_declarations=deques,
            description=root.get("description", ""),
        )
    except Exception as exc:
        raise CompileError(KIND, str(exc)) from exc


def _parse_value(element: ET.Element) -> Any:
    value_type = element.get("type", "str")
    text = element.text or ""
    if value_type == "int":
        return int(text)
    if value_type == "float":
        return float(text)
    if value_type == "str":
        return text
    raise CompileError(KIND, f"unknown deque value type {value_type!r}")


def _parse_rule(element: ET.Element, system: SystemModel, state_name: str) -> Rule:
    rule_name = element.get("name") or f"{state_name}-rule"
    context = f"state {state_name!r} rule {rule_name!r}"

    connections = _parse_connections(element, system, context)
    gamma = _parse_gamma(element, context)

    condition_element = element.find("./condition")
    condition_text = (
        condition_element.text if condition_element is not None else ""
    ) or ""
    try:
        conditional = parse_condition(condition_text)
    except ConditionParseError as exc:
        raise CompileError(KIND, f"{context}: bad condition: {exc}") from exc

    actions_element = element.find("./actions")
    if actions_element is None:
        raise CompileError(KIND, f"{context}: missing <actions>")
    actions = [
        _parse_action(child, context) for child in actions_element
    ]
    try:
        return Rule(rule_name, connections, gamma, conditional, actions)
    except RuleValidationError as exc:
        raise CompileError(KIND, f"{context}: {exc}") from exc


def _parse_connections(
    element: ET.Element, system: SystemModel, context: str
) -> frozenset:
    container = element.find("./connections")
    if container is None:
        raise CompileError(KIND, f"{context}: missing <connections>")
    if container.find("./all-connections") is not None:
        return frozenset(system.connection_keys())
    connections: set = set()
    for child in container.iterfind("./connection"):
        controller = child.get("controller")
        switch = child.get("switch")
        if not controller or not switch:
            raise CompileError(
                KIND, f"{context}: <connection> needs controller and switch"
            )
        connections.add((controller, switch))
    if not connections:
        raise CompileError(KIND, f"{context}: no connections declared")
    return frozenset(connections)


def _parse_gamma(element: ET.Element, context: str) -> frozenset:
    gamma_element = element.find("./gamma")
    if gamma_element is None:
        return gamma_no_tls()
    explicit = list(gamma_element.iterfind("./capability"))
    if explicit:
        capabilities = set()
        for child in explicit:
            name = child.get("name")
            if not name:
                raise CompileError(KIND, f"{context}: <capability> needs a name")
            try:
                capabilities.add(Capability.from_name(name))
            except ValueError as exc:
                raise CompileError(KIND, f"{context}: {exc}") from exc
        return frozenset(capabilities)
    class_name = (gamma_element.get("class") or "no-tls").lower()
    if class_name in ("no-tls", "notls"):
        return gamma_no_tls()
    if class_name == "tls":
        return gamma_tls()
    raise CompileError(KIND, f"{context}: unknown gamma class {class_name!r}")


def _parse_action(element: ET.Element, context: str) -> AttackAction:
    tag = element.tag.lower()
    try:
        if tag == "pass":
            return PassMessage()
        if tag == "drop":
            return DropMessage()
        if tag == "delay":
            return DelayMessage(_expr_or_float(element, "seconds"))
        if tag == "duplicate":
            return DuplicateMessage(copies=int(element.get("copies", "1")))
        if tag == "read-metadata":
            return ReadMessageMetadata(store_to=element.get("store-to"))
        if tag == "modify-metadata":
            return ModifyMessageMetadata(
                _require_attr(element, "field", context),
                _expr_or_str(element, "value", context),
            )
        if tag == "fuzz":
            return FuzzMessage(
                bit_flips=int(element.get("bit-flips", "8")),
                preserve_header=element.get("preserve-header", "false") == "true",
            )
        if tag == "read":
            return ReadMessage(store_to=element.get("store-to"))
        if tag == "modify":
            return ModifyMessage(
                _require_attr(element, "field", context),
                _expr_or_str(element, "value", context),
            )
        if tag == "inject":
            return InjectNewMessage(
                parse_expression(_require_attr(element, "from", context))
            )
        if tag == "prepend":
            return PrependAction(
                _require_attr(element, "deque", context),
                parse_expression(_require_attr(element, "value", context)),
            )
        if tag == "append":
            return AppendAction(
                _require_attr(element, "deque", context),
                parse_expression(_require_attr(element, "value", context)),
            )
        if tag == "shift":
            return ShiftAction(_require_attr(element, "deque", context))
        if tag == "pop":
            return PopAction(_require_attr(element, "deque", context))
        if tag == "goto":
            return GoToState(_require_attr(element, "state", context))
        if tag == "sleep":
            return Sleep(float(_require_attr(element, "seconds", context)))
        if tag == "syscmd":
            return SysCmd(
                _require_attr(element, "host", context),
                _require_attr(element, "command", context),
            )
    except (ConditionParseError, ValueError) as exc:
        raise CompileError(KIND, f"{context}: bad <{tag}> action: {exc}") from exc
    raise CompileError(KIND, f"{context}: unknown action element <{tag}>")


def _require_attr(element: ET.Element, attr: str, context: str) -> str:
    value = element.get(attr)
    if value is None:
        raise CompileError(
            KIND, f"{context}: <{element.tag}> missing required attribute {attr!r}"
        )
    return value


def _expr_or_float(element: ET.Element, attr: str):
    value = element.get(attr, "0")
    try:
        return float(value)
    except ValueError:
        return parse_expression(value)


def _expr_or_str(element: ET.Element, attr: str, context: str):
    value = _require_attr(element, attr, context)
    if value.startswith("expr:"):
        return parse_expression(value[5:])
    return value
