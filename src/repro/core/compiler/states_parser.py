"""Attack-states XML parser.

Input format::

    <attack name="flow-mod-suppression" start="sigma1">
      <deque name="count"><value type="int">0</value></deque>
      <state name="sigma1">
        <rule name="phi1">
          <connections>
            <all-connections/>          <!-- or explicit <connection .../> -->
          </connections>
          <gamma class="no-tls"/>       <!-- or explicit <capability .../> -->
          <condition>type = FLOW_MOD</condition>
          <actions>
            <drop/>
          </actions>
        </rule>
      </state>
    </attack>

Supported action elements (Section V-D): ``pass drop delay duplicate
read-metadata modify-metadata fuzz read modify inject prepend append shift
pop goto sleep syscmd``.

Parsing is line-aware: every :class:`CompileError` carries the offending
element's tag and source line, and the compiled ``Attack``/``AttackState``/
``Rule`` objects get ``source_line`` attributes for ``repro lint``.
``strict=False`` defers graph-structural validation (undefined GOTOSTATE
targets, unreachable states, ...) to the lint passes instead of raising.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any, List

from repro.core.compiler.errors import CompileError
from repro.core.compiler.source import SourceMap, parse_xml_with_source
from repro.core.lang.actions import (
    AppendAction,
    AttackAction,
    DelayMessage,
    DropMessage,
    DuplicateMessage,
    FuzzMessage,
    GoToState,
    InjectNewMessage,
    ModifyMessage,
    ModifyMessageMetadata,
    PassMessage,
    PopAction,
    PrependAction,
    ReadMessage,
    ReadMessageMetadata,
    ShiftAction,
    Sleep,
    SysCmd,
)
from repro.core.lang.attack import Attack
from repro.core.lang.graph import GraphValidationError
from repro.core.lang.parser import ConditionParseError, parse_condition, parse_expression
from repro.core.lang.rules import Rule, RuleValidationError
from repro.core.lang.states import AttackState
from repro.core.model.capabilities import Capability, gamma_no_tls, gamma_tls
from repro.core.model.system import SystemModel

KIND = "attack-states"


def parse_attack_states_xml(
    text: str, system: SystemModel, strict: bool = True
) -> Attack:
    """Parse attack-states XML into a validated :class:`Attack`.

    ``strict=False`` skips graph-structural validation so ``repro lint``
    can report those problems as diagnostics; rule-level errors (bad
    conditionals, γ not covering usage, ...) always raise.
    """
    root, source = parse_xml_with_source(text, KIND)
    if root.tag != "attack":
        raise CompileError(
            KIND, f"root element must be <attack>, got <{root.tag}>",
            line=source.line(root), tag=root.tag,
        )
    name = root.get("name") or "unnamed-attack"
    start = root.get("start")
    if not start:
        raise CompileError(
            KIND, "<attack> needs a start attribute",
            line=source.line(root), tag="attack",
        )

    deques = {}
    for element in root.iterfind("./deque"):
        deque_name = element.get("name")
        if not deque_name:
            raise CompileError(
                KIND, "<deque> needs a name attribute",
                line=source.line(element), tag="deque",
            )
        deques[deque_name] = [
            _parse_value(child, source) for child in element.iterfind("./value")
        ]

    states: List[AttackState] = []
    for state_element in root.iterfind("./state"):
        state_name = state_element.get("name")
        if not state_name:
            raise CompileError(
                KIND, "<state> needs a name attribute",
                line=source.line(state_element), tag="state",
            )
        rules = [
            _parse_rule(rule_element, system, state_name, source)
            for rule_element in state_element.iterfind("./rule")
        ]
        state = AttackState(state_name, rules)
        state.source_line = source.line(state_element)
        states.append(state)
    if not states and strict:
        raise CompileError(
            KIND, "an attack must declare at least one <state>",
            line=source.line(root), tag="attack",
        )
    try:
        attack = Attack(
            name,
            states,
            start=start,
            deque_declarations=deques,
            description=root.get("description", ""),
            strict=strict,
        )
    except GraphValidationError as exc:
        raise CompileError(KIND, str(exc), line=source.line(root)) from exc
    attack.source_line = source.line(root)
    return attack


def _parse_value(element: ET.Element, source: SourceMap) -> Any:
    value_type = element.get("type", "str")
    text = element.text or ""
    if value_type == "int":
        return int(text)
    if value_type == "float":
        return float(text)
    if value_type == "str":
        return text
    raise CompileError(
        KIND, f"unknown deque value type {value_type!r}",
        line=source.line(element), tag="value",
    )


def _parse_rule(
    element: ET.Element, system: SystemModel, state_name: str, source: SourceMap
) -> Rule:
    rule_name = element.get("name") or f"{state_name}-rule"
    context = f"state {state_name!r} rule {rule_name!r}"
    line = source.line(element)

    connections = _parse_connections(element, system, context, source)
    gamma = _parse_gamma(element, context, source)

    condition_element = element.find("./condition")
    condition_text = (
        condition_element.text if condition_element is not None else ""
    ) or ""
    try:
        conditional = parse_condition(condition_text)
    except ConditionParseError as exc:
        raise CompileError(
            KIND, f"{context}: bad condition: {exc}",
            line=source.line(condition_element) or line, tag="condition",
        ) from exc

    actions_element = element.find("./actions")
    if actions_element is None:
        raise CompileError(
            KIND, f"{context}: missing <actions>", line=line, tag="rule"
        )
    actions = [
        _parse_action(child, context, source) for child in actions_element
    ]
    try:
        rule = Rule(rule_name, connections, gamma, conditional, actions)
    except RuleValidationError as exc:
        raise CompileError(KIND, f"{context}: {exc}", line=line, tag="rule") from exc
    rule.source_line = line
    return rule


def _parse_connections(
    element: ET.Element, system: SystemModel, context: str, source: SourceMap
) -> frozenset:
    container = element.find("./connections")
    if container is None:
        raise CompileError(
            KIND, f"{context}: missing <connections>",
            line=source.line(element), tag="rule",
        )
    if container.find("./all-connections") is not None:
        return frozenset(system.connection_keys())
    connections: set = set()
    for child in container.iterfind("./connection"):
        controller = child.get("controller")
        switch = child.get("switch")
        if not controller or not switch:
            raise CompileError(
                KIND, f"{context}: <connection> needs controller and switch",
                line=source.line(child), tag="connection",
            )
        connections.add((controller, switch))
    if not connections:
        raise CompileError(
            KIND, f"{context}: no connections declared",
            line=source.line(container), tag="connections",
        )
    return frozenset(connections)


def _parse_gamma(element: ET.Element, context: str, source: SourceMap) -> frozenset:
    gamma_element = element.find("./gamma")
    if gamma_element is None:
        return gamma_no_tls()
    explicit = list(gamma_element.iterfind("./capability"))
    if explicit:
        capabilities = set()
        for child in explicit:
            name = child.get("name")
            if not name:
                raise CompileError(
                    KIND, f"{context}: <capability> needs a name",
                    line=source.line(child), tag="capability",
                )
            try:
                capabilities.add(Capability.from_name(name))
            except ValueError as exc:
                raise CompileError(
                    KIND, f"{context}: {exc}",
                    line=source.line(child), tag="capability",
                ) from exc
        return frozenset(capabilities)
    class_name = (gamma_element.get("class") or "no-tls").lower()
    if class_name in ("no-tls", "notls"):
        return gamma_no_tls()
    if class_name == "tls":
        return gamma_tls()
    raise CompileError(
        KIND, f"{context}: unknown gamma class {class_name!r}",
        line=source.line(gamma_element), tag="gamma",
    )


def _parse_action(element: ET.Element, context: str, source: SourceMap) -> AttackAction:
    tag = element.tag.lower()
    line = source.line(element)
    try:
        if tag == "pass":
            return PassMessage()
        if tag == "drop":
            return DropMessage()
        if tag == "delay":
            return DelayMessage(_expr_or_float(element, "seconds"))
        if tag == "duplicate":
            return DuplicateMessage(copies=int(element.get("copies", "1")))
        if tag == "read-metadata":
            return ReadMessageMetadata(store_to=element.get("store-to"))
        if tag == "modify-metadata":
            return ModifyMessageMetadata(
                _require_attr(element, "field", context, source),
                _expr_or_str(element, "value", context, source),
            )
        if tag == "fuzz":
            return FuzzMessage(
                bit_flips=int(element.get("bit-flips", "8")),
                preserve_header=element.get("preserve-header", "false") == "true",
            )
        if tag == "read":
            return ReadMessage(store_to=element.get("store-to"))
        if tag == "modify":
            return ModifyMessage(
                _require_attr(element, "field", context, source),
                _expr_or_str(element, "value", context, source),
            )
        if tag == "inject":
            return InjectNewMessage(
                parse_expression(_require_attr(element, "from", context, source))
            )
        if tag == "prepend":
            return PrependAction(
                _require_attr(element, "deque", context, source),
                parse_expression(_require_attr(element, "value", context, source)),
            )
        if tag == "append":
            return AppendAction(
                _require_attr(element, "deque", context, source),
                parse_expression(_require_attr(element, "value", context, source)),
            )
        if tag == "shift":
            return ShiftAction(_require_attr(element, "deque", context, source))
        if tag == "pop":
            return PopAction(_require_attr(element, "deque", context, source))
        if tag == "goto":
            return GoToState(_require_attr(element, "state", context, source))
        if tag == "sleep":
            return Sleep(float(_require_attr(element, "seconds", context, source)))
        if tag == "syscmd":
            return SysCmd(
                _require_attr(element, "host", context, source),
                _require_attr(element, "command", context, source),
            )
    except (ConditionParseError, ValueError) as exc:
        raise CompileError(
            KIND, f"{context}: bad <{tag}> action: {exc}", line=line, tag=tag
        ) from exc
    raise CompileError(
        KIND, f"{context}: unknown action element <{tag}>", line=line, tag=tag
    )


def _require_attr(
    element: ET.Element, attr: str, context: str, source: SourceMap
) -> str:
    value = element.get(attr)
    if value is None:
        raise CompileError(
            KIND,
            f"{context}: <{element.tag}> missing required attribute {attr!r}",
            line=source.line(element), tag=element.tag,
        )
    return value


def _expr_or_float(element: ET.Element, attr: str):
    value = element.get(attr, "0")
    try:
        return float(value)
    except ValueError:
        return parse_expression(value)


def _expr_or_str(element: ET.Element, attr: str, context: str, source: SourceMap):
    value = _require_attr(element, attr, context, source)
    if value.startswith("expr:"):
        return parse_expression(value[5:])
    return value
