"""Compiler diagnostics."""

from __future__ import annotations


class CompileError(Exception):
    """A user-supplied model/attack file is malformed or inconsistent.

    The message carries the file kind and element context so practitioners
    can locate the problem in their XML.
    """

    def __init__(self, kind: str, detail: str) -> None:
        self.kind = kind
        self.detail = detail
        super().__init__(f"{kind}: {detail}")
