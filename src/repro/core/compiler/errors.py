"""Compiler diagnostics."""

from __future__ import annotations

from typing import Optional


class CompileError(Exception):
    """A user-supplied model/attack file is malformed or inconsistent.

    The message carries the file kind and element context so practitioners
    can locate the problem in their XML; ``line``/``tag`` (when the parser
    could attribute the problem to a source element) point at the
    offending element, and ``repro lint`` reuses them for its diagnostics.
    """

    def __init__(
        self,
        kind: str,
        detail: str,
        line: Optional[int] = None,
        tag: Optional[str] = None,
    ) -> None:
        self.kind = kind
        self.detail = detail
        self.line = line
        self.tag = tag
        location = ""
        if line is not None and tag is not None:
            location = f" (line {line}: <{tag}>)"
        elif line is not None:
            location = f" (line {line})"
        elif tag is not None:
            location = f" (<{tag}>)"
        super().__init__(f"{kind}: {detail}{location}")
