"""Attack-model XML parser: the Γ_NC capability map.

Input format::

    <attackmodel>
      <connection controller="c1" switch="s1" class="no-tls"/>
      <connection controller="c1" switch="s2" class="tls"/>
      <connection controller="c1" switch="s3">
        <capability name="DropMessage"/>
        <capability name="ReadMessageMetadata"/>
      </connection>
    </attackmodel>

``class`` may be ``no-tls`` (Γ), ``tls`` (Γ_TLS), or ``none`` (empty set);
explicit ``<capability>`` children override the class.
"""

from __future__ import annotations

from repro.core.compiler.errors import CompileError
from repro.core.compiler.source import parse_xml_with_source
from repro.core.model.capabilities import (
    Capability,
    CapabilityMap,
    gamma_no_tls,
    gamma_tls,
)
from repro.core.model.system import SystemModel
from repro.core.model.threat import AttackModel

KIND = "attack-model"

_CLASSES = {
    "no-tls": gamma_no_tls,
    "notls": gamma_no_tls,
    "tls": gamma_tls,
    "none": frozenset,
}


def parse_attack_model_xml(text: str, system: SystemModel) -> AttackModel:
    """Parse attack-model XML against a system model."""
    root, source = parse_xml_with_source(text, KIND)
    if root.tag != "attackmodel":
        raise CompileError(
            KIND, f"root element must be <attackmodel>, got <{root.tag}>",
            line=source.line(root), tag=root.tag,
        )

    capability_map = CapabilityMap()
    known = set(system.connection_keys())
    for element in root.iterfind("./connection"):
        line = source.line(element)
        controller = element.get("controller")
        switch = element.get("switch")
        if not controller or not switch:
            raise CompileError(
                KIND, "<connection> needs controller and switch attributes",
                line=line, tag="connection",
            )
        connection = (controller, switch)
        if connection not in known:
            raise CompileError(
                KIND,
                f"connection {connection} is not in the system model's N_C",
                line=line, tag="connection",
            )
        explicit = [
            child for child in element.iterfind("./capability")
        ]
        if explicit:
            capabilities = set()
            for child in explicit:
                name = child.get("name")
                if not name:
                    raise CompileError(
                        KIND, "<capability> needs a name attribute",
                        line=source.line(child), tag="capability",
                    )
                try:
                    capabilities.add(Capability.from_name(name))
                except ValueError as exc:
                    raise CompileError(
                        KIND, str(exc),
                        line=source.line(child), tag="capability",
                    ) from exc
            capability_map.assign(connection, capabilities)
        else:
            class_name = (element.get("class") or "no-tls").lower()
            maker = _CLASSES.get(class_name)
            if maker is None:
                raise CompileError(
                    KIND,
                    f"unknown capability class {class_name!r}; "
                    f"expected one of {sorted(_CLASSES)}",
                    line=line, tag="connection",
                )
            capability_map.assign(connection, maker())
    return AttackModel(system, capability_map)
