"""Ping monitor: drives and aggregates ICMP latency/loss trials.

Models the paper's use of the ``ping`` utility: a series of 1-second
trials between two hosts, reporting per-trial RTTs, loss, and summary
statistics (Fig. 11b's latency metric).
"""

from __future__ import annotations

from typing import List, Optional

from repro.dataplane.host import Host, PingResult
from repro.core.monitors.base import RecordingMonitor, subscribe_signal


class PingMonitor(RecordingMonitor):
    """Runs ping series between host pairs and collects the results."""

    def __init__(self, name: str = "ping") -> None:
        super().__init__(name=name)
        self.results: List[PingResult] = []

    def start_series(
        self,
        source: Host,
        target_ip,
        count: int,
        interval: float = 1.0,
        timeout: float = 1.0,
        label: str = "",
    ):
        """Kick off a ping series; the result lands in :attr:`results`."""
        run = source.ping(target_ip, count=count, interval=interval, timeout=timeout)
        started = source.engine.now

        def on_done(result: PingResult, monitor=self) -> None:
            monitor.results.append(result)
            monitor.record(
                source.engine.now,
                "ping_series_done",
                {
                    "label": label,
                    "source": source.name,
                    "target": str(target_ip),
                    "started": started,
                    "sent": result.sent,
                    "received": result.received,
                    "loss_rate": result.loss_rate,
                    "median_rtt": result.median_rtt,
                },
            )

        subscribe_signal(run.done, on_done)
        return run

    # -- Aggregates --------------------------------------------------------- #

    def all_rtts(self) -> List[float]:
        rtts: List[float] = []
        for result in self.results:
            rtts.extend(result.successful_rtts)
        return rtts

    def overall_loss_rate(self) -> float:
        """Loss across every series; 0.0 (not an error) with zero pings sent.

        Experiments that end before a probe window opens must still be
        able to aggregate their monitors.
        """
        sent = sum(result.sent for result in self.results)
        received = sum(result.received for result in self.results)
        return 1.0 - received / sent if sent else 0.0

    def median_rtt(self) -> Optional[float]:
        """Median of all successful RTTs; None when there are none."""
        rtts = sorted(self.all_rtts())
        if not rtts:
            return None
        mid = len(rtts) // 2
        if len(rtts) % 2:
            return rtts[mid]
        return (rtts[mid - 1] + rtts[mid]) / 2
