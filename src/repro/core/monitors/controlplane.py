"""Control-plane monitor: logs interposed messages and rule notifications.

The paper's runtime injector "logged all control plane connections, all
messages sent across such connections, and rule notifications (when
actuated)" (Section VII-A2).  This monitor plugs into the runtime injector
as an observer and provides the counters the experiments report (e.g. the
control-plane traffic amplification of the suppression attack).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.lang.actions import OutgoingMessage
from repro.core.lang.properties import InterposedMessage
from repro.core.monitors.base import RecordingMonitor


class ControlPlaneMonitor(RecordingMonitor):
    """Observer for :class:`~repro.core.injector.runtime.RuntimeInjector`."""

    def __init__(self, name: str = "control-plane", capacity: Optional[int] = None) -> None:
        super().__init__(name=name, capacity=capacity)
        self.message_counts: Dict[str, int] = {}
        self.per_connection: Dict[Tuple[str, str], int] = {}
        self.dropped_by_type: Dict[str, int] = {}
        self.rule_notifications: List[Tuple[float, str, str]] = []
        self.state_transitions: List[Tuple[float, str, str]] = []

    # -- RuntimeInjector observer hooks ---------------------------------- #

    def message_interposed(
        self,
        message: InterposedMessage,
        outgoing: List[OutgoingMessage],
        now: float,
    ) -> None:
        # The header peek is enough to classify the message; reading
        # message_type_name here would force a full body decode on every
        # interposed message and defeat the proxy's lazy-decode fast lane.
        type_name = message.coarse_type_name or "UNDECODABLE"
        self.message_counts[type_name] = self.message_counts.get(type_name, 0) + 1
        key = message.connection
        self.per_connection[key] = self.per_connection.get(key, 0) + 1
        survived = any(entry.message is message for entry in outgoing)
        if not survived:
            self.dropped_by_type[type_name] = self.dropped_by_type.get(type_name, 0) + 1
        self.record(
            now,
            "message",
            {
                "connection": key,
                "direction": message.direction.value,
                "type": type_name,
                "length": len(message.raw),
                "forwarded": survived,
                "injected_count": sum(1 for entry in outgoing if entry.injected),
            },
        )

    # -- ExecutorObserver hooks ------------------------------------------ #

    def rule_fired(self, state: str, rule_name: str, message: InterposedMessage) -> None:
        self.rule_notifications.append((message.timestamp, state, rule_name))
        self.record(
            message.timestamp,
            "rule_fired",
            {"state": state, "rule": rule_name, "message_id": message.msg_id},
        )

    def state_changed(self, previous: str, current: str, at: float) -> None:
        self.state_transitions.append((at, previous, current))
        self.record(at, "state_changed", {"from": previous, "to": current})

    def action_record(self, kind: str, data: dict, at: float) -> None:
        self.record(at, f"action:{kind}", data)

    # -- Queries ----------------------------------------------------------- #

    def total_messages(self) -> int:
        return sum(self.message_counts.values())

    def dropped_total(self) -> int:
        return sum(self.dropped_by_type.values())

    def count_of(self, type_name: str) -> int:
        return self.message_counts.get(type_name, 0)

    def fired_rules(self) -> List[str]:
        return [rule for (_t, _s, rule) in self.rule_notifications]

    def visited_states(self) -> List[str]:
        states = []
        for (_t, previous, current) in self.state_transitions:
            if not states:
                states.append(previous)
            states.append(current)
        return states
