"""Iperf monitor: drives and aggregates TCP throughput trials.

Models the paper's use of ``iperf``: repeated client/server transfer
trials whose achieved throughput is the Fig. 11a metric.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dataplane.host import Host, IperfResult
from repro.core.monitors.base import RecordingMonitor, subscribe_signal


class IperfMonitor(RecordingMonitor):
    """Runs iperf-style transfers and collects :class:`IperfResult` records."""

    def __init__(self, name: str = "iperf") -> None:
        super().__init__(name=name)
        self.results: List[IperfResult] = []

    def start_trial(
        self,
        client: Host,
        server: Host,
        duration: float = 10.0,
        port: int = 5001,
        label: str = "",
    ):
        """Start the server then the client; collect the client's result."""
        server.start_iperf_server(port)
        run = client.run_iperf_client(server.ip, port=port, duration=duration)
        started = client.engine.now

        def on_done(result: IperfResult, monitor=self) -> None:
            monitor.results.append(result)
            monitor.record(
                client.engine.now,
                "iperf_trial_done",
                {
                    "label": label,
                    "client": client.name,
                    "server": server.name,
                    "started": started,
                    "bytes": result.bytes_acked,
                    "throughput_mbps": result.throughput_mbps,
                    "connected": result.connected,
                    "retransmits": result.retransmits,
                },
            )

        subscribe_signal(run.done, on_done)
        return run

    # -- Aggregates --------------------------------------------------------- #

    def throughputs_mbps(self) -> List[float]:
        return [result.throughput_mbps for result in self.results]

    def mean_throughput_mbps(self) -> Optional[float]:
        """Mean over completed trials; None (not an error) with zero trials."""
        values = self.throughputs_mbps()
        return sum(values) / len(values) if values else None

    def median_throughput_mbps(self) -> Optional[float]:
        """Median over completed trials; None with zero trials."""
        values = sorted(self.throughputs_mbps())
        if not values:
            return None
        mid = len(values) // 2
        if len(values) % 2:
            return values[mid]
        return (values[mid - 1] + values[mid]) / 2

    def connect_failures(self) -> int:
        return sum(1 for result in self.results if not result.connected)
