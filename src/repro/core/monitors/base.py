"""Monitor primitives: timestamped event records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass(frozen=True)
class MonitorEvent:
    """One recorded event."""

    time: float
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"<Event t={self.time:.6f} {self.kind} {self.data}>"


def subscribe_signal(signal, callback: Callable[[Any], None]) -> None:
    """Adapt a :class:`~repro.sim.process.Signal` to a plain callback."""

    class _Waiter:
        def _resume(self, value):
            callback(value)

    signal.wait(_Waiter())


class RecordingMonitor:
    """A monitor that accumulates :class:`MonitorEvent` records."""

    def __init__(self, name: str = "monitor", capacity: Optional[int] = None) -> None:
        self.name = name
        self.capacity = capacity
        self.events: List[MonitorEvent] = []
        self.dropped_events = 0
        self.tracer = None

    def record(self, time: float, kind: str, data: Optional[Dict[str, Any]] = None) -> None:
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped_events += 1
            return
        payload = dict(data or {})
        self.events.append(MonitorEvent(time, kind, payload))
        if self.tracer is not None:
            self.tracer.emit("monitor", t=time, monitor=self.name,
                             sample=kind, data=payload)

    def events_of(self, kind: str) -> List[MonitorEvent]:
        return [event for event in self.events if event.kind == kind]

    def count(self, kind: str) -> int:
        return sum(1 for event in self.events if event.kind == kind)

    def between(self, start: float, end: float) -> List[MonitorEvent]:
        return [event for event in self.events if start <= event.time <= end]

    def clear(self) -> None:
        self.events.clear()
        self.dropped_events = 0

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"<RecordingMonitor {self.name} events={len(self.events)}>"
