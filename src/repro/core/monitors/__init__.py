"""Monitors (Section VI-B3): record control- and data-plane events.

"Practitioners can strategically place monitors (e.g., iperf or tcpdump)
throughout the network to actuate, record, or later analyze events."
"""

from repro.core.monitors.base import MonitorEvent, RecordingMonitor
from repro.core.monitors.capture import LinkCapture
from repro.core.monitors.controlplane import ControlPlaneMonitor
from repro.core.monitors.iperf import IperfMonitor
from repro.core.monitors.ping import PingMonitor

__all__ = [
    "ControlPlaneMonitor",
    "IperfMonitor",
    "LinkCapture",
    "MonitorEvent",
    "PingMonitor",
    "RecordingMonitor",
]
