"""Data-plane capture: a tcpdump-like tap on a simulated link.

Wraps both delivery directions of a :class:`~repro.dataplane.link.DataLink`
and records every frame with a timestamp and protocol label.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.dataplane.link import DataLink
from repro.netlib.packet import decode_ethernet, payload_protocol_name
from repro.core.monitors.base import RecordingMonitor
from repro.sim.engine import SimulationEngine


class LinkCapture(RecordingMonitor):
    """Records frames crossing one data-plane link."""

    def __init__(
        self,
        engine: SimulationEngine,
        link: DataLink,
        name: Optional[str] = None,
        capacity: Optional[int] = 100_000,
    ) -> None:
        super().__init__(name=name or f"capture:{link.name}", capacity=capacity)
        self.engine = engine
        self.link = link
        self.frames_by_protocol: Dict[str, int] = {}
        self.bytes_total = 0
        self._wrap(link)

    def _wrap(self, link: DataLink) -> None:
        original_a = link._b_to_a.deliver
        original_b = link._a_to_b.deliver

        def tap_a(data: bytes) -> None:
            self._capture(data, "b->a")
            if original_a is not None:
                original_a(data)

        def tap_b(data: bytes) -> None:
            self._capture(data, "a->b")
            if original_b is not None:
                original_b(data)

        link._b_to_a.deliver = tap_a
        link._a_to_b.deliver = tap_b

    def _capture(self, data: bytes, direction: str) -> None:
        try:
            protocol = payload_protocol_name(decode_ethernet(data))
        except Exception:
            protocol = "undecodable"
        self.frames_by_protocol[protocol] = self.frames_by_protocol.get(protocol, 0) + 1
        self.bytes_total += len(data)
        self.record(
            self.engine.now,
            "frame",
            {"direction": direction, "protocol": protocol, "length": len(data)},
        )

    def frames_of(self, protocol: str) -> int:
        return self.frames_by_protocol.get(protocol, 0)
