"""Flow-statistics collection service.

Polls every connected switch's flow table with OFPST_FLOW requests on a
fixed period and keeps the latest per-switch snapshot — the "traffic
statistics associated with instantiated forwarding rules" query path of
the paper's system model.  Because the replies traverse the interposed
control plane, statistics-tampering attacks (MODIFYMESSAGE on STATS_REPLY
payloads, or DROPMESSAGE starving the monitoring loop) act on this
service's view.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.openflow.constants import StatsType
from repro.openflow.messages import StatsReply
from repro.openflow.stats import (
    FlowStatsEntry,
    flow_stats_request,
    parse_flow_stats_reply,
)
from repro.controllers.apps import ControllerApp


class StatsCollectorApp(ControllerApp):
    """Periodic OFPST_FLOW polling with per-datapath snapshots."""

    POLL_INTERVAL = 5.0

    def __init__(self, poll_interval: float = POLL_INTERVAL) -> None:
        self.poll_interval = poll_interval
        #: datapath id -> latest decoded flow-stats records
        self.snapshots: Dict[int, List[FlowStatsEntry]] = {}
        #: datapath id -> simulated time of the latest snapshot
        self.snapshot_times: Dict[int, float] = {}
        self.polls_sent = 0
        self.replies_received = 0
        self.decode_failures = 0

    def switch_ready(self, controller, session) -> None:
        self._poll(controller, session)

    def _poll(self, controller, session) -> None:
        if session.state.value == "closed":
            return
        self.polls_sent += 1
        session.send(flow_stats_request())
        controller.engine.schedule(self.poll_interval, self._poll, controller, session)

    def stats_reply(self, controller, session, message: StatsReply) -> None:
        if message.stats_type != StatsType.FLOW or session.datapath_id is None:
            return
        try:
            entries = parse_flow_stats_reply(message)
        except Exception:
            self.decode_failures += 1
            return
        self.replies_received += 1
        self.snapshots[session.datapath_id] = entries
        self.snapshot_times[session.datapath_id] = controller.engine.now

    def switch_down(self, controller, session) -> None:
        if session.datapath_id is not None:
            self.snapshots.pop(session.datapath_id, None)
            self.snapshot_times.pop(session.datapath_id, None)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def total_packets(self, datapath_id: int) -> int:
        """Sum of packet counters in the latest snapshot for a switch."""
        return sum(e.packet_count for e in self.snapshots.get(datapath_id, []))

    def total_bytes(self, datapath_id: int) -> int:
        return sum(e.byte_count for e in self.snapshots.get(datapath_id, []))

    def flow_count(self, datapath_id: int) -> int:
        return len(self.snapshots.get(datapath_id, []))

    def staleness(self, datapath_id: int, now: float) -> Optional[float]:
        """Seconds since the last snapshot (None if never polled)."""
        taken = self.snapshot_times.get(datapath_id)
        return None if taken is None else now - taken
