"""POX v0.2.0 behavioural model (``forwarding.l2_learning`` module).

Documented behaviours reproduced here:

* flow-mod matches built with ``ofp_match.from_packet`` — the full
  twelve-tuple;
* ``idle_timeout=10``, ``hard_timeout=30`` (the l2_learning defaults);
* the flow mod itself carries ``buffer_id`` — POX releases the buffered
  packet *through the flow mod*.  Under the flow-modification-suppression
  attack the dropped FLOW_MOD therefore takes the data packet with it:
  this is the denial-of-service case (the asterisk) in Fig. 11;
* single-threaded CPython runtime — the slowest service time of the three.
"""

from __future__ import annotations

from typing import List, Optional

from repro.controllers.apps import ControllerApp, LearningSwitchApp, LearningSwitchBehavior
from repro.controllers.base import Controller
from repro.sim.engine import SimulationEngine

POX_BEHAVIOR = LearningSwitchBehavior(
    name="pox-l2-learning",
    match_granularity="full",
    idle_timeout=10,
    hard_timeout=30,
    priority=1,
    release_via="flow_mod",
)


class PoxController(Controller):
    """POX v0.2.0 running ``forwarding.l2_learning``."""

    SERVICE_TIME = 0.0012

    def __init__(
        self,
        engine: SimulationEngine,
        name: str = "pox",
        extra_apps: Optional[List[ControllerApp]] = None,
        behavior: Optional[LearningSwitchBehavior] = None,
    ) -> None:
        behavior = behavior or POX_BEHAVIOR
        apps: List[ControllerApp] = list(extra_apps or [])
        apps.append(LearningSwitchApp(behavior))
        super().__init__(engine, name=name, apps=apps)
        self.behavior = behavior
