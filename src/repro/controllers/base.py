"""Controller core: session management, handshake, dispatch, liveness.

A :class:`Controller` is a :class:`~repro.dataplane.control.ControlEndpoint`
that accepts switch connections (possibly through the ATTAIN proxy), runs
the OpenFlow 1.0 handshake, and dispatches asynchronous messages to an
application pipeline.  Message handling is serialized through a single
service queue with a per-controller service time — the model of the
controllers' single-threaded packet-in processing that shapes throughput
under the flow-modification-suppression attack.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional

from repro.dataplane.control import ControlChannel
from repro.netlib.packet import decode_ethernet
from repro.openflow.connection import MessageFramer
from repro.openflow.match import extract_packet_fields
from repro.openflow.messages import (
    EchoReply,
    EchoRequest,
    ErrorMessage,
    FeaturesReply,
    FeaturesRequest,
    FlowRemoved,
    Hello,
    OpenFlowDecodeError,
    OpenFlowMessage,
    PacketIn,
    PortStatus,
    SetConfig,
    StatsReply,
)
from repro.sim.engine import SimulationEngine


class SessionState(enum.Enum):
    AWAIT_HELLO = "await-hello"
    AWAIT_FEATURES = "await-features"
    READY = "ready"
    CLOSED = "closed"


class SwitchSession:
    """Controller-side state for one switch connection."""

    def __init__(self, controller: "Controller", channel: ControlChannel) -> None:
        self.controller = controller
        self.channel = channel
        self.framer = MessageFramer()
        self.state = SessionState.AWAIT_HELLO
        self.datapath_id: Optional[int] = None
        self.ports: List[int] = []
        self.last_received = controller.engine.now
        self.echo_outstanding = False
        self.messages_received = 0
        self.messages_sent = 0
        #: Per-session scratch space for applications (MAC tables etc.).
        self.app_state: Dict[str, Any] = {}

    def send(self, message: OpenFlowMessage) -> None:
        if self.state is SessionState.CLOSED or not self.channel.open:
            return
        self.messages_sent += 1
        self.controller.stats["messages_sent"] += 1
        self.channel.send(message.pack())

    def close(self) -> None:
        """Tear the session down (controller-initiated disconnect)."""
        self.controller._drop_session(self)

    def __repr__(self) -> str:
        dpid = f"0x{self.datapath_id:x}" if self.datapath_id is not None else "?"
        return f"<SwitchSession dpid={dpid} {self.state.value}>"


class Controller:
    """An OpenFlow 1.0 controller with an application pipeline."""

    #: Per-message service time; subclasses model controller runtimes.
    SERVICE_TIME = 0.0005
    ECHO_INTERVAL = 5.0
    ECHO_TIMEOUT = 15.0
    LIVENESS_TICK = 1.0
    MISS_SEND_LEN = 128

    def __init__(
        self,
        engine: SimulationEngine,
        name: str = "controller",
        apps: Optional[List["ControllerApp"]] = None,  # noqa: F821
    ) -> None:
        self.engine = engine
        self.name = name
        self.apps = list(apps or [])
        self.sessions: Dict[ControlChannel, SwitchSession] = {}
        self._busy_until = 0.0
        self._started_liveness = False
        self.stats: Dict[str, int] = {
            "connections_accepted": 0,
            "connections_lost": 0,
            "messages_received": 0,
            "messages_sent": 0,
            "packet_ins_handled": 0,
            "flow_mods_sent": 0,
            "packet_outs_sent": 0,
            "echo_requests_sent": 0,
            "decode_errors": 0,
        }

    def add_app(self, app: "ControllerApp") -> None:  # noqa: F821
        self.apps.append(app)

    # ------------------------------------------------------------------ #
    # ControlEndpoint interface
    # ------------------------------------------------------------------ #

    def channel_opened(self, channel: ControlChannel) -> None:
        session = SwitchSession(self, channel)
        self.sessions[channel] = session
        self.stats["connections_accepted"] += 1
        session.send(Hello())
        if not self._started_liveness:
            self._started_liveness = True
            self.engine.schedule(self.LIVENESS_TICK, self._liveness_tick)

    def bytes_received(self, channel: ControlChannel, data: bytes) -> None:
        session = self.sessions.get(channel)
        if session is None or session.state is SessionState.CLOSED:
            return
        session.last_received = self.engine.now
        session.echo_outstanding = False
        try:
            messages = session.framer.feed(data)
        except OpenFlowDecodeError:
            self.stats["decode_errors"] += 1
            self._drop_session(session)
            return
        for message in messages:
            self._enqueue(session, message)

    def channel_closed(self, channel: ControlChannel) -> None:
        session = self.sessions.get(channel)
        if session is not None:
            self._drop_session(session)

    def _drop_session(self, session: SwitchSession) -> None:
        """Common teardown for peer-closed, garbage-stream, liveness, and
        controller-initiated disconnects; notifies apps exactly once."""
        was_ready = session.state is SessionState.READY
        if session.state is not SessionState.CLOSED:
            session.state = SessionState.CLOSED
            session.channel.close()
        if self.sessions.pop(session.channel, None) is None:
            return  # already finalized
        self.stats["connections_lost"] += 1
        if was_ready:
            for app in self.apps:
                app.switch_down(self, session)

    # ------------------------------------------------------------------ #
    # Serialized message processing
    # ------------------------------------------------------------------ #

    def _enqueue(self, session: SwitchSession, message: OpenFlowMessage) -> None:
        """Model single-threaded processing with a fixed service time."""
        now = self.engine.now
        self._busy_until = max(self._busy_until, now) + self.SERVICE_TIME
        self.engine.schedule_at(self._busy_until, self._process, session, message)

    def _process(self, session: SwitchSession, message: OpenFlowMessage) -> None:
        if session.state is SessionState.CLOSED:
            return
        self.stats["messages_received"] += 1
        if isinstance(message, Hello):
            if session.state is SessionState.AWAIT_HELLO:
                session.state = SessionState.AWAIT_FEATURES
                session.send(FeaturesRequest())
            return
        if isinstance(message, FeaturesReply):
            if session.state is SessionState.AWAIT_FEATURES:
                session.state = SessionState.READY
                session.datapath_id = message.datapath_id
                session.ports = [port.port_no for port in message.ports]
                session.send(SetConfig(miss_send_len=self.MISS_SEND_LEN))
                for app in self.apps:
                    app.switch_ready(self, session)
            return
        if isinstance(message, EchoRequest):
            session.send(EchoReply.for_request(message))
            return
        if isinstance(message, EchoReply):
            return
        if isinstance(message, ErrorMessage):
            for app in self.apps:
                app.error_received(self, session, message)
            return
        if session.state is not SessionState.READY:
            return
        if isinstance(message, PacketIn):
            self.stats["packet_ins_handled"] += 1
            self._dispatch_packet_in(session, message)
            return
        if isinstance(message, FlowRemoved):
            for app in self.apps:
                app.flow_removed(self, session, message)
            return
        if isinstance(message, PortStatus):
            for app in self.apps:
                app.port_status(self, session, message)
            return
        if isinstance(message, StatsReply):
            for app in self.apps:
                app.stats_reply(self, session, message)
            return

    def _dispatch_packet_in(self, session: SwitchSession, message: PacketIn) -> None:
        try:
            decoded = decode_ethernet(message.data)
            fields = extract_packet_fields(message.data, message.in_port)
        except Exception:
            return  # undecodable packet-in (e.g. truncated below Ethernet)
        for app in self.apps:
            handled = app.packet_in(self, session, message, fields, decoded)
            if handled:
                break

    # ------------------------------------------------------------------ #
    # Liveness
    # ------------------------------------------------------------------ #

    def _liveness_tick(self) -> None:
        self.engine.schedule(self.LIVENESS_TICK, self._liveness_tick)
        now = self.engine.now
        for session in list(self.sessions.values()):
            if session.state is SessionState.CLOSED:
                continue
            silence = now - session.last_received
            if silence >= self.ECHO_TIMEOUT:
                # The connection-interruption attack black-holes the
                # channel; the controller gives the switch up here.
                self._drop_session(session)
            elif silence >= self.ECHO_INTERVAL and not session.echo_outstanding:
                session.echo_outstanding = True
                self.stats["echo_requests_sent"] += 1
                session.send(EchoRequest(payload=b"ctl-probe"))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def ready_sessions(self) -> List[SwitchSession]:
        return [s for s in self.sessions.values() if s.state is SessionState.READY]

    def session_for_dpid(self, datapath_id: int) -> Optional[SwitchSession]:
        for session in self.sessions.values():
            if session.datapath_id == datapath_id:
                return session
        return None

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} sessions={len(self.sessions)}>"
