"""Controller applications: pipeline interface and the learning switch.

``LearningSwitchBehavior`` captures the per-controller implementation
differences (match construction, timeouts, buffered-packet release policy)
that the paper's evaluation shows to matter; the three controller modules
instantiate it with their documented parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.netlib.addresses import MacAddress
from repro.netlib.packet import DecodedPacket
from repro.openflow.actions import OutputAction
from repro.openflow.constants import OFP_NO_BUFFER, Port
from repro.openflow.match import Match
from repro.openflow.messages import (
    ErrorMessage,
    FlowMod,
    FlowRemoved,
    PacketIn,
    PacketOut,
    PortStatus,
)


class ControllerApp:
    """Base class for controller applications (no-op hooks)."""

    def switch_ready(self, controller, session) -> None:
        """A switch finished its handshake."""

    def switch_down(self, controller, session) -> None:
        """A switch connection was lost."""

    def packet_in(self, controller, session, message: PacketIn,
                  fields: Dict[str, Any], decoded: DecodedPacket) -> bool:
        """Handle a PACKET_IN; return True to stop the pipeline."""
        return False

    def flow_removed(self, controller, session, message: FlowRemoved) -> None:
        """A flow entry expired on a switch."""

    def port_status(self, controller, session, message: PortStatus) -> None:
        """A switch port changed state."""

    def error_received(self, controller, session, message: ErrorMessage) -> None:
        """The switch reported an error."""

    def stats_reply(self, controller, session, message) -> None:
        """The switch answered a statistics request."""


@dataclass(frozen=True)
class LearningSwitchBehavior:
    """The controller-specific knobs of a learning-switch implementation.

    ``match_granularity`` selects the fields the app puts in its flow-mod
    matches:

    * ``"full"`` — the exact twelve-tuple extracted from the packet
      (Floodlight Forwarding, POX l2_learning);
    * ``"l2"`` — only ``in_port``, ``dl_src``, ``dl_dst`` (Ryu
      simple_switch) — the difference behind the Table II Ryu anomaly.

    ``release_via`` selects how the buffered packet is released:

    * ``"flow_mod"`` — the FLOW_MOD itself carries the buffer id (POX);
      when the suppression attack drops the FLOW_MOD, the packet dies with
      it — the Fig. 11 denial-of-service case;
    * ``"packet_out"`` — a separate PACKET_OUT carries the buffer id
      (Floodlight, Ryu); suppression then degrades but does not stop
      traffic.
    """

    name: str
    match_granularity: str = "full"   # "full" | "l2"
    idle_timeout: int = 5
    hard_timeout: int = 0
    priority: int = 1
    release_via: str = "packet_out"   # "flow_mod" | "packet_out"

    def __post_init__(self) -> None:
        if self.match_granularity not in ("full", "l2"):
            raise ValueError(f"bad match_granularity {self.match_granularity!r}")
        if self.release_via not in ("flow_mod", "packet_out"):
            raise ValueError(f"bad release_via {self.release_via!r}")

    def build_match(self, fields: Dict[str, Any]) -> Match:
        """Construct this controller's flow-mod match for a packet."""
        if self.match_granularity == "l2":
            return Match(
                in_port=fields["in_port"],
                dl_src=fields["dl_src"],
                dl_dst=fields["dl_dst"],
            )
        return Match(
            in_port=fields["in_port"],
            dl_src=fields["dl_src"],
            dl_dst=fields["dl_dst"],
            dl_vlan=fields["dl_vlan"],
            dl_vlan_pcp=fields["dl_vlan_pcp"],
            dl_type=fields["dl_type"],
            nw_tos=fields["nw_tos"],
            nw_proto=fields["nw_proto"],
            nw_src=fields["nw_src"],
            nw_dst=fields["nw_dst"],
            tp_src=fields["tp_src"],
            tp_dst=fields["tp_dst"],
        )


class LearningSwitchApp(ControllerApp):
    """A per-switch MAC-learning forwarding application.

    Implements the common algorithm of Floodlight's ``Forwarding``, POX's
    ``forwarding.l2_learning``, and Ryu's ``simple_switch``: learn the
    source MAC's port; if the destination is known, install a flow and
    forward; otherwise flood.
    """

    STATE_KEY = "learning.mac_table"

    def __init__(self, behavior: LearningSwitchBehavior) -> None:
        self.behavior = behavior
        self.flows_installed = 0
        self.floods = 0

    def _mac_table(self, session) -> Dict[MacAddress, int]:
        return session.app_state.setdefault(self.STATE_KEY, {})

    def packet_in(self, controller, session, message: PacketIn,
                  fields: Dict[str, Any], decoded: DecodedPacket) -> bool:
        table = self._mac_table(session)
        src: MacAddress = fields["dl_src"]
        dst: MacAddress = fields["dl_dst"]
        in_port: int = fields["in_port"]
        table[src] = in_port

        out_port: Optional[int] = table.get(dst)
        if dst.is_broadcast or dst.is_multicast or out_port is None:
            self._flood(controller, session, message)
            return True
        if out_port == in_port:
            return True  # destination is behind the ingress port: drop

        behavior = self.behavior
        actions = [OutputAction(out_port)]
        flow_buffer = (
            message.buffer_id if behavior.release_via == "flow_mod" else OFP_NO_BUFFER
        )
        controller.stats["flow_mods_sent"] += 1
        self.flows_installed += 1
        session.send(
            FlowMod(
                behavior.build_match(fields),
                idle_timeout=behavior.idle_timeout,
                hard_timeout=behavior.hard_timeout,
                priority=behavior.priority,
                buffer_id=flow_buffer,
                actions=actions,
            )
        )
        if behavior.release_via == "packet_out":
            controller.stats["packet_outs_sent"] += 1
            if message.buffer_id != OFP_NO_BUFFER:
                session.send(
                    PacketOut(
                        buffer_id=message.buffer_id,
                        in_port=in_port,
                        actions=actions,
                    )
                )
            else:
                session.send(
                    PacketOut(
                        in_port=in_port,
                        actions=actions,
                        data=message.data,
                    )
                )
        return True

    def _flood(self, controller, session, message: PacketIn) -> None:
        self.floods += 1
        controller.stats["packet_outs_sent"] += 1
        actions = [OutputAction(Port.FLOOD)]
        if message.buffer_id != OFP_NO_BUFFER:
            session.send(
                PacketOut(buffer_id=message.buffer_id, in_port=message.in_port,
                          actions=actions)
            )
        else:
            session.send(
                PacketOut(in_port=message.in_port, actions=actions, data=message.data)
            )

    def switch_down(self, controller, session) -> None:
        session.app_state.pop(self.STATE_KEY, None)


class FabricRoutingApp(ControllerApp):
    """Topology-aware unicast routing for generated fabrics.

    MAC learning floods unknown destinations, and on a multi-path fabric
    (fat-tree, leaf-spine) flooding is a broadcast storm: the topology has
    cycles and no spanning-tree protocol is modelled.  This app is the
    idealized alternative every real controller ships in some form
    (Floodlight's topology/forwarding, ONOS intents): next-hop ports are
    precomputed from the fabric graph, unknown or broadcast destinations
    are dropped, and nothing is ever flooded.

    ``routes`` maps ``datapath_id -> {dst MacAddress -> out_port}``.  The
    installed flows use the same behavior knobs (match granularity,
    timeouts, buffered-packet release) as the learning switch, so attack
    semantics — which control messages matter, what a dropped FLOW_MOD
    costs — carry over from the paper's evaluation unchanged.
    """

    def __init__(
        self,
        routes: Dict[int, Dict[MacAddress, int]],
        behavior: LearningSwitchBehavior,
    ) -> None:
        self.routes = routes
        self.behavior = behavior
        self.flows_installed = 0
        self.dropped_unroutable = 0

    def packet_in(self, controller, session, message: PacketIn,
                  fields: Dict[str, Any], decoded: DecodedPacket) -> bool:
        dst: MacAddress = fields["dl_dst"]
        if dst.is_broadcast or dst.is_multicast:
            self.dropped_unroutable += 1
            return True
        table = self.routes.get(session.datapath_id)
        out_port = None if table is None else table.get(dst)
        if out_port is None:
            self.dropped_unroutable += 1
            return True
        in_port: int = fields["in_port"]
        if out_port == in_port:
            return True  # destination is behind the ingress port: drop

        behavior = self.behavior
        actions = [OutputAction(out_port)]
        flow_buffer = (
            message.buffer_id if behavior.release_via == "flow_mod" else OFP_NO_BUFFER
        )
        controller.stats["flow_mods_sent"] += 1
        self.flows_installed += 1
        session.send(
            FlowMod(
                behavior.build_match(fields),
                idle_timeout=behavior.idle_timeout,
                hard_timeout=behavior.hard_timeout,
                priority=behavior.priority,
                buffer_id=flow_buffer,
                actions=actions,
            )
        )
        if behavior.release_via == "packet_out":
            controller.stats["packet_outs_sent"] += 1
            if message.buffer_id != OFP_NO_BUFFER:
                session.send(
                    PacketOut(
                        buffer_id=message.buffer_id,
                        in_port=in_port,
                        actions=actions,
                    )
                )
            else:
                session.send(
                    PacketOut(
                        in_port=in_port,
                        actions=actions,
                        data=message.data,
                    )
                )
        return True
