"""Floodlight v1.2 behavioural model (``Forwarding`` module).

Documented behaviours reproduced here:

* flow-mod matches built from the full packet twelve-tuple;
* ``FLOWMOD_DEFAULT_IDLE_TIMEOUT = 5`` seconds, no hard timeout;
* the packet that triggered the PACKET_IN is pushed back with a separate
  PACKET_OUT (``pushPacket``), so the flow mod itself never carries the
  buffer id;
* Java/Netty runtime — the fastest per-message service time of the three.
"""

from __future__ import annotations

from typing import List, Optional

from repro.controllers.apps import ControllerApp, LearningSwitchApp, LearningSwitchBehavior
from repro.controllers.base import Controller
from repro.sim.engine import SimulationEngine

FLOODLIGHT_BEHAVIOR = LearningSwitchBehavior(
    name="floodlight-forwarding",
    match_granularity="full",
    idle_timeout=5,
    hard_timeout=0,
    priority=1,
    release_via="packet_out",
)


class FloodlightController(Controller):
    """Floodlight v1.2 running the ``Forwarding`` learning switch."""

    SERVICE_TIME = 0.0003

    def __init__(
        self,
        engine: SimulationEngine,
        name: str = "floodlight",
        extra_apps: Optional[List[ControllerApp]] = None,
        behavior: Optional[LearningSwitchBehavior] = None,
    ) -> None:
        behavior = behavior or FLOODLIGHT_BEHAVIOR
        apps: List[ControllerApp] = list(extra_apps or [])
        apps.append(LearningSwitchApp(behavior))
        super().__init__(engine, name=name, apps=apps)
        self.behavior = behavior
