"""SDN controller behavioural models.

The paper evaluates Floodlight v1.2, POX v0.2.0, and Ryu v4.5, each running
its stock learning-switch application.  This package models the three
controllers' *documented behavioural differences* — the exact levers behind
the paper's cross-controller results:

========================  ============  ==============  ==============
Behaviour                 Floodlight    POX             Ryu
========================  ============  ==============  ==============
Learning-switch module    Forwarding    l2_learning     simple_switch
Flow-mod match fields     full 12-tuple full 12-tuple   in_port+dl_src
                                                        +dl_dst only
Idle / hard timeout       5 s / 0       10 s / 30 s     none (permanent)
Buffered packet released  PACKET_OUT    FLOW_MOD w/     PACKET_OUT
via                                     buffer_id       w/ buffer_id
Packet-in service time    0.3 ms        1.2 ms          0.8 ms
========================  ============  ==============  ==============

Consequences reproduced in the evaluation:

* POX releases the buffered packet *through the FLOW_MOD itself*, so the
  flow-modification-suppression attack starves the data plane entirely —
  the denial-of-service asterisk in Fig. 11.
* Ryu's match omits network-layer fields, so the connection-interruption
  attack's rule φ2 (conditioned on ``nw_src``/``nw_dst`` type options)
  never fires — the Table II anomaly.
"""

from repro.controllers.apps import (
    ControllerApp,
    FabricRoutingApp,
    LearningSwitchApp,
    LearningSwitchBehavior,
)
from repro.controllers.base import Controller, SwitchSession
from repro.controllers.discovery import DiscoveredLink, TopologyDiscoveryApp
from repro.controllers.firewall import DmzFirewallApp, FirewallPolicy
from repro.controllers.floodlight import FloodlightController
from repro.controllers.pox import PoxController
from repro.controllers.ryu import RyuController
from repro.controllers.stats import StatsCollectorApp

CONTROLLER_FACTORIES = {
    "floodlight": FloodlightController,
    "pox": PoxController,
    "ryu": RyuController,
}

__all__ = [
    "CONTROLLER_FACTORIES",
    "Controller",
    "ControllerApp",
    "DiscoveredLink",
    "DmzFirewallApp",
    "FabricRoutingApp",
    "FirewallPolicy",
    "FloodlightController",
    "LearningSwitchApp",
    "LearningSwitchBehavior",
    "PoxController",
    "RyuController",
    "StatsCollectorApp",
    "SwitchSession",
    "TopologyDiscoveryApp",
]
