"""Ryu v4.5 behavioural model (``simple_switch`` application).

Documented behaviours reproduced here:

* flow-mod matches carry **only** ``in_port``, ``dl_src``, ``dl_dst`` —
  ``simple_switch.add_flow`` wildcards everything else.  This is the
  behaviour behind the paper's Table II anomaly: "Ryu did not trigger
  rule φ2 since its flow match attributes were specified differently from
  those of the other two controllers";
* no idle or hard timeout — entries are permanent;
* the buffered packet is released with a separate PACKET_OUT carrying the
  buffer id;
* CPython/eventlet runtime — service time between Floodlight's and POX's.
"""

from __future__ import annotations

from typing import List, Optional

from repro.controllers.apps import ControllerApp, LearningSwitchApp, LearningSwitchBehavior
from repro.controllers.base import Controller
from repro.sim.engine import SimulationEngine

RYU_BEHAVIOR = LearningSwitchBehavior(
    name="ryu-simple-switch",
    match_granularity="l2",
    idle_timeout=0,
    hard_timeout=0,
    priority=1,
    release_via="packet_out",
)


class RyuController(Controller):
    """Ryu v4.5 running ``simple_switch``."""

    SERVICE_TIME = 0.0008

    def __init__(
        self,
        engine: SimulationEngine,
        name: str = "ryu",
        extra_apps: Optional[List[ControllerApp]] = None,
        behavior: Optional[LearningSwitchBehavior] = None,
    ) -> None:
        behavior = behavior or RYU_BEHAVIOR
        apps: List[ControllerApp] = list(extra_apps or [])
        apps.append(LearningSwitchApp(behavior))
        super().__init__(engine, name=name, apps=apps)
        self.behavior = behavior
