"""DMZ firewall application for the enterprise case study.

The case study's network "enforce[s] isolation through network
partitioning": external traffic entering through the gateway (h2) may reach
the public-facing web server (h1) but not internal hosts.  The firewall is
enforced at the DMZ switch (s2).  When a blocked flow appears there, the
app installs a *drop* flow entry — and that drop FLOW_MOD on connection
(c1, s2) is precisely the message the connection-interruption attack's
rule φ2 waits for.

The drop rule's match is built with the host controller's own match
personality (``LearningSwitchBehavior.build_match``), which is what makes
the Ryu anomaly reproducible: Ryu-style matches carry no ``nw_src`` /
``nw_dst``, so the attack's conditional over those type options never
fires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Optional

from repro.netlib.addresses import Ipv4Address
from repro.netlib.ethernet import EtherType
from repro.netlib.packet import DecodedPacket
from repro.openflow.messages import FlowMod, PacketIn
from repro.controllers.apps import ControllerApp, LearningSwitchBehavior


@dataclass(frozen=True)
class FirewallPolicy:
    """Source/destination IP sets whose traffic is blocked at the DMZ."""

    blocked_sources: FrozenSet[Ipv4Address]
    protected_destinations: FrozenSet[Ipv4Address]

    @classmethod
    def isolate(cls, external_ips, internal_ips) -> "FirewallPolicy":
        """Block the given external sources from the given internal hosts."""
        return cls(
            blocked_sources=frozenset(Ipv4Address(ip) for ip in external_ips),
            protected_destinations=frozenset(Ipv4Address(ip) for ip in internal_ips),
        )

    def blocks(self, src: Optional[Ipv4Address], dst: Optional[Ipv4Address]) -> bool:
        return (
            src is not None
            and dst is not None
            and src in self.blocked_sources
            and dst in self.protected_destinations
        )


class DmzFirewallApp(ControllerApp):
    """Enforces a :class:`FirewallPolicy` at designated enforcement switches.

    Runs ahead of the learning switch in the pipeline.  Blocked packets are
    answered with a drop flow entry (a FLOW_MOD with an empty action list);
    the buffered packet is left unreleased, which is how OpenFlow drops it.
    ARP is always allowed so address resolution still works — the policy is
    an L3 policy, as in a conventional DMZ firewall.
    """

    def __init__(
        self,
        policy: FirewallPolicy,
        enforcement_dpids: FrozenSet[int],
        behavior: LearningSwitchBehavior,
        drop_idle_timeout: int = 10,
        drop_priority: int = 2,
    ) -> None:
        self.policy = policy
        self.enforcement_dpids = frozenset(enforcement_dpids)
        self.behavior = behavior
        self.drop_idle_timeout = drop_idle_timeout
        self.drop_priority = drop_priority
        self.blocked_packets = 0
        self.drop_rules_installed = 0

    def packet_in(self, controller, session, message: PacketIn,
                  fields: Dict[str, Any], decoded: DecodedPacket) -> bool:
        if session.datapath_id not in self.enforcement_dpids:
            return False
        if fields.get("dl_type") != EtherType.IPV4:
            return False  # ARP/LLDP pass through to the learning switch
        if not self.policy.blocks(fields.get("nw_src"), fields.get("nw_dst")):
            return False
        self.blocked_packets += 1
        self.drop_rules_installed += 1
        controller.stats["flow_mods_sent"] += 1
        session.send(
            FlowMod(
                self.behavior.build_match(fields),
                idle_timeout=self.drop_idle_timeout,
                priority=self.drop_priority,
                actions=[],  # no actions: matching packets are dropped
            )
        )
        return True  # stop the pipeline; no forwarding for blocked traffic
