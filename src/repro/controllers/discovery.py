"""LLDP topology discovery service.

Controllers "use the southbound API to query the switches about network
topology" (Section II-A1): this app floods LLDP probes out every switch
port and learns inter-switch links when a probe returns as a PACKET_IN on
the far side — the standard OFDP mechanism Floodlight/POX/Ryu all
implement.

The paper notes (Section II-A4, citing Hong et al. [9]) that "LLDP
messages can be used to fabricate fake links to manipulate the controller
into believing that such links exist, thus causing black hole routing".
:func:`repro.attacks.link_fabrication.link_fabrication_attack` implements
exactly that against this service: an INJECTNEWMESSAGE of a forged LLDP
PACKET_IN poisons :attr:`TopologyDiscoveryApp.links`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.netlib.addresses import MacAddress
from repro.netlib.ethernet import EtherType, EthernetFrame
from repro.netlib.lldp import LldpPacket
from repro.netlib.addresses import LLDP_MULTICAST_MAC
from repro.netlib.packet import DecodedPacket
from repro.openflow.actions import OutputAction
from repro.openflow.constants import OFP_NO_BUFFER, Port
from repro.openflow.messages import PacketIn, PacketOut
from repro.controllers.apps import ControllerApp

LinkKey = Tuple[int, int, int, int]  # (src_dpid, src_port, dst_dpid, dst_port)


@dataclass
class DiscoveredLink:
    """One directed inter-switch link with freshness bookkeeping."""

    src_dpid: int
    src_port: int
    dst_dpid: int
    dst_port: int
    first_seen: float
    last_seen: float
    probe_count: int = 1

    @property
    def key(self) -> LinkKey:
        return (self.src_dpid, self.src_port, self.dst_dpid, self.dst_port)


class TopologyDiscoveryApp(ControllerApp):
    """Periodic LLDP probing + link learning (OFDP)."""

    PROBE_INTERVAL = 5.0
    LINK_TTL = 15.0
    CHASSIS_PREFIX = "dpid:"

    def __init__(self, probe_interval: float = PROBE_INTERVAL,
                 link_ttl: float = LINK_TTL) -> None:
        self.probe_interval = probe_interval
        self.link_ttl = link_ttl
        self._links: Dict[LinkKey, DiscoveredLink] = {}
        self.probes_sent = 0
        self.probes_received = 0
        self.malformed_probes = 0

    # ------------------------------------------------------------------ #
    # Probing
    # ------------------------------------------------------------------ #

    def switch_ready(self, controller, session) -> None:
        self._probe_session(controller, session)

    def _probe_session(self, controller, session) -> None:
        if session.state.value == "closed":
            return
        for port in session.ports:
            self._send_probe(session, port)
        controller.engine.schedule(
            self.probe_interval, self._probe_session, controller, session
        )

    def _send_probe(self, session, port: int) -> None:
        if session.datapath_id is None:
            return
        lldp = LldpPacket(f"{self.CHASSIS_PREFIX}{session.datapath_id}", port)
        frame = EthernetFrame(
            LLDP_MULTICAST_MAC,
            MacAddress((session.datapath_id << 8) | port),
            EtherType.LLDP,
            lldp.pack(),
        )
        self.probes_sent += 1
        session.send(
            PacketOut(
                buffer_id=OFP_NO_BUFFER,
                in_port=Port.NONE,
                actions=[OutputAction(port)],
                data=frame.pack(),
            )
        )

    # ------------------------------------------------------------------ #
    # Learning
    # ------------------------------------------------------------------ #

    def packet_in(self, controller, session, message: PacketIn,
                  fields: Dict[str, Any], decoded: DecodedPacket) -> bool:
        if fields.get("dl_type") != EtherType.LLDP:
            return False
        lldp = decoded.l3
        if not isinstance(lldp, LldpPacket):
            self.malformed_probes += 1
            return True  # consume: LLDP must not reach the learning switch
        if not lldp.chassis_id.startswith(self.CHASSIS_PREFIX):
            self.malformed_probes += 1
            return True
        try:
            src_dpid = int(lldp.chassis_id[len(self.CHASSIS_PREFIX):])
        except ValueError:
            self.malformed_probes += 1
            return True
        self.probes_received += 1
        now = controller.engine.now
        key = (src_dpid, lldp.port_id, session.datapath_id, message.in_port)
        existing = self._links.get(key)
        if existing is None:
            self._links[key] = DiscoveredLink(
                src_dpid, lldp.port_id, session.datapath_id, message.in_port,
                first_seen=now, last_seen=now,
            )
        else:
            existing.last_seen = now
            existing.probe_count += 1
        return True

    def switch_down(self, controller, session) -> None:
        if session.datapath_id is None:
            return
        dead = session.datapath_id
        self._links = {
            key: link for key, link in self._links.items()
            if dead not in (link.src_dpid, link.dst_dpid)
        }

    def port_status(self, controller, session, message) -> None:
        """PORT_STATUS with LINK_DOWN purges the port's links immediately
        (faster than waiting for the probe TTL to lapse)."""
        from repro.openflow.constants import PortState

        if session.datapath_id is None:
            return
        if not (message.port.state & int(PortState.LINK_DOWN)):
            return
        dpid, port = session.datapath_id, message.port.port_no
        self._links = {
            key: link for key, link in self._links.items()
            if not ((link.src_dpid, link.src_port) == (dpid, port)
                    or (link.dst_dpid, link.dst_port) == (dpid, port))
        }

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def links(self, now: Optional[float] = None) -> Dict[LinkKey, DiscoveredLink]:
        """Currently live links (fresh within the TTL when ``now`` given)."""
        if now is None:
            return dict(self._links)
        return {
            key: link for key, link in self._links.items()
            if now - link.last_seen <= self.link_ttl
        }

    def has_link(self, src_dpid: int, dst_dpid: int,
                 now: Optional[float] = None) -> bool:
        """True if any directed link src -> dst is known (and fresh)."""
        return any(
            link.src_dpid == src_dpid and link.dst_dpid == dst_dpid
            for link in self.links(now).values()
        )

    def bidirectional_links(self, now: Optional[float] = None):
        """Undirected link set: pairs confirmed in both directions."""
        live = self.links(now)
        pairs = set()
        for (src_dpid, src_port, dst_dpid, dst_port) in live:
            if (dst_dpid, dst_port, src_dpid, src_port) in live:
                pairs.add(tuple(sorted([(src_dpid, src_port), (dst_dpid, dst_port)])))
        return pairs
