"""Command-line interface: run the paper's experiments from a shell.

Usage::

    python -m repro suppression --controller pox --seed 7 --json
    python -m repro interruption
    python -m repro compliance
    python -m repro campaign run matrix.xml --workers 4 --trace
    python -m repro campaign status matrix.xml
    python -m repro campaign report matrix.xml
    python -m repro interruption --controller pox --trace run.jsonl
    python -m repro trace run-pox-secure.jsonl
    python -m repro lint attack.xml --system sys.xml
    python -m repro lint --all --json
    python -m repro compile --system sys.xml --attack-model model.xml \\
        --attack attack.xml --output attack_module.py
    python -m repro graph --system sys.xml --attack attack.xml
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

CONTROLLERS = ("floodlight", "pox", "ryu")


def _print_run_record(experiment: str, attack: Optional[str], controller: str,
                      fail_mode: str, seed: int, params: dict, metrics: dict,
                      wall_duration_s: float,
                      trace: Optional[dict] = None) -> None:
    """Emit one single-shot run in the campaign ResultStore record schema.

    Durations are explicit: ``wall_duration_s`` is what this process
    measured around the run; the simulated horizon is lifted from
    ``metrics["sim_duration_s"]`` by ``make_record``.
    """
    from repro.campaign import RunDescriptor, make_record

    descriptor = RunDescriptor(
        experiment=experiment, attack=attack, controller=controller,
        topology="enterprise", fail_mode=fail_mode, seed=seed,
        params=dict(params),
    )
    record = make_record(descriptor.to_dict(), "ok", metrics,
                         duration_s=wall_duration_s, trace=trace)
    print(json.dumps(record, sort_keys=True))


def _make_collector(enabled: bool):
    if not enabled:
        return None
    from repro.obs import TraceCollector

    return TraceCollector()


def _dump_trace(tracer, base_path: str, label: str, multi: bool):
    """Write one cell's trace; per-cell suffixes when a command runs many."""
    if tracer is None:
        return None
    from pathlib import Path

    path = Path(base_path)
    if multi:
        suffix = path.suffix or ".jsonl"
        path = path.with_name(f"{path.stem}-{label}{suffix}")
    tracer.dump_jsonl(path)
    print(f"trace: {tracer.events_total} event(s) -> {path}",
          file=sys.stderr)
    return {"path": str(path), "events": tracer.events_total}


def _cmd_suppression(args: argparse.Namespace) -> int:
    from repro.experiments import run_suppression_experiment

    if args.full:
        config = dict(ping_trials=60, iperf_trials=30, iperf_duration_s=10.0,
                      iperf_gap_s=10.0, warmup_s=30.0)
    else:
        config = dict(ping_trials=args.ping_trials, iperf_trials=args.iperf_trials,
                      iperf_duration_s=args.iperf_duration, iperf_gap_s=2.0,
                      warmup_s=5.0)
    controllers = CONTROLLERS if args.controller == "all" else (args.controller,)
    if not args.json:
        header = (f"{'controller':<11} {'mode':<9} {'throughput':>12} "
                  f"{'median RTT':>12} {'loss':>6} {'PACKET_INs':>11}")
        print(header)
        print("-" * len(header))
    for controller in controllers:
        for attacked in (False, True):
            started = time.time()
            tracer = _make_collector(bool(args.trace))
            result = run_suppression_experiment(controller, attacked,
                                                seed=args.seed, trace=tracer,
                                                **config)
            # Suppression always runs baseline + attack, so per-cell
            # trace files are always suffixed.
            trace_info = _dump_trace(
                tracer, args.trace,
                f"{controller}-{'attack' if attacked else 'baseline'}",
                multi=True,
            ) if tracer is not None else None
            if args.json:
                _print_run_record(
                    "suppression",
                    "flow-mod-suppression" if attacked else "passthrough",
                    controller, "secure", args.seed, config,
                    result.record(), time.time() - started,
                    trace=trace_info,
                )
                continue
            rtt = (f"{result.median_rtt_s * 1000:.2f} ms"
                   if result.median_rtt_s is not None else "inf (*)")
            throughput = (f"{result.mean_throughput_mbps:.2f} Mbps"
                          if not result.denial_of_service else "0.0 (*)")
            print(f"{controller:<11} {'attack' if attacked else 'baseline':<9} "
                  f"{throughput:>12} {rtt:>12} {result.ping_loss_rate:>6.0%} "
                  f"{result.packet_ins:>11}")
    return 0


def _cmd_interruption(args: argparse.Namespace) -> int:
    from repro.dataplane import FailMode
    from repro.experiments import run_interruption_experiment

    controllers = CONTROLLERS if args.controller == "all" else (args.controller,)
    for controller in controllers:
        for mode in (FailMode.STANDALONE, FailMode.SECURE):
            started = time.time()
            tracer = _make_collector(bool(args.trace))
            result = run_interruption_experiment(controller, mode,
                                                 seed=args.seed, trace=tracer)
            trace_info = _dump_trace(
                tracer, args.trace, f"{controller}-{mode.value}", multi=True,
            ) if tracer is not None else None
            if args.json:
                _print_run_record(
                    "interruption", "connection-interruption", controller,
                    mode.value, args.seed, {}, result.record(),
                    time.time() - started,
                    trace=trace_info,
                )
                continue
            row = result.row()
            notes = []
            if result.unauthorized_increased_access:
                notes.append("UNAUTHORIZED ACCESS")
            if result.denial_of_service:
                notes.append("DENIAL OF SERVICE")
            if not result.interruption_happened:
                notes.append("phi2 never fired")
            print(f"{controller}/{mode.value}: "
                  + " ".join(f"{k}={v}" for k, v in row.items()
                             if k.startswith(("ext", "int")))
                  + (f"  [{'; '.join(notes)}]" if notes else ""))
    return 0


def _cmd_compliance(args: argparse.Namespace) -> int:
    from repro.experiments.compliance import run_cell, run_compliance_suite

    if args.json:
        started = time.time()
        metrics = run_cell()
        _print_run_record("compliance", None, "none", "secure", 0, {},
                          metrics, time.time() - started)
        return 0 if metrics["all_passed"] else 1
    report = run_compliance_suite()
    print(report.render())
    return 0 if report.all_passed else 1


# ---------------------------------------------------------------------- #
# Generated fabrics
# ---------------------------------------------------------------------- #


def _cmd_fabric_gen(args: argparse.Namespace) -> int:
    from repro.dataplane.fabrics import generate_fabric, partition_topology, cut_links

    fabric = generate_fabric(args.name)
    topo = fabric.topology
    info = {
        "fabric": fabric.name,
        "switches": fabric.switch_count,
        "hosts": fabric.host_count,
        "links": len(topo.links),
        "groups": len(fabric.groups),
    }
    if args.regions:
        partition = partition_topology(topo, args.regions,
                                       groups=fabric.groups or None)
        info["regions"] = [len(devices) for devices in partition]
        info["cut_links"] = cut_links(topo, partition)
    if args.json:
        print(json.dumps(info, sort_keys=True))
    else:
        print(f"{fabric.name}: {info['switches']} switches, "
              f"{info['hosts']} hosts, {info['links']} links, "
              f"{info['groups']} partition groups")
        if args.regions:
            sizes = ", ".join(str(s) for s in info["regions"])
            print(f"{len(info['regions'])} regions ({sizes} devices), "
                  f"{info['cut_links']} cut links")
    return 0


def _cmd_fabric_run(args: argparse.Namespace) -> int:
    from repro.experiments.fabric import run_fabric_experiment

    kwargs = {}
    if args.workload:
        kwargs["workload"] = args.workload
    if args.packets is not None:
        kwargs["packets"] = args.packets
    if args.horizon is not None:
        kwargs["horizon_s"] = args.horizon
    started = time.time()
    result = run_fabric_experiment(
        topology=args.name,
        controller=None if args.controller == "none" else args.controller,
        attack=args.attack,
        fail_mode=args.fail_mode,
        seed=args.seed,
        regions=args.regions,
        shards=args.shards,
        pairs=args.pairs,
        trace=bool(args.trace),
        **kwargs,
    )
    if args.trace:
        from pathlib import Path

        path = Path(args.trace)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(result.trace_jsonl or "", encoding="utf-8")
        print(f"trace: {result.trace_events} event(s) -> {path}",
              file=sys.stderr)
    metrics = result.record()
    if args.json:
        _print_run_record("fabric", args.attack,
                          args.controller, args.fail_mode, args.seed,
                          {"topology": args.name, "shards": args.shards},
                          metrics, time.time() - started)
        return 0
    print(f"{result.fabric}: {result.switches} switches / {result.hosts} hosts "
          f"in {result.regions} regions on {result.shards} shard(s)")
    if result.packets_sent:
        print(f"udp: {result.packets_delivered}/{result.packets_sent} delivered "
              f"({100 * result.delivery_rate:.1f}%)")
    if result.ping_sent:
        rtt = (f", median rtt {result.median_rtt_s * 1000:.2f} ms"
               if result.median_rtt_s is not None else "")
        print(f"ping: {result.ping_received}/{result.ping_sent} answered{rtt}")
    if result.controller:
        print(f"control: {result.packet_ins} packet-ins, "
              f"{result.flow_mods_seen} flow-mods seen, "
              f"{result.flow_mods_dropped} dropped")
    print(f"events: {result.processed_events} across {result.epochs} epochs "
          f"({result.epochs_skipped} skipped, {result.epochs_widened} widened), "
          f"{result.cross_shard_messages} cross-shard messages")
    if result.shards > 1:
        per_msg = (result.exchange_bytes / result.cross_shard_messages
                   if result.cross_shard_messages else 0.0)
        print(f"exchange: {result.exchange_bytes} bytes in "
              f"{result.exchange_blobs} blobs ({per_msg:.1f} B/message)")
        worker_cpu = ", ".join(f"{cpu:.2f}" for cpu in result.worker_cpu_s)
        print(f"cpu: coordinator {result.coordinator_cpu_s:.2f}s, "
              f"workers [{worker_cpu}]s")
    print(f"wall {result.wall_s:.2f}s, "
          f"{result.wall_packets_per_sec:.0f} pkt/s wall, "
          f"{result.capacity_packets_per_sec:.0f} pkt/s capacity")
    return 0


# ---------------------------------------------------------------------- #
# Adversarial workloads
# ---------------------------------------------------------------------- #


def _cmd_workload_list(args: argparse.Namespace) -> int:
    from repro.workloads import list_sources

    sources = list_sources()
    if args.json:
        print(json.dumps(sources, indent=2, sort_keys=True))
        return 0
    width = max(len(s["name"]) for s in sources)
    for source in sources:
        needs = " [needs controller]" if source["needs_controller"] else ""
        adversarial = " [adversarial]" if source.get("adversarial") else ""
        print(f"{source['name']:<{width}}  "
              f"{source['description']}{needs}{adversarial}")
    return 0


def _cmd_workload_run(args: argparse.Namespace) -> int:
    from repro.experiments.fabric import run_fabric_experiment

    workload_params = {}
    if args.schedule:
        workload_params["schedule"] = args.schedule
    if args.senders is not None:
        workload_params["senders"] = args.senders
    if args.duration is not None:
        workload_params["duration_s"] = args.duration
    if args.keys is not None:
        workload_params["keys"] = args.keys
    if args.spoof_macs is not None:
        workload_params["spoof_macs"] = args.spoof_macs
    started = time.time()
    result = run_fabric_experiment(
        topology=args.topology,
        controller=None if args.controller == "none" else args.controller,
        attack=args.attack,
        fail_mode=args.fail_mode,
        seed=args.seed,
        shards=args.shards,
        workload=args.source,
        workload_params=workload_params,
        table_capacity=args.table_capacity,
        table_eviction=args.table_eviction,
        trace=bool(args.trace),
    )
    if args.trace:
        from pathlib import Path

        path = Path(args.trace)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(result.trace_jsonl or "", encoding="utf-8")
        print(f"trace: {result.trace_events} event(s) -> {path}",
              file=sys.stderr)
    metrics = dict(result.record(), experiment="workload")
    if args.json:
        _print_run_record("workload", args.attack,
                          args.controller, args.fail_mode, args.seed,
                          {"topology": args.topology, "workload": args.source,
                           "shards": args.shards},
                          metrics, time.time() - started)
        return 0
    print(f"{args.source} on {result.fabric}: {result.switches} switches / "
          f"{result.hosts} hosts on {result.shards} shard(s)")
    print(f"synthesized {result.packets_synthesized} frames over "
          f"{result.sim_duration_s:.2f}s sim")
    if result.packets_sent:
        print(f"udp: {result.packets_delivered}/{result.packets_sent} "
              f"delivered ({100 * result.delivery_rate:.1f}%)")
    if result.controller:
        print(f"control: {result.switch_packet_ins} PACKET_INs "
              f"({result.packet_in_rate:.0f}/s), "
              f"{result.flow_mods_seen} flow-mods seen")
    evictions = {
        "capacity": result.evictions_capacity,
        "idle": result.evictions_idle,
        "hard": result.evictions_hard,
        "delete": result.evictions_delete,
    }
    counted = ", ".join(f"{k} x{v}" for k, v in evictions.items() if v)
    print(f"tables: occupancy peak {result.table_occupancy_peak}, "
          f"{result.table_misses} misses"
          + (f", evictions: {counted}" if counted else ", no evictions"))
    print(f"wall {result.wall_s:.2f}s, "
          f"{result.processed_events} events across {result.epochs} epochs")
    return 0


# ---------------------------------------------------------------------- #
# Defense plane
# ---------------------------------------------------------------------- #


def _cmd_detect_list(args: argparse.Namespace) -> int:
    from repro.defense import list_detectors

    detectors = list_detectors()
    if args.json:
        print(json.dumps(detectors, indent=2, sort_keys=True))
        return 0
    width = max(len(d["name"]) for d in detectors)
    for detector in detectors:
        extra = ""
        if detector["requires"]:
            state = "available" if detector["available"] else "missing"
            extra = f" [optional: {detector['requires']} {state}]"
        print(f"{detector['name']:<{width}}  {detector['description']}{extra}")
    return 0


def _cmd_detect_run(args: argparse.Namespace) -> int:
    from repro.experiments.fabric import run_fabric_experiment
    from repro.obs import render_detections

    workload_params = {}
    if args.schedule:
        workload_params["schedule"] = args.schedule
    if args.senders is not None:
        workload_params["senders"] = args.senders
    if args.duration is not None:
        workload_params["duration_s"] = args.duration
    detector_params = {}
    if args.threshold_pps is not None:
        detector_params["threshold_pps"] = args.threshold_pps
    if args.ratio is not None:
        detector_params["ratio"] = args.ratio
    started = time.time()
    result = run_fabric_experiment(
        topology=args.topology,
        controller=None if args.controller == "none" else args.controller,
        fail_mode=args.fail_mode,
        seed=args.seed,
        shards=args.shards,
        workload=args.source,
        workload_params=workload_params,
        table_capacity=args.table_capacity,
        table_eviction=args.table_eviction,
        detectors=args.detectors,
        detector_params=detector_params,
    )
    metrics = dict(result.record(), experiment="workload")
    if args.json:
        _print_run_record("detect", None, args.controller, args.fail_mode,
                          args.seed,
                          {"topology": args.topology,
                           "workload": args.source,
                           "detectors": args.detectors,
                           "shards": args.shards},
                          metrics, time.time() - started)
        return 0
    print(f"{args.source} on {result.fabric}: {result.switches} switches / "
          f"{result.hosts} hosts on {result.shards} shard(s), "
          f"{result.sim_duration_s:.2f}s sim")
    print(f"sketch digest: {result.sketch_digest}")
    print(render_detections(result.detections,
                            metrics.get("sketch_summary")))
    return 0


# ---------------------------------------------------------------------- #
# Campaigns
# ---------------------------------------------------------------------- #


def _campaign_store(args: argparse.Namespace, default_sharded=None):
    from pathlib import Path

    from repro.campaign import open_store

    sharded = getattr(args, "sharded", None)
    if sharded is None:
        sharded = default_sharded  # None: auto-detect an existing layout
    if args.store:
        return open_store(args.store, sharded=sharded)
    return open_store(Path(args.spec).with_suffix(".results.jsonl"),
                      sharded=sharded)


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    import os

    from repro.campaign import build_report, load_spec, run_campaign

    spec = load_spec(args.spec)
    store = _campaign_store(args)
    progress = None if args.quiet else (
        lambda line: print(line, file=sys.stderr))
    workers = args.workers if args.workers is not None \
        else (os.cpu_count() or 1)
    summary = run_campaign(
        spec, store, workers=workers,
        timeout_s=args.timeout, retries=args.retries, progress=progress,
        trace=bool(getattr(args, "trace", False)),
        preflight=not getattr(args, "no_preflight", False),
    )
    if args.json:
        print(json.dumps({
            "campaign": summary.campaign,
            "total": summary.total,
            "skipped": summary.skipped,
            "executed": summary.executed,
            "succeeded": summary.succeeded,
            "failed": summary.failed,
            "retries_used": summary.retries_used,
            "lint_rejected": summary.lint_rejected,
            "duration_s": round(summary.duration_s, 3),
            "failed_run_ids": summary.failed_run_ids,
            "processes_spawned": summary.processes_spawned,
            "worker_runs": summary.worker_runs,
            "store": str(store.path),
        }, sort_keys=True))
    else:
        print(summary.render())
        print(build_report(spec, store.records()).render())
    return 0 if summary.complete else 1


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from repro.campaign import load_spec

    spec = load_spec(args.spec)
    store = _campaign_store(args)
    descriptors = spec.expand()
    completed = store.completed_ids()
    pending = [d for d in descriptors if d.run_id not in completed]
    # Pool observability: the highest runs_executed seen per worker pid
    # across recorded runs (absent for pre-pool or single-shot records).
    workers = {}
    for record in store.records():
        worker = record.get("worker")
        if isinstance(worker, dict) and worker.get("pid") is not None:
            pid = str(worker["pid"])
            runs = int(worker.get("runs_executed") or 0)
            workers[pid] = max(workers.get(pid, 0), runs)
    payload = {
        "campaign": spec.name,
        "store": str(store.path),
        "total": len(descriptors),
        "completed": len(descriptors) - len(pending),
        "pending": len(pending),
        "pending_runs": [
            {"run_id": d.run_id, "label": d.label()} for d in pending
        ],
        "worker_runs": workers,
    }
    if args.json:
        print(json.dumps(payload, sort_keys=True))
    else:
        print(f"campaign {spec.name}: {payload['completed']}/"
              f"{payload['total']} runs complete ({store.path})")
        for pid, runs in sorted(workers.items()):
            print(f"  worker pid {pid}: {runs} run(s) executed")
        for entry in payload["pending_runs"]:
            print(f"  pending {entry['run_id']} [{entry['label']}]")
    return 0


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    from repro.campaign import build_report, load_spec

    spec = load_spec(args.spec)
    store = _campaign_store(args)
    report = build_report(spec, store.records(),
                          digests=bool(getattr(args, "digests", False)))
    if args.json:
        print(json.dumps(report.to_dict(), sort_keys=True))
    else:
        print(report.render())
    return 0 if not report.missing_runs and not report.failed_runs else 1


def _cmd_campaign_serve(args: argparse.Namespace) -> int:
    import os
    import signal
    from pathlib import Path

    from repro.campaign import (
        CampaignAggregator,
        CampaignScheduler,
        load_spec,
        open_store,
        stream_path_for,
    )

    if args.store:
        store_path = Path(args.store)
    elif args.specs:
        store_path = Path(args.specs[0]).with_suffix(".results.jsonl")
    else:
        print("campaign serve: pass at least one spec or --store "
              "(required with --inbox-only serving)", file=sys.stderr)
        return 2
    # Service mode defaults to the sharded layout; a pre-existing plain
    # ledger at the same path is read through and migrated on compact.
    sharded = args.sharded if args.sharded is not None else True
    store = open_store(store_path, sharded=sharded, shards=args.shards)
    progress = None if args.quiet else (
        lambda line: print(line, file=sys.stderr, flush=True))
    workers = args.workers if args.workers is not None \
        else (os.cpu_count() or 1)
    aggregator = CampaignAggregator()
    scheduler = CampaignScheduler(
        store, workers=workers, progress=progress,
        aggregator=aggregator, stream_path=stream_path_for(store),
        trace=bool(args.trace), preflight=not args.no_preflight,
    )
    stopping = {"flag": False}

    def _request_stop(signum, frame):
        stopping["flag"] = True

    restore = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            restore.append((signum, signal.signal(signum, _request_stop)))
        except (ValueError, OSError):  # non-main thread: keep defaults
            pass
    idle_exit_s = args.idle_exit
    if idle_exit_s is None and not args.inbox:
        idle_exit_s = 0.0  # no inbox to wait on: exit once drained
    try:
        for spec_path in args.specs:
            scheduler.submit(load_spec(spec_path), timeout_s=args.timeout,
                             retries=args.retries)
        jobs = scheduler.serve(inbox=args.inbox, idle_exit_s=idle_exit_s,
                               stop=lambda: stopping["flag"])
    finally:
        for signum, handler in restore:
            signal.signal(signum, handler)
    if args.json:
        print(json.dumps({
            "store": str(store.path),
            "stream": str(stream_path_for(store)),
            "jobs": [{
                "campaign": job.summary.campaign,
                "total": job.summary.total,
                "skipped": job.summary.skipped,
                "executed": job.summary.executed,
                "succeeded": job.summary.succeeded,
                "failed": job.summary.failed,
                "retries_used": job.summary.retries_used,
                "duration_s": round(job.summary.duration_s, 3),
                "processes_spawned": job.summary.processes_spawned,
                "done": job.done,
            } for job in jobs],
            "processes_spawned": scheduler.processes_spawned,
            "stream_seconds": round(scheduler.stream_seconds, 4),
            "aggregate": aggregator.snapshot(),
        }, sort_keys=True))
    else:
        for job in jobs:
            print(job.summary.render())
        if aggregator.records_seen:
            print(aggregator.render())
    return 1 if any(job.summary.failed for job in jobs) else 0


def _cmd_campaign_watch(args: argparse.Namespace) -> int:
    from pathlib import Path

    path = Path(args.path)
    if path.is_dir():
        tail_path = path / "events.jsonl"
    elif path.name == "events.jsonl" or path.name.endswith(".events.jsonl"):
        tail_path = path
    else:
        from repro.campaign import open_store, stream_path_for

        tail_path = stream_path_for(open_store(path))
    deadline = time.time() + args.timeout if args.timeout else None
    offset = 0
    if not args.from_start and tail_path.exists():
        offset = tail_path.stat().st_size
    seen = 0
    pending = b""
    while True:
        if tail_path.exists():
            size = tail_path.stat().st_size
            if size < offset:  # stream rotated/compacted away: restart
                offset = 0
                pending = b""
            if size > offset:
                with tail_path.open("rb") as handle:
                    handle.seek(offset)
                    chunk = handle.read()
                offset += len(chunk)
                pending += chunk
                while b"\n" in pending:
                    line, pending = pending.split(b"\n", 1)
                    text = line.decode("utf-8", "replace").strip()
                    if not text:
                        continue
                    print(text, flush=True)
                    seen += 1
                    if args.count and seen >= args.count:
                        return 0
        if deadline is not None and time.time() >= deadline:
            return 1 if args.count and seen < args.count else 0
        time.sleep(0.1)


def _cmd_campaign_submit(args: argparse.Namespace) -> int:
    import os
    from pathlib import Path

    from repro.campaign import load_spec

    source = Path(args.spec)
    spec = load_spec(source)  # validate before spooling
    inbox = Path(args.inbox)
    inbox.mkdir(parents=True, exist_ok=True)
    target = inbox / source.name
    serial = 1
    while target.exists():
        target = inbox / f"{source.stem}.{serial}{source.suffix}"
        serial += 1
    # Write-then-rename so the serving scheduler never reads a partial
    # spec file; the .part suffix keeps the scanner away meanwhile.
    part = target.with_name(target.name + ".part")
    part.write_bytes(source.read_bytes())
    os.replace(part, target)
    if args.json:
        print(json.dumps({"campaign": spec.name, "spooled": str(target)},
                         sort_keys=True))
    else:
        print(f"submitted campaign {spec.name} -> {target}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import load_events, render_summary, render_timeline, summarize

    events = load_events(args.trace_file)
    if not events:
        print(f"no events in {args.trace_file}", file=sys.stderr)
        return 1
    summary = summarize(events)
    if args.json:
        print(json.dumps(summary, sort_keys=True))
        return 0
    if not args.summary_only:
        print(render_timeline(events, kinds=args.kinds or None,
                              limit=args.limit))
        print()
    print(render_summary(summary))
    return 0


def _load_system(path: str):
    from repro.core.compiler import parse_system_model_xml

    with open(path, encoding="utf-8") as handle:
        return parse_system_model_xml(handle.read())


def _cmd_compile(args: argparse.Namespace) -> int:
    from repro.core.compiler import (
        generate_attack_source,
        parse_attack_model_xml,
        parse_attack_states_xml,
    )

    system = _load_system(args.system)
    with open(args.attack, encoding="utf-8") as handle:
        attack = parse_attack_states_xml(handle.read(), system)
    if args.attack_model:
        with open(args.attack_model, encoding="utf-8") as handle:
            model = parse_attack_model_xml(handle.read(), system)
        attack.validate_against(model)
        print(f"validated against attacker model "
              f"({len(model.attacked_connections())} attacked connections)",
              file=sys.stderr)
    source = generate_attack_source(attack)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(source)
        print(f"wrote executable attack code to {args.output}", file=sys.stderr)
    else:
        print(source)
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    from repro.core.compiler import parse_attack_states_xml

    system = _load_system(args.system)
    with open(args.attack, encoding="utf-8") as handle:
        attack = parse_attack_states_xml(handle.read(), system)
    print(attack.graph.to_dot())
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.core.compiler import CompileError, parse_attack_states_xml
    from repro.core.model.threat import AttackModel
    from repro.lint import build_registry_attack, failure_report, lint_attack

    try:
        if args.system:
            system = _load_system(args.system)
        else:
            from repro.experiments.enterprise import enterprise_system_model

            system = enterprise_system_model()
        if args.attack_model:
            from repro.core.compiler import parse_attack_model_xml

            with open(args.attack_model, encoding="utf-8") as handle:
                model = parse_attack_model_xml(handle.read(), system)
        else:
            # The broadest attacker: every declared rule is admissible, so
            # only genuinely malformed attacks produce capability errors.
            model = AttackModel.no_tls_everywhere(system)
    except (OSError, CompileError) as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2

    names = list(args.name or [])
    if args.all:
        from repro.attacks import list_attacks

        names.extend(n for n in list_attacks() if n not in names)

    reports = []
    for name in names:
        try:
            attack = build_registry_attack(name, system)
        except Exception as exc:
            reports.append(
                failure_report(name, f"{type(exc).__name__}: {exc}"))
            continue
        reports.append(lint_attack(attack, model))
    for path in args.paths:
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            reports.append(failure_report(path, str(exc)))
            continue
        try:
            attack = parse_attack_states_xml(text, system, strict=False)
        except CompileError as exc:
            reports.append(failure_report(path, str(exc), line=exc.line))
            continue
        reports.append(lint_attack(attack, model))

    if not reports:
        print("nothing to lint: pass attack XML paths, --name, or --all",
              file=sys.stderr)
        return 2
    errors = sum(len(r.errors) for r in reports)
    warnings = sum(len(r.warnings) for r in reports)
    if args.json:
        print(json.dumps({
            "attacks": len(reports),
            "errors": errors,
            "warnings": warnings,
            "reports": [r.to_dict() for r in reports],
        }, sort_keys=True))
    else:
        for report in reports:
            print(report.render_text(verbose=not args.quiet))
        print(f"linted {len(reports)} attack(s): "
              f"{errors} error(s), {warnings} warning(s)")
    return 1 if errors else 0


def _cmd_show(args: argparse.Namespace) -> int:
    from repro.core.compiler import parse_attack_states_xml
    from repro.core.lang.render import render_attack_text

    system = _load_system(args.system)
    with open(args.attack, encoding="utf-8") as handle:
        attack = parse_attack_states_xml(handle.read(), system)
    print(render_attack_text(attack))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ATTAIN attack-injection framework (DSN 2017 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    suppression = subparsers.add_parser(
        "suppression", help="run the Fig. 11 flow-mod suppression experiment"
    )
    suppression.add_argument("--controller", default="all",
                             choices=CONTROLLERS + ("all",))
    suppression.add_argument("--full", action="store_true",
                             help="use the paper's full 60-ping/30-iperf timing")
    suppression.add_argument("--ping-trials", type=int, default=10)
    suppression.add_argument("--iperf-trials", type=int, default=2)
    suppression.add_argument("--iperf-duration", type=float, default=2.0)
    suppression.add_argument("--seed", type=int, default=0,
                             help="root seed for the run's random streams")
    suppression.add_argument("--json", action="store_true",
                             help="emit campaign-schema JSONL records")
    suppression.add_argument("--trace", metavar="PATH",
                             help="export a per-cell control-plane trace "
                                  "(JSONL; cells suffix the file name)")
    suppression.set_defaults(handler=_cmd_suppression)

    interruption = subparsers.add_parser(
        "interruption", help="run the Table II connection-interruption experiment"
    )
    interruption.add_argument("--controller", default="all",
                              choices=CONTROLLERS + ("all",))
    interruption.add_argument("--seed", type=int, default=0,
                              help="root seed for the run's random streams")
    interruption.add_argument("--json", action="store_true",
                              help="emit campaign-schema JSONL records")
    interruption.add_argument("--trace", metavar="PATH",
                              help="export a per-cell control-plane trace "
                                   "(JSONL; cells suffix the file name)")
    interruption.set_defaults(handler=_cmd_interruption)

    compliance = subparsers.add_parser(
        "compliance", help="run the OFTest-style switch compliance suite"
    )
    compliance.add_argument("--json", action="store_true",
                            help="emit a campaign-schema JSON record")
    compliance.set_defaults(handler=_cmd_compliance)

    fabric = subparsers.add_parser(
        "fabric",
        help="generate datacenter fabrics and run sharded workloads on them")
    fabric_sub = fabric.add_subparsers(dest="fabric_command", required=True)

    fabric_gen = fabric_sub.add_parser(
        "gen", help="generate a fabric and print its shape")
    fabric_gen.add_argument("name",
                            help="fabric descriptor (fat-tree-k4, "
                                 "leaf-spine-8x4, waxman-s64-h128)")
    fabric_gen.add_argument("--regions", type=int, default=None,
                            help="also partition into N regions")
    fabric_gen.add_argument("--json", action="store_true",
                            help="machine-readable output")
    fabric_gen.set_defaults(handler=_cmd_fabric_gen)

    fabric_run = fabric_sub.add_parser(
        "run", help="run a sharded workload (optionally attacked) on a fabric")
    fabric_run.add_argument("name", help="fabric descriptor")
    fabric_run.add_argument("--controller", default="none",
                            choices=("none",) + CONTROLLERS,
                            help="controller model (none = proactive routes)")
    fabric_run.add_argument("--attack", default=None,
                            help="registered attack name (needs a controller)")
    fabric_run.add_argument("--fail-mode", default="secure",
                            choices=("secure", "standalone"))
    fabric_run.add_argument("--seed", type=int, default=0)
    fabric_run.add_argument("--regions", type=int, default=None,
                            help="region count (default: fabric groups)")
    fabric_run.add_argument("--shards", type=int, default=1,
                            help="worker processes executing the regions")
    fabric_run.add_argument("--workload", default=None,
                            help="udp, ping, or a registered traffic "
                                 "source (see `repro workload list`)")
    fabric_run.add_argument("--pairs", type=int, default=4,
                            help="communicating host pairs")
    fabric_run.add_argument("--packets", type=int, default=None,
                            help="packets (or pings) per pair")
    fabric_run.add_argument("--horizon", type=float, default=None,
                            help="simulated seconds to run")
    fabric_run.add_argument("--trace", metavar="PATH", default=None,
                            help="write the merged region trace to PATH")
    fabric_run.add_argument("--json", action="store_true",
                            help="emit the run record as JSON")
    fabric_run.set_defaults(handler=_cmd_fabric_run)

    workload = subparsers.add_parser(
        "workload",
        help="run adversarial traffic generators (floods, table overflow)")
    workload_sub = workload.add_subparsers(dest="workload_command",
                                           required=True)

    workload_list = workload_sub.add_parser(
        "list", help="list the registered traffic sources")
    workload_list.add_argument("--json", action="store_true",
                               help="emit the source table as JSON")
    workload_list.set_defaults(handler=_cmd_workload_list)

    workload_run = workload_sub.add_parser(
        "run", help="drive one traffic source on a generated fabric")
    workload_run.add_argument("source",
                              help="traffic source name (see `workload list`)")
    workload_run.add_argument("--topology", default="fat-tree-k4",
                              help="fabric descriptor (default fat-tree-k4)")
    workload_run.add_argument("--controller", default="none",
                              choices=("none",) + CONTROLLERS)
    workload_run.add_argument("--attack", default=None,
                              help="registry attack composed on the control "
                                   "channel")
    workload_run.add_argument("--fail-mode", default="secure",
                              choices=("secure", "insecure"))
    workload_run.add_argument("--seed", type=int, default=0)
    workload_run.add_argument("--shards", type=int, default=1,
                              help="worker processes executing the regions")
    workload_run.add_argument("--schedule", default=None,
                              help="rate schedule: constant:PPS, "
                                   "ramp:START:END:DUR, "
                                   "burst:PEAK:BASE:PERIOD:DUTY, "
                                   "onoff:PPS:ON:OFF")
    workload_run.add_argument("--senders", type=int, default=None,
                              help="sending hosts (default: fabric pairs)")
    workload_run.add_argument("--duration", type=float, default=None,
                              help="emission window in simulated seconds")
    workload_run.add_argument("--keys", type=int, default=None,
                              help="distinct flow keys (table-overflow)")
    workload_run.add_argument("--spoof-macs", type=int, default=None,
                              help="spoofed MAC pool size, 0=fresh each "
                                   "packet (packetin-flood)")
    workload_run.add_argument("--table-capacity", type=int, default=None,
                              help="bound every switch flow table")
    workload_run.add_argument("--table-eviction", default="refuse",
                              choices=("refuse", "lru", "fifo"))
    workload_run.add_argument("--trace", metavar="PATH", default=None,
                              help="write the merged region trace to PATH")
    workload_run.add_argument("--json", action="store_true",
                              help="emit the run record as JSON")
    workload_run.set_defaults(handler=_cmd_workload_run)

    detect = subparsers.add_parser(
        "detect",
        help="run sketch-fed detectors against adversarial workloads")
    detect_sub = detect.add_subparsers(dest="detect_command", required=True)

    detect_list = detect_sub.add_parser(
        "list", help="list the registered detectors")
    detect_list.add_argument("--json", action="store_true",
                             help="emit the detector table as JSON")
    detect_list.set_defaults(handler=_cmd_detect_list)

    detect_run = detect_sub.add_parser(
        "run", help="score detectors on one workload run with known "
                    "attack ground truth")
    detect_run.add_argument("source",
                            help="traffic source name (see `workload list`)")
    detect_run.add_argument("--detectors", default="pktin-rate,newkey-ratio",
                            help="comma-separated detector names "
                                 "(see `detect list`)")
    detect_run.add_argument("--topology", default="fat-tree-k4",
                            help="fabric descriptor (default fat-tree-k4)")
    detect_run.add_argument("--controller", default="pox",
                            choices=("none",) + CONTROLLERS)
    detect_run.add_argument("--fail-mode", default="secure",
                            choices=("secure", "insecure"))
    detect_run.add_argument("--seed", type=int, default=0)
    detect_run.add_argument("--shards", type=int, default=1,
                            help="worker processes executing the regions")
    detect_run.add_argument("--schedule", default=None,
                            help="rate schedule (see `workload run`)")
    detect_run.add_argument("--senders", type=int, default=None,
                            help="sending hosts (default: fabric pairs)")
    detect_run.add_argument("--duration", type=float, default=None,
                            help="emission window in simulated seconds")
    detect_run.add_argument("--threshold-pps", type=float, default=None,
                            help="pktin-rate alarm threshold (PACKET_IN/s)")
    detect_run.add_argument("--ratio", type=float, default=None,
                            help="newkey-ratio alarm threshold in (0,1]")
    detect_run.add_argument("--table-capacity", type=int, default=None,
                            help="bound every switch flow table")
    detect_run.add_argument("--table-eviction", default="refuse",
                            choices=("refuse", "lru", "fifo"))
    detect_run.add_argument("--json", action="store_true",
                            help="emit the run record as JSON")
    detect_run.set_defaults(handler=_cmd_detect_run)

    campaign = subparsers.add_parser(
        "campaign",
        help="run/inspect attack-matrix campaigns (parallel, resumable)",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command",
                                           required=True)

    def _common_campaign_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("spec", help="campaign spec file (.xml/.json/.py)")
        sub.add_argument("--store",
                         help="result store JSONL path "
                              "(default: <spec>.results.jsonl)")
        sub.add_argument("--sharded", action=argparse.BooleanOptionalAction,
                         default=None,
                         help="use the sharded <store>.d layout (default: "
                              "auto-detect an existing one)")
        sub.add_argument("--json", action="store_true",
                         help="machine-readable output")

    campaign_run = campaign_sub.add_parser(
        "run", help="execute the spec's pending runs in parallel")
    _common_campaign_args(campaign_run)
    campaign_run.add_argument("--workers", type=int, default=None,
                              help="parallel worker processes "
                                   "(default: os.cpu_count())")
    campaign_run.add_argument("--timeout", type=float, default=None,
                              help="per-run wall-clock timeout (seconds)")
    campaign_run.add_argument("--retries", type=int, default=None,
                              help="extra attempts after a worker failure")
    campaign_run.add_argument("--quiet", action="store_true",
                              help="suppress per-run progress on stderr")
    campaign_run.add_argument("--trace", action="store_true",
                              help="collect per-run control-plane traces "
                                   "into <store>.traces/<run_id>.jsonl")
    campaign_run.add_argument("--no-preflight", action="store_true",
                              help="skip the lint pre-flight that rejects "
                                   "defective attack cells before workers "
                                   "spawn")
    campaign_run.set_defaults(handler=_cmd_campaign_run)

    campaign_status = campaign_sub.add_parser(
        "status", help="show completed vs. pending runs")
    _common_campaign_args(campaign_status)
    campaign_status.set_defaults(handler=_cmd_campaign_status)

    campaign_report = campaign_sub.add_parser(
        "report", help="aggregate the store into security metrics")
    _common_campaign_args(campaign_report)
    campaign_report.add_argument("--digests", action="store_true",
                                 help="add per-cell count/mean/p50/p95 "
                                      "digests for every numeric metric")
    campaign_report.set_defaults(handler=_cmd_campaign_report)

    campaign_serve = campaign_sub.add_parser(
        "serve", help="long-lived scheduler: run specs, accept more via an "
                      "inbox, stream records as they complete")
    campaign_serve.add_argument("specs", nargs="*",
                                help="campaign spec files to submit at start")
    campaign_serve.add_argument("--store",
                                help="result store path (default: "
                                     "<first spec>.results.jsonl)")
    campaign_serve.add_argument("--sharded",
                                action=argparse.BooleanOptionalAction,
                                default=None,
                                help="sharded <store>.d layout "
                                     "(default for serve: on)")
    campaign_serve.add_argument("--shards", type=int, default=None,
                                help="shard fan-out when creating a new "
                                     "sharded store (default: 8)")
    campaign_serve.add_argument("--inbox", metavar="DIR",
                                help="spool directory scanned for new spec "
                                     "files while serving")
    campaign_serve.add_argument("--workers", type=int, default=None,
                                help="parallel worker processes "
                                     "(default: os.cpu_count())")
    campaign_serve.add_argument("--idle-exit", type=float, default=None,
                                help="exit after this many idle seconds "
                                     "(default: serve forever with --inbox, "
                                     "exit when drained without)")
    campaign_serve.add_argument("--timeout", type=float, default=None,
                                help="per-run wall-clock timeout (seconds)")
    campaign_serve.add_argument("--retries", type=int, default=None,
                                help="extra attempts after a worker failure")
    campaign_serve.add_argument("--trace", action="store_true",
                                help="collect per-run control-plane traces")
    campaign_serve.add_argument("--no-preflight", action="store_true",
                                help="skip the lint pre-flight")
    campaign_serve.add_argument("--quiet", action="store_true",
                                help="suppress per-run progress on stderr")
    campaign_serve.add_argument("--json", action="store_true",
                                help="machine-readable job + aggregate "
                                     "summary on exit")
    campaign_serve.set_defaults(handler=_cmd_campaign_serve)

    campaign_watch = campaign_sub.add_parser(
        "watch", help="follow a serving campaign's streamed records "
                      "(tail -f over the events JSONL)")
    campaign_watch.add_argument("path",
                                help="store path, <store>.d directory, or "
                                     "events JSONL file")
    campaign_watch.add_argument("--count", type=int, default=None,
                                help="exit 0 after N records (exit 1 if the "
                                     "timeout expires first)")
    campaign_watch.add_argument("--timeout", type=float, default=None,
                                help="give up after this many seconds")
    campaign_watch.add_argument("--from-start", action="store_true",
                                help="replay the stream from the beginning "
                                     "instead of only new records")
    campaign_watch.set_defaults(handler=_cmd_campaign_watch)

    campaign_submit = campaign_sub.add_parser(
        "submit", help="spool a spec file into a serving scheduler's inbox")
    campaign_submit.add_argument("spec", help="campaign spec file to submit")
    campaign_submit.add_argument("--inbox", required=True, metavar="DIR",
                                 help="the serve --inbox directory")
    campaign_submit.add_argument("--json", action="store_true",
                                 help="machine-readable output")
    campaign_submit.set_defaults(handler=_cmd_campaign_submit)

    trace = subparsers.add_parser(
        "trace", help="render an exported control-plane trace "
                      "(timeline + per-rule summary)"
    )
    trace.add_argument("trace_file", help="trace JSONL file to render")
    trace.add_argument("--kinds", nargs="*",
                       help="only show these event kinds in the timeline")
    trace.add_argument("--limit", type=int, default=None,
                       help="cap the timeline at N events")
    trace.add_argument("--summary-only", action="store_true",
                       help="skip the timeline, print only the summary")
    trace.add_argument("--json", action="store_true",
                       help="emit the summary as JSON")
    trace.set_defaults(handler=_cmd_trace)

    compile_cmd = subparsers.add_parser(
        "compile", help="compile attack XML into executable Python code"
    )
    compile_cmd.add_argument("--system", required=True,
                             help="system-model XML file")
    compile_cmd.add_argument("--attack", required=True,
                             help="attack-states XML file")
    compile_cmd.add_argument("--attack-model",
                             help="attacker-capabilities XML file (validates)")
    compile_cmd.add_argument("--output", "-o",
                             help="write generated code here (default stdout)")
    compile_cmd.set_defaults(handler=_cmd_compile)

    lint = subparsers.add_parser(
        "lint", help="static-analyse attack descriptions (ATNxxx diagnostics)"
    )
    lint.add_argument("paths", nargs="*",
                      help="attack-states XML files to lint")
    lint.add_argument("--name", action="append", metavar="ATTACK",
                      help="lint a registered attack by name (repeatable)")
    lint.add_argument("--all", action="store_true",
                      help="lint every registered attack")
    lint.add_argument("--system",
                      help="system-model XML (default: the enterprise "
                           "evaluation topology)")
    lint.add_argument("--attack-model",
                      help="attacker-capabilities XML for the Γ_NC checks "
                           "(default: no-TLS attacker on every connection)")
    lint.add_argument("--quiet", action="store_true",
                      help="hide info-severity diagnostics")
    lint.add_argument("--json", action="store_true",
                      help="emit reports as JSON")
    lint.set_defaults(handler=_cmd_lint)

    graph = subparsers.add_parser(
        "graph", help="render an attack's state graph in Graphviz dot"
    )
    graph.add_argument("--system", required=True)
    graph.add_argument("--attack", required=True)
    graph.set_defaults(handler=_cmd_graph)

    show = subparsers.add_parser(
        "show", help="render an attack in the paper's Fig. 10(a) notation"
    )
    show.add_argument("--system", required=True)
    show.add_argument("--attack", required=True)
    show.set_defaults(handler=_cmd_show)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
