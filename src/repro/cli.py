"""Command-line interface: run the paper's experiments from a shell.

Usage::

    python -m repro suppression --controller pox
    python -m repro interruption
    python -m repro compliance
    python -m repro compile --system sys.xml --attack-model model.xml \\
        --attack attack.xml --output attack_module.py
    python -m repro graph --system sys.xml --attack attack.xml
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

CONTROLLERS = ("floodlight", "pox", "ryu")


def _cmd_suppression(args: argparse.Namespace) -> int:
    from repro.experiments import run_suppression_experiment

    if args.full:
        config = dict(ping_trials=60, iperf_trials=30, iperf_duration_s=10.0,
                      iperf_gap_s=10.0, warmup_s=30.0)
    else:
        config = dict(ping_trials=args.ping_trials, iperf_trials=args.iperf_trials,
                      iperf_duration_s=args.iperf_duration, iperf_gap_s=2.0,
                      warmup_s=5.0)
    controllers = CONTROLLERS if args.controller == "all" else (args.controller,)
    header = (f"{'controller':<11} {'mode':<9} {'throughput':>12} "
              f"{'median RTT':>12} {'loss':>6} {'PACKET_INs':>11}")
    print(header)
    print("-" * len(header))
    for controller in controllers:
        for attacked in (False, True):
            result = run_suppression_experiment(controller, attacked, **config)
            rtt = (f"{result.median_rtt_s * 1000:.2f} ms"
                   if result.median_rtt_s is not None else "inf (*)")
            throughput = (f"{result.mean_throughput_mbps:.2f} Mbps"
                          if not result.denial_of_service else "0.0 (*)")
            print(f"{controller:<11} {'attack' if attacked else 'baseline':<9} "
                  f"{throughput:>12} {rtt:>12} {result.ping_loss_rate:>6.0%} "
                  f"{result.packet_ins:>11}")
    return 0


def _cmd_interruption(args: argparse.Namespace) -> int:
    from repro.dataplane import FailMode
    from repro.experiments import run_interruption_experiment

    controllers = CONTROLLERS if args.controller == "all" else (args.controller,)
    for controller in controllers:
        for mode in (FailMode.STANDALONE, FailMode.SECURE):
            result = run_interruption_experiment(controller, mode)
            row = result.row()
            notes = []
            if result.unauthorized_increased_access:
                notes.append("UNAUTHORIZED ACCESS")
            if result.denial_of_service:
                notes.append("DENIAL OF SERVICE")
            if not result.interruption_happened:
                notes.append("phi2 never fired")
            print(f"{controller}/{mode.value}: "
                  + " ".join(f"{k}={v}" for k, v in row.items()
                             if k.startswith(("ext", "int")))
                  + (f"  [{'; '.join(notes)}]" if notes else ""))
    return 0


def _cmd_compliance(args: argparse.Namespace) -> int:
    from repro.experiments.compliance import run_compliance_suite

    report = run_compliance_suite()
    print(report.render())
    return 0 if report.all_passed else 1


def _load_system(path: str):
    from repro.core.compiler import parse_system_model_xml

    with open(path, encoding="utf-8") as handle:
        return parse_system_model_xml(handle.read())


def _cmd_compile(args: argparse.Namespace) -> int:
    from repro.core.compiler import (
        generate_attack_source,
        parse_attack_model_xml,
        parse_attack_states_xml,
    )

    system = _load_system(args.system)
    with open(args.attack, encoding="utf-8") as handle:
        attack = parse_attack_states_xml(handle.read(), system)
    if args.attack_model:
        with open(args.attack_model, encoding="utf-8") as handle:
            model = parse_attack_model_xml(handle.read(), system)
        attack.validate_against(model)
        print(f"validated against attacker model "
              f"({len(model.attacked_connections())} attacked connections)",
              file=sys.stderr)
    source = generate_attack_source(attack)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(source)
        print(f"wrote executable attack code to {args.output}", file=sys.stderr)
    else:
        print(source)
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    from repro.core.compiler import parse_attack_states_xml

    system = _load_system(args.system)
    with open(args.attack, encoding="utf-8") as handle:
        attack = parse_attack_states_xml(handle.read(), system)
    print(attack.graph.to_dot())
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    from repro.core.compiler import parse_attack_states_xml
    from repro.core.lang.render import render_attack_text

    system = _load_system(args.system)
    with open(args.attack, encoding="utf-8") as handle:
        attack = parse_attack_states_xml(handle.read(), system)
    print(render_attack_text(attack))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ATTAIN attack-injection framework (DSN 2017 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    suppression = subparsers.add_parser(
        "suppression", help="run the Fig. 11 flow-mod suppression experiment"
    )
    suppression.add_argument("--controller", default="all",
                             choices=CONTROLLERS + ("all",))
    suppression.add_argument("--full", action="store_true",
                             help="use the paper's full 60-ping/30-iperf timing")
    suppression.add_argument("--ping-trials", type=int, default=10)
    suppression.add_argument("--iperf-trials", type=int, default=2)
    suppression.add_argument("--iperf-duration", type=float, default=2.0)
    suppression.set_defaults(handler=_cmd_suppression)

    interruption = subparsers.add_parser(
        "interruption", help="run the Table II connection-interruption experiment"
    )
    interruption.add_argument("--controller", default="all",
                              choices=CONTROLLERS + ("all",))
    interruption.set_defaults(handler=_cmd_interruption)

    compliance = subparsers.add_parser(
        "compliance", help="run the OFTest-style switch compliance suite"
    )
    compliance.set_defaults(handler=_cmd_compliance)

    compile_cmd = subparsers.add_parser(
        "compile", help="compile attack XML into executable Python code"
    )
    compile_cmd.add_argument("--system", required=True,
                             help="system-model XML file")
    compile_cmd.add_argument("--attack", required=True,
                             help="attack-states XML file")
    compile_cmd.add_argument("--attack-model",
                             help="attacker-capabilities XML file (validates)")
    compile_cmd.add_argument("--output", "-o",
                             help="write generated code here (default stdout)")
    compile_cmd.set_defaults(handler=_cmd_compile)

    graph = subparsers.add_parser(
        "graph", help="render an attack's state graph in Graphviz dot"
    )
    graph.add_argument("--system", required=True)
    graph.add_argument("--attack", required=True)
    graph.set_defaults(handler=_cmd_graph)

    show = subparsers.add_parser(
        "show", help="render an attack in the paper's Fig. 10(a) notation"
    )
    show.add_argument("--system", required=True)
    show.add_argument("--attack", required=True)
    show.set_defaults(handler=_cmd_show)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
