"""A full mesh of non-blocking OS pipes between shard pool workers.

The SPMD barrier loop (:meth:`repro.sim.shard.ShardWorkerSession.handle`
with ``op="shard_run"``) exchanges one frame per directed worker pair per
epoch.  ``multiprocessing.Queue`` pays a feeder thread, a lock and a
pickle per transfer; a raw ``os.pipe`` moves the codec's single ``bytes``
blob with one syscall each side.

Deadlock safety: every write end is non-blocking and writes queue in a
per-peer pending buffer; :meth:`MeshEndpoint.recv` services *all*
readable pipes and flushes pending writes while it waits, so two workers
bursting oversized frames at each other always make progress.  The
barrier protocol is lock-step (a worker sends its round-``r`` frames
before collecting round ``r``, and cannot start round ``r+1`` until
round ``r`` is fully collected), so at most one frame per sender can
arrive ahead of the round being collected and per-peer buffers stay
bounded.

The mesh relies on file-descriptor inheritance and is therefore only
available under the ``fork`` start method; :func:`create_mesh` returns
``None`` otherwise and the pool falls back to queue-routed exchange.
"""

from __future__ import annotations

import os
import select
from collections import deque
from typing import Dict, List, Optional, Tuple

_READ_CHUNK = 1 << 16
_STALL_TIMEOUT_S = 600.0

#: matrix[i][j] = (read_fd, write_fd) of the i -> j pipe (None when i == j).
MeshMatrix = List[List[Optional[Tuple[int, int]]]]


def create_mesh(workers: int, start_method: str) -> Optional[MeshMatrix]:
    """Build the pipe matrix in the parent, before any worker forks."""
    if start_method != "fork" or workers < 2:
        return None
    matrix: MeshMatrix = []
    for i in range(workers):
        row: List[Optional[Tuple[int, int]]] = []
        for j in range(workers):
            row.append(None if i == j else os.pipe())
        matrix.append(row)
    return matrix


def close_mesh(matrix: Optional[MeshMatrix]) -> None:
    """Close every fd of the matrix (parent-side, after workers forked)."""
    if matrix is None:
        return
    for row in matrix:
        for pair in row:
            if pair is not None:
                for fd in pair:
                    try:
                        os.close(fd)
                    except OSError:
                        pass


class MeshEndpoint:
    """Worker ``index``'s view of the mesh: keeps its own read/write fds,
    closes every inherited fd it does not own."""

    def __init__(self, index: int, matrix: MeshMatrix) -> None:
        self.index = index
        self._wfd: Dict[int, int] = {}
        self._rfd: Dict[int, int] = {}
        for i, row in enumerate(matrix):
            for j, pair in enumerate(row):
                if pair is None:
                    continue
                read_fd, write_fd = pair
                if i == index:
                    self._wfd[j] = write_fd
                    os.close(read_fd)
                elif j == index:
                    self._rfd[i] = read_fd
                    os.close(write_fd)
                else:
                    os.close(read_fd)
                    os.close(write_fd)
        for fd in self._wfd.values():
            os.set_blocking(fd, False)
        for fd in self._rfd.values():
            os.set_blocking(fd, False)
        self._peer_by_rfd = {fd: peer for peer, fd in self._rfd.items()}
        self._rbuf: Dict[int, bytearray] = {p: bytearray() for p in self._rfd}
        self._frames: Dict[int, deque] = {p: deque() for p in self._rfd}
        self._pending: Dict[int, deque] = {p: deque() for p in self._wfd}

    @property
    def peers(self) -> List[int]:
        return sorted(self._rfd)

    # -- sending ------------------------------------------------------- #

    def send(self, peer: int, blob: bytes) -> None:
        """Queue one length-prefixed frame for ``peer`` and try to flush."""
        pending = self._pending[peer]
        pending.append(memoryview(len(blob).to_bytes(4, "little") + blob))
        self._flush(peer)

    def _flush(self, peer: int) -> bool:
        """Write as much pending data as the pipe accepts; True if drained."""
        pending = self._pending[peer]
        fd = self._wfd[peer]
        while pending:
            view = pending[0]
            try:
                written = os.write(fd, view)
            except BlockingIOError:
                return False
            if written == len(view):
                pending.popleft()
            else:
                pending[0] = view[written:]
        return True

    # -- receiving ----------------------------------------------------- #

    def recv(self, peer: int) -> bytes:
        """Block until one full frame from ``peer`` is available.

        While waiting, drains every readable pipe (frames from other
        peers are queued for their own ``recv``) and flushes any pending
        outbound data, which is what makes the mesh deadlock-free.
        """
        frames = self._frames[peer]
        while not frames:
            rlist = list(self._rfd.values())
            wlist = [self._wfd[p] for p, q in self._pending.items() if q]
            readable, writable, _ = select.select(
                rlist, wlist, [], _STALL_TIMEOUT_S)
            if not readable and not writable:
                raise RuntimeError(
                    f"mesh worker {self.index} stalled waiting on "
                    f"worker {peer}"
                )
            for fd in readable:
                self._drain_fd(fd)
            if writable:
                writer_by_fd = {self._wfd[p]: p for p in self._wfd}
                for fd in writable:
                    self._flush(writer_by_fd[fd])
        return frames.popleft()

    def _drain_fd(self, fd: int) -> None:
        sender = self._peer_by_rfd[fd]
        buf = self._rbuf[sender]
        while True:
            try:
                chunk = os.read(fd, _READ_CHUNK)
            except BlockingIOError:
                break
            if not chunk:
                raise RuntimeError(
                    f"mesh worker {self.index}: peer {sender} closed its pipe"
                )
            buf.extend(chunk)
            if len(chunk) < _READ_CHUNK:
                break
        frames = self._frames[sender]
        while len(buf) >= 4:
            length = int.from_bytes(buf[:4], "little")
            if len(buf) < 4 + length:
                break
            frames.append(bytes(buf[4:4 + length]))
            del buf[:4 + length]

    def flush_all(self) -> None:
        """Opportunistically push out whatever the pipes will take."""
        for peer, pending in self._pending.items():
            if pending:
                self._flush(peer)

    def close(self) -> None:
        for fd in list(self._wfd.values()) + list(self._rfd.values()):
            try:
                os.close(fd)
            except OSError:
                pass
        self._wfd.clear()
        self._rfd.clear()
