"""Generator-based processes on top of the event engine.

A :class:`Process` wraps a Python generator; the generator yields either a
float (sleep for that many simulated seconds) or a :class:`Signal` (block
until the signal fires).  This gives hosts, monitors, and experiment
timelines a readable sequential style while remaining fully deterministic.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, List, Optional, Union

from repro.sim.engine import SimulationEngine


class Signal:
    """A broadcast wake-up primitive processes can wait on.

    ``fire(value)`` wakes every currently-waiting process, delivering
    ``value`` as the result of its ``yield``.  Signals may fire repeatedly.
    """

    def __init__(self, engine: SimulationEngine, name: str = "signal") -> None:
        self._engine = engine
        self.name = name
        self._waiters: List["Process"] = []
        self.fire_count = 0
        self.last_value: Any = None

    def wait(self, process: "Process") -> None:
        self._waiters.append(process)

    def fire(self, value: Any = None) -> None:
        """Wake all waiters at the current simulated instant."""
        self.fire_count += 1
        self.last_value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self._engine.schedule(0.0, process._resume, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Signal {self.name} waiters={len(self._waiters)}>"


SimYield = Union[float, int, Signal]


def sleep(seconds: float) -> float:
    """Readable alias used inside process generators: ``yield sleep(2.0)``."""
    if seconds < 0:
        raise ValueError(f"sleep duration must be non-negative, got {seconds!r}")
    return float(seconds)


class Process:
    """A sequential activity driven by the simulation engine.

    The wrapped generator yields floats (sleep) or :class:`Signal` objects
    (wait).  When the generator returns, the process is finished; its
    return value (via ``return value`` / ``StopIteration.value``) is kept
    in :attr:`result`.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        generator: Generator[SimYield, Any, Any],
        name: str = "process",
    ) -> None:
        self._engine = engine
        self._generator = generator
        self.name = name
        self.finished = False
        self.result: Any = None
        self.failure: Optional[BaseException] = None
        self._done_signal = Signal(engine, name=f"{name}.done")

    @classmethod
    def spawn(
        cls,
        engine: SimulationEngine,
        generator: Generator[SimYield, Any, Any],
        name: str = "process",
        delay: float = 0.0,
    ) -> "Process":
        """Create a process and schedule its first step ``delay`` s from now."""
        process = cls(engine, generator, name=name)
        engine.schedule(delay, process._resume, None)
        return process

    @property
    def done_signal(self) -> Signal:
        """Fires once, with :attr:`result`, when the process completes."""
        return self._done_signal

    def _resume(self, value: Any) -> None:
        if self.finished:
            return
        try:
            yielded = self._generator.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self._done_signal.fire(self.result)
            return
        except Exception as exc:
            self.finished = True
            self.failure = exc
            self._done_signal.fire(exc)
            raise
        self._block_on(yielded)

    def _block_on(self, yielded: SimYield) -> None:
        if isinstance(yielded, Signal):
            yielded.wait(self)
        elif isinstance(yielded, (int, float)):
            self._engine.schedule(float(yielded), self._resume, None)
        else:
            raise TypeError(
                f"process {self.name!r} yielded unsupported value {yielded!r}; "
                "yield a float (sleep) or a Signal (wait)"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "running"
        return f"<Process {self.name} {state}>"


def all_finished(processes: Iterable[Process]) -> bool:
    """True when every process in ``processes`` has completed."""
    return all(process.finished for process in processes)
