"""Seeded randomness utilities.

Every component that needs randomness (the FUZZMESSAGE action, jittered
traffic generators) derives a private stream from one root seed so that a
scenario's full event trace is reproducible.
"""

from __future__ import annotations

import hashlib
import random
from typing import List


class SeededRng:
    """A named, hierarchical random stream.

    ``SeededRng(42).child("fuzz")`` always yields the same stream for the
    same parent seed and name, independent of how many other children were
    derived or in what order.
    """

    def __init__(self, seed: int, path: str = "root") -> None:
        self.seed = int(seed)
        self.path = path
        self._random = random.Random(self._derive(self.seed, path))

    @staticmethod
    def _derive(seed: int, path: str) -> int:
        digest = hashlib.sha256(f"{seed}:{path}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def child(self, name: str) -> "SeededRng":
        """Derive an independent named sub-stream."""
        return SeededRng(self.seed, f"{self.path}/{name}")

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        return self._random.randint(low, high)

    def random(self) -> float:
        return self._random.random()

    def choice(self, sequence):
        return self._random.choice(sequence)

    def random_bytes(self, length: int) -> bytes:
        return bytes(self._random.getrandbits(8) for _ in range(length))

    def flip_bits(self, payload: bytes, flips: int) -> bytes:
        """Flip ``flips`` randomly chosen bits in ``payload`` (for fuzzing)."""
        if not payload or flips <= 0:
            return payload
        mutable = bytearray(payload)
        for _ in range(flips):
            index = self._random.randrange(len(mutable))
            bit = self._random.randrange(8)
            mutable[index] ^= 1 << bit
        return bytes(mutable)

    def sample_indices(self, population: int, count: int) -> List[int]:
        count = min(count, population)
        return sorted(self._random.sample(range(population), count))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SeededRng seed={self.seed} path={self.path}>"
