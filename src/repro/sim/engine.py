"""The discrete-event simulation engine."""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.events import Event, MESSAGE_PRIORITY


class SimulationError(Exception):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


class SimulationEngine:
    """A single-clock discrete-event simulator.

    All network elements in the reproduction share one engine instance.  The
    engine guarantees a deterministic total order over events: ties on
    simulated time are broken first by priority and then by scheduling
    sequence number.  This mirrors the paper's single-threaded, centralized
    runtime injector, which "imposes a total ordering on messages seen by
    the runtime injector" (Section VI-C).

    The heap holds flat ``(time, priority, seq, event)`` entries rather than
    ``Event`` objects, so every sift during push/pop compares native tuples
    in C instead of invoking ``Event.__lt__``.  Sequence numbers are unique
    within a priority band (monotone integers for local events, message-key
    tuples in the :data:`MESSAGE_PRIORITY` band), so the trailing event
    object is never reached by a comparison.
    """

    #: Tombstone compaction thresholds: compact when the heap holds at
    #: least the current floor of events and fewer than half are live.
    #: Below the floor a compaction saves nothing; above it the 50% rule
    #: keeps total compaction work amortized O(1) per cancel (each
    #: compaction removes at least as many tombstones as live events
    #: retained).  The floor itself scales with the live-event count: a
    #: large fabric legitimately holds tens of thousands of live timers,
    #: and a fixed floor of 64 would re-heapify that entire population on
    #: nearly every cancel.  After each sweep the floor is raised to twice
    #: the surviving live count (never below COMPACT_MIN_QUEUE), so the
    #: next sweep happens only after the tombstones again outnumber the
    #: live events.
    COMPACT_MIN_QUEUE = 64
    COMPACT_LIVE_NUM = 1
    COMPACT_LIVE_DEN = 2

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, Any, Event]] = []
        self._running = False
        self._processed = 0
        self._live = 0
        self._compact_min = self.COMPACT_MIN_QUEUE
        self.heap_compactions = 0
        #: Tombstones physically removed from the heap so far, whether by a
        #: compaction sweep or popped at the head by step/run/_peek.  Along
        #: with ``_live`` this keeps ``pending_events`` exact at all times:
        #: heap_size == pending_events + (tombstones created - swept).
        self.heap_tombstones_swept = 0
        #: Sharded execution bookkeeping (see :mod:`repro.sim.shard`).  A
        #: standalone engine is its own single shard; a region engine run
        #: under a ShardedSimulation is stamped with its place in the
        #: partition and counts the messages it exchanged across shard
        #: boundaries, so ``metrics()`` stays accurate at scale.
        self.shards = 1
        self.shard_id = 0
        self.cross_shard_messages = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still in the queue.

        Maintained as a counter on schedule/cancel/fire — O(1), not a queue
        scan, so metrics snapshots stay cheap on large simulations.
        """
        return self._live

    def _event_cancelled(self) -> None:
        # Called by Event.cancel(); the tombstone stays heap-resident until
        # popped or compacted away, but stops counting as pending
        # immediately.
        self._live -= 1
        queue = self._queue
        if (
            len(queue) >= self._compact_min
            and self._live * self.COMPACT_LIVE_DEN
            < len(queue) * self.COMPACT_LIVE_NUM
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events and re-heapify.

        In-place (``queue[:] =``) so the local heap alias held by a
        ``run()`` in progress keeps seeing the compacted list; cancel-heavy
        workloads (liveness probes, expiry timers) otherwise degrade every
        heap operation with dead weight.
        """
        queue = self._queue
        before = len(queue)
        queue[:] = [entry for entry in queue if not entry[3].cancelled]
        heapq.heapify(queue)
        self.heap_compactions += 1
        self.heap_tombstones_swept += before - len(queue)
        # Scale the floor with the surviving population (and let it decay
        # back toward the static minimum as the simulation empties out).
        self._compact_min = max(self.COMPACT_MIN_QUEUE, 2 * self._live)

    @property
    def processed_events(self) -> int:
        """Total number of events fired so far."""
        return self._processed

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r} before current time t={self._now!r}"
            )
        event = Event(time, callback, args, priority=priority)
        event._engine = self
        heapq.heappush(self._queue, (event.time, priority, event.seq, event))
        self._live += 1
        return event

    def schedule_message(
        self,
        time: float,
        seq: Any,
        callback: Callable[..., Any],
        *args: Any,
    ) -> Event:
        """Schedule a cross-shard message delivery with a canonical key.

        The event sorts in the :data:`MESSAGE_PRIORITY` band under ``seq``
        (a message-identity tuple such as ``(channel, sender_seq)``) and
        does **not** consume the engine's event sequence counter.  Region
        execution therefore produces identical event orderings no matter
        how the barrier grouped deliveries into epochs — the invariant that
        lets adaptive lookahead stay byte-identical to fixed-width epochs.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot deliver at t={time!r} before current time t={self._now!r}"
            )
        event = Event(time, callback, args, priority=MESSAGE_PRIORITY, seq=seq)
        event._engine = self
        heapq.heappush(self._queue, (event.time, MESSAGE_PRIORITY, seq, event))
        self._live += 1
        return event

    def step(self) -> Optional[Event]:
        """Fire the single next non-cancelled event; return it (or None)."""
        queue = self._queue
        while queue:
            event = heapq.heappop(queue)[3]
            if event.cancelled:
                self.heap_tombstones_swept += 1
                continue
            self._live -= 1
            event._engine = None  # late cancel() must not re-decrement
            self._now = event.time
            self._processed += 1
            event.fire()
            return event
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` passes, or the budget ends.

        Returns the number of events fired by this call.  ``until`` is an
        absolute simulated time; events scheduled exactly at ``until`` are
        fired.  After the run the clock is advanced to ``until`` if it was
        provided and the queue drained early.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        queue = self._queue
        heappop = heapq.heappop
        limit = until if until is not None else float("inf")
        budget = max_events if max_events is not None else (1 << 62)
        fired = 0
        try:
            while queue:
                entry = queue[0]
                t = entry[0]
                if t > limit or fired >= budget:
                    # Beyond the horizon (or out of budget): leave the head
                    # in place — the heap is only ever popped for events
                    # that actually fire.
                    break
                # Batch every due event at this timestamp: time is monotone
                # within the batch, so the horizon needs no re-test.
                self._now = t
                while True:
                    heappop(queue)
                    event = entry[3]
                    if event.cancelled:
                        self.heap_tombstones_swept += 1
                    else:
                        self._live -= 1
                        event._engine = None  # late cancel() must not re-decrement
                        self._processed += 1
                        event.callback(*event.args)
                        fired += 1
                        if fired >= budget:
                            break
                    if not queue:
                        break
                    entry = queue[0]
                    if entry[0] != t:
                        break
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return fired

    def _peek(self) -> Optional[Event]:
        """Return the next live event without firing it (drops cancelled).

        Tombstones popped here are credited to ``heap_tombstones_swept``,
        the same ledger the compaction sweep uses, so ``pending_events``
        and the heap-size metrics stay exact regardless of which path
        removed a cancelled entry.
        """
        queue = self._queue
        while queue:
            entry = queue[0]
            if entry[3].cancelled:
                heapq.heappop(queue)
                self.heap_tombstones_swept += 1
                continue
            return entry[3]
        return None

    def next_event_time(self) -> Optional[float]:
        """The time of the next live event, or None when the queue is empty.

        Used by the sharded coordinator to fast-forward epoch barriers
        over globally idle stretches of simulated time.
        """
        event = self._peek()
        return event.time if event is not None else None

    def drain(self, horizon: float = 1e9, max_events: int = 10_000_000) -> int:
        """Run to completion with a generous safety budget (for tests)."""
        return self.run(until=horizon, max_events=max_events)

    def snapshot(self) -> Tuple[float, int, int]:
        """Return ``(now, pending, processed)`` for debugging/metrics."""
        return (self._now, self.pending_events, self._processed)

    def metrics(self) -> dict:
        """Engine health counters for metrics snapshots and reports."""
        return {
            "now": self._now,
            "pending_events": self._live,
            "processed_events": self._processed,
            "heap_size": len(self._queue),
            "heap_tombstones": len(self._queue) - self._live,
            "heap_compactions": self.heap_compactions,
            "heap_tombstones_swept": self.heap_tombstones_swept,
            "shards": self.shards,
            "shard_id": self.shard_id,
            "cross_shard_messages": self.cross_shard_messages,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SimulationEngine t={self._now:.6f} pending={self.pending_events} "
            f"processed={self._processed}>"
        )
