"""Event primitives for the discrete-event simulation engine."""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional, Tuple


class EventCancelled(Exception):
    """Raised when interacting with an event that has been cancelled."""


#: Priority band reserved for cross-shard message dispatch events.  All
#: locally scheduled events use small priorities (0 by convention); dispatch
#: events scheduled by :meth:`SimulationEngine.schedule_message` sort after
#: every local event at the same instant and carry tuple sequence keys that
#: are pure functions of the message identity — never drawn from the
#: region's event counter.  Keeping the bands disjoint means integer and
#: tuple sequence numbers are never compared against each other, and region
#: execution cannot observe how the barrier windowed its message deliveries.
MESSAGE_PRIORITY = 1 << 30


class Event:
    """A scheduled callback at a point in simulated time.

    Events are ordered by ``(time, priority, seq)``.  The monotonically
    increasing sequence number guarantees a deterministic total order even
    for events scheduled at exactly the same simulated instant, which is
    essential for reproducible attack traces.  The key is precomputed once
    at construction (``self.key``) so heap maintenance compares native
    tuples instead of calling back into Python per comparison.
    """

    _seq_counter = itertools.count()

    __slots__ = ("time", "priority", "seq", "key", "callback", "args", "cancelled", "_engine")

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        priority: int = 0,
        seq: Any = None,
    ) -> None:
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time!r}")
        self.time = float(time)
        self.priority = priority
        if seq is None:
            seq = next(Event._seq_counter)
        self.seq = seq
        self.key = (self.time, priority, seq)
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._engine: Optional[Any] = None

    def cancel(self) -> None:
        """Mark the event so the engine skips it when it comes due."""
        if not self.cancelled:
            self.cancelled = True
            if self._engine is not None:
                self._engine._event_cancelled()

    def fire(self) -> None:
        """Invoke the callback unless the event has been cancelled."""
        if self.cancelled:
            raise EventCancelled(f"event {self!r} was cancelled")
        self.callback(*self.args)

    def sort_key(self) -> Tuple[float, int, Any]:
        return self.key

    def __lt__(self, other: "Event") -> bool:
        return self.key < other.key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.callback, "__name__", repr(self.callback))
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} {name}{state}>"


class Timer:
    """A cancellable, restartable timer built on engine events.

    Used by switches for echo-liveness timeouts and by flow tables for
    idle/hard timeout expiry.
    """

    def __init__(self, engine: "Any", callback: Callable[[], None]) -> None:
        self._engine = engine
        self._callback = callback
        self._event: Optional[Event] = None

    @property
    def pending(self) -> bool:
        return self._event is not None and not self._event.cancelled

    def start(self, delay: float) -> None:
        """(Re)start the timer to fire ``delay`` seconds from now."""
        self.cancel()
        self._event = self._engine.schedule(delay, self._fire)

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()
