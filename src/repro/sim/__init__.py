"""Deterministic discrete-event simulation engine.

This package is the substrate that replaces the paper's GENI testbed: all
network elements (hosts, switches, controllers, links, and the ATTAIN
runtime injector itself) are processes scheduled on a single simulated
clock.  Identical seeds and identical scenarios produce identical event
traces, which is what makes the security metrics in the evaluation
unit-testable.
"""

from repro.sim.engine import SimulationEngine, SimulationError
from repro.sim.events import Event, EventCancelled
from repro.sim.process import Process, Signal, sleep
from repro.sim.rng import SeededRng
from repro.sim.shard import (
    RegionContext,
    ShardRegion,
    ShardedSimulation,
    assign_regions,
)

__all__ = [
    "Event",
    "EventCancelled",
    "Process",
    "RegionContext",
    "SeededRng",
    "ShardRegion",
    "ShardedSimulation",
    "Signal",
    "SimulationEngine",
    "SimulationError",
    "assign_regions",
    "sleep",
]
