"""Shared-nothing sharded execution of a partitioned simulation.

The monolithic engine runs every device of a fabric on one event heap.
For generated fabrics (hundreds of switches) this module splits the
simulation into *regions* — disjoint device groups produced by
:func:`repro.dataplane.fabrics.partition_topology` — each with its own
:class:`~repro.sim.engine.SimulationEngine`, its own isolated copies of
every process-global counter, and its own slice of the device graph.
Regions exchange frames and control-plane bytes as explicit messages at
conservative epoch barriers.

Determinism contract
--------------------

The region partition is a pure function of the topology and the requested
region count; the *shard count* (how many worker processes execute the
regions) only groups regions onto execution units.  Every source of
nondeterminism is region-local:

* each region has a private event heap and private sequence counters
  (:class:`RegionContext`), so event tie-breaking never depends on what
  other regions did;
* cross-region messages carry a ``(arrival, channel, seq)`` key and are
  sorted before delivery, so the receiving heap ingests them in one
  deterministic order;
* conservative barriers: every boundary channel has latency >= the
  lookahead ``L``, and epochs are ``L`` wide, so a message generated in
  epoch ``k`` can only arrive in epoch ``k+1`` or later — no region ever
  needs to roll back.

Consequently a run's results (metrics, traces) are byte-identical whether
its regions execute inline in one process or spread over any number of
pool workers.

Epoch fast-forward
------------------

At every barrier the coordinator knows each region's next event time and
all undelivered message arrivals; the next epoch jumps directly to the
earliest of these instead of grinding through empty ``L``-wide slots, so
sparse stretches (liveness timers, ping intervals) cost one barrier per
occupied epoch, not one per lookahead quantum.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.dataplane.link import _Direction
from repro.sim.engine import SimulationEngine

#: A cross-region message: (arrival_time, channel, seq, op, payload).
#: Tuples sort naturally into the deterministic delivery order.
ShardMessage = Tuple[float, str, int, str, bytes]

#: Channel-op vocabulary.
OP_FRAME = "frame"   # a data-plane frame crossing a boundary link
OP_DATA = "data"     # control-plane stream bytes
OP_OPEN = "open"     # control-plane dial
OP_CLOSE = "close"   # control-plane teardown


class RegionContext:
    """Region-private instances of every process-global counter.

    The simulation's determinism leans on process-global sequences (event
    tie-breaks, ICMP identifiers, OpenFlow xids, the FastFrame intern
    pool).  Sharding gives each region its own copies and swaps them into
    place around every slice of region execution, so the sequences a
    region observes depend only on that region's own history.
    """

    def __init__(self) -> None:
        from repro.netlib import fastframe

        self.event_seq = itertools.count()
        self.flow_order = itertools.count()
        self.icmp_id = itertools.count(1)
        self.ephemeral = itertools.count(49152)
        self.msg_id = itertools.count(1)
        self.xid_next = 1
        self.frame_pool: Dict[bytes, object] = {}
        self.frame_counters: Dict[str, int] = {key: 0 for key in fastframe.counters}
        self._saved: Optional[tuple] = None

    def __enter__(self) -> "RegionContext":
        from repro.core.lang.properties import InterposedMessage
        from repro.dataplane.flowtable import FlowEntry
        from repro.dataplane.host import Host
        from repro.netlib import fastframe
        from repro.openflow import messages as of_messages
        from repro.sim.events import Event

        if self._saved is not None:
            raise RuntimeError("RegionContext is not re-entrant")
        self._saved = (
            Event._seq_counter,
            FlowEntry._order,
            Host._icmp_id,
            Host._ephemeral,
            InterposedMessage._id_counter,
            of_messages._xid_next,
            fastframe._pool,
            fastframe.counters,
        )
        Event._seq_counter = self.event_seq
        FlowEntry._order = self.flow_order
        Host._icmp_id = self.icmp_id
        Host._ephemeral = self.ephemeral
        InterposedMessage._id_counter = self.msg_id
        of_messages._xid_next = self.xid_next
        fastframe._pool = self.frame_pool
        fastframe.counters = self.frame_counters
        return self

    def __exit__(self, *exc_info) -> None:
        from repro.core.lang.properties import InterposedMessage
        from repro.dataplane.flowtable import FlowEntry
        from repro.dataplane.host import Host
        from repro.netlib import fastframe
        from repro.openflow import messages as of_messages
        from repro.sim.events import Event

        # xids are a plain module int, so read the advanced value back.
        self.xid_next = of_messages._xid_next
        (
            Event._seq_counter,
            FlowEntry._order,
            Host._icmp_id,
            Host._ephemeral,
            InterposedMessage._id_counter,
            of_messages._xid_next,
            fastframe._pool,
            fastframe.counters,
        ) = self._saved
        self._saved = None


# --------------------------------------------------------------------- #
# Boundary plumbing
# --------------------------------------------------------------------- #

class BoundaryTx(_Direction):
    """The local transmit half of a cross-region data link.

    Reuses the stock direction's serialization timeline (busy_until,
    drop-tail queue) byte for byte, but the computed arrival becomes a
    cross-region message instead of a local delivery; a local no-op at
    the arrival instant keeps the queue-occupancy dynamics identical to
    an unsharded link.
    """

    __slots__ = ("emit", "chan")

    def __init__(
        self,
        engine: SimulationEngine,
        bandwidth: float,
        latency: float,
        queue_limit: int,
        emit: Callable[[str, float, str, bytes], None],
        chan: str,
    ) -> None:
        super().__init__(engine, bandwidth, latency, queue_limit)
        self.emit = emit
        self.chan = chan
        self.deliver = self._no_local_delivery  # satisfies transmit()'s guard

    @staticmethod
    def _no_local_delivery(data: bytes) -> None:  # pragma: no cover
        raise AssertionError("boundary direction delivers remotely")

    def _schedule_arrival(self, arrival: float, data: bytes) -> None:
        self.emit(self.chan, arrival, OP_FRAME, data)
        self.engine.schedule_at(arrival, self._depart)

    def _depart(self) -> None:
        self.queued = max(0, self.queued - 1)


class BoundaryHalf:
    """What a region's :class:`~repro.dataplane.network.Network` sees for
    a link whose far endpoint lives in another region."""

    __slots__ = ("tx", "_deliver")

    def __init__(self, tx: BoundaryTx) -> None:
        self.tx = tx
        self._deliver: Optional[Callable[[bytes], None]] = None

    def transmit(self, data: bytes) -> bool:
        return self.tx.transmit(data)

    def attach(self, deliver: Callable[[bytes], None]) -> None:
        self._deliver = deliver

    def deliver(self, data: bytes) -> None:
        if self._deliver is not None:
            self._deliver(data)


class BoundaryControlChannel:
    """A duck-typed :class:`~repro.dataplane.control.ControlChannel` whose
    peer lives in another region.

    Sends become cross-region messages with arrival ``now + latency`` —
    the same timeline a local channel's ``engine.schedule`` would produce.
    The boundary latency is always >= the sharding lookahead, so these
    arrivals respect the barrier contract.
    """

    __slots__ = ("owner", "latency_s", "name", "label", "peer", "open",
                 "bytes_sent", "bytes_delivered", "_engine", "_emit",
                 "_out_chan")

    def __init__(
        self,
        engine: SimulationEngine,
        owner,
        latency_s: float,
        name: str,
        emit: Callable[[str, float, str, bytes], None],
        out_chan: str,
    ) -> None:
        self._engine = engine
        self.owner = owner
        self.latency_s = latency_s
        self.name = name
        self.label = name
        self.peer = None  # the far half is in another region
        self.open = True
        self.bytes_sent = 0
        self.bytes_delivered = 0
        self._emit = emit
        self._out_chan = out_chan

    def send(self, data: bytes) -> None:
        if not self.open:
            return
        self.bytes_sent += len(data)
        self._emit(self._out_chan, self._engine.now + self.latency_s,
                   OP_DATA, bytes(data))

    def close(self) -> None:
        if not self.open:
            return
        self.open = False
        self._emit(self._out_chan, self._engine.now + self.latency_s,
                   OP_CLOSE, b"")

    # Inbound side, invoked by the region dispatcher at the arrival time.
    def _deliver(self, data: bytes) -> None:
        if not self.open:
            return
        self.bytes_delivered += len(data)
        self.owner.bytes_received(self, data)

    def _peer_closed(self) -> None:
        if not self.open:
            return
        self.open = False
        self.owner.channel_closed(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.open else "closed"
        return f"<BoundaryControlChannel {self.name} {state}>"


# --------------------------------------------------------------------- #
# Region protocol
# --------------------------------------------------------------------- #

class ShardRegion:
    """Base for one shard-executable region of a simulation.

    Subclasses (the fabric builder in :mod:`repro.experiments.fabric`)
    populate the engine/devices inside ``self.ctx``; this base carries the
    message plumbing every region shares.
    """

    def __init__(self, rid: int, total_regions: int) -> None:
        self.rid = rid
        self.ctx = RegionContext()
        self.engine = SimulationEngine()
        self.engine.shards = total_regions
        self.engine.shard_id = rid
        self.outbox: List[Tuple[int, ShardMessage]] = []
        self.messages_received = 0
        self._out_seq = itertools.count()
        #: chan -> BoundaryHalf for inbound boundary-link frames.
        self.link_sinks: Dict[str, BoundaryHalf] = {}
        #: chan -> BoundaryControlChannel for inbound control streams.
        self.ctrl_sinks: Dict[str, BoundaryControlChannel] = {}
        #: chan -> destination region id.
        self.chan_dest: Dict[str, int] = {}

    # -- outbound ------------------------------------------------------ #

    def emit(self, chan: str, arrival: float, op: str, payload: bytes) -> None:
        dest = self.route(chan)
        self.engine.cross_shard_messages += 1
        self.outbox.append(
            (dest, (arrival, chan, next(self._out_seq), op, payload))
        )

    def route(self, chan: str) -> int:
        return self.chan_dest[chan]

    # -- inbound ------------------------------------------------------- #

    def deliver(self, messages: Sequence[ShardMessage]) -> None:
        """Schedule a barrier's worth of inbound messages.

        Sorting by the full ``(arrival, chan, seq)`` key before scheduling
        fixes the event-sequence assignment, which is what makes delivery
        deterministic regardless of how the coordinator batched them.
        """
        with self.ctx:
            for message in sorted(messages):
                arrival, chan, _seq, op, payload = message
                self.messages_received += 1
                self.engine.schedule_at(arrival, self._dispatch, chan, op,
                                        payload)

    def _dispatch(self, chan: str, op: str, payload: bytes) -> None:
        if op == OP_FRAME:
            self.link_sinks[chan].deliver(payload)
            return
        if op == OP_OPEN:
            self.control_opened(chan)
            return
        sink = self.ctrl_sinks.get(chan)
        if sink is None:
            return  # stream raced a teardown; bytes vanish like closed TCP
        if op == OP_DATA:
            sink._deliver(payload)
        elif op == OP_CLOSE:
            sink._peer_closed()

    def control_opened(self, chan: str) -> None:
        """Hook: a far region dialled a control connection (ctrl region)."""
        raise NotImplementedError(
            f"region {self.rid} received an unexpected control dial on {chan!r}"
        )

    # -- execution ----------------------------------------------------- #

    def run_until(self, until: float) -> Tuple[List[Tuple[int, ShardMessage]], Optional[float]]:
        """Advance this region's clock to ``until``; drain the outbox."""
        with self.ctx:
            self.engine.run(until=until)
            out = self.outbox
            self.outbox = []
            next_time = self.engine.next_event_time()
        return out, next_time

    def collect(self) -> Dict[str, Any]:
        """Region results (metrics, workload counters, trace events)."""
        with self.ctx:
            return self._collect()

    def _collect(self) -> Dict[str, Any]:
        return {"engine": self.engine.metrics()}


# --------------------------------------------------------------------- #
# Executors
# --------------------------------------------------------------------- #

def _build_regions(config: Dict[str, Any], rids: Sequence[int]) -> Dict[int, ShardRegion]:
    # The builder lives with the experiment (it knows about controllers,
    # workloads, fabrics); imported lazily to keep the sim layer free of
    # upward dependencies at import time.
    from repro.experiments.fabric import build_fabric_regions

    return {region.rid: region for region in build_fabric_regions(config, rids)}


class ShardWorkerSession:
    """Per-process state behind the pool's ``shard_*`` tasks.

    Lives inside a pool worker; the coordinator drives it with
    ``shard_init`` / ``shard_epoch`` / ``shard_collect`` messages.  When
    the pool wires peer queues, cross-shard messages travel directly
    between workers at each barrier and the coordinator only sees tiny
    control replies; without queues (legacy / single worker) the
    coordinator routes messages through the epoch replies instead.
    """

    def __init__(self, peer_queues=None, peer_index: Optional[int] = None) -> None:
        self.regions: Dict[int, ShardRegion] = {}
        self.cpu_s = 0.0
        self._peers = list(peer_queues) if peer_queues else None
        self._index = peer_index
        self._owner: Dict[int, int] = {}
        self._round = 0
        self._local_inbox: Dict[int, List[ShardMessage]] = {}
        self._deferred: Dict[Tuple[int, int], Dict[int, List[ShardMessage]]] = {}

    def handle(self, task: Dict[str, Any]) -> Dict[str, Any]:
        op = task["op"]
        if op == "shard_init":
            started = time.process_time()
            from repro.campaign.runner import reset_run_state

            reset_run_state()
            self.regions = _build_regions(task["config"], task["rids"])
            self._owner = {
                rid: worker
                for worker, rids in enumerate(task.get("assignment") or [])
                for rid in rids
            }
            self._round = 0
            self._local_inbox = {}
            self._deferred = {}
            self.cpu_s += time.process_time() - started
            return {"status": "ok", "rids": sorted(self.regions)}
        if op == "shard_epoch":
            started = time.process_time()
            if self._peers is not None and len(self._peers) > 1:
                reply = self._peer_epoch(task["until"])
            else:
                outbox, next_time = run_region_epoch(
                    self.regions, task["until"], task.get("inbox") or {}
                )
                reply = {"status": "ok", "outbox": outbox,
                         "next_time": next_time}
            self.cpu_s += time.process_time() - started
            return reply
        if op == "shard_collect":
            started = time.process_time()
            results = {rid: region.collect()
                       for rid, region in sorted(self.regions.items())}
            self.cpu_s += time.process_time() - started
            return {"status": "ok", "regions": results, "cpu_s": self.cpu_s}
        raise ValueError(f"unknown shard op {op!r}")

    def _peer_epoch(self, until: float) -> Dict[str, Any]:
        """One barrier with peer-to-peer message exchange.

        Every worker puts exactly one (possibly empty) batch per round on
        every other worker's queue, so collecting one batch per peer for
        the previous round is a complete exchange.  Queue puts are
        asynchronous (a feeder thread flushes them), so a fast peer's
        round ``r+1`` batch can arrive before a slow peer's round ``r``
        one — ahead-of-round batches are parked in ``_deferred`` until
        their round comes up.  ``deliver`` re-sorts by the total key
        ``(t, chan, seq)``, so neither the sender interleaving nor the
        merge order can leak into results.
        """
        inbox = self._local_inbox
        self._local_inbox = {}
        if self._round > 0:
            want = self._round - 1
            pending = set(range(len(self._peers))) - {self._index}
            for sender in sorted(pending):
                batch = self._deferred.pop((sender, want), None)
                if batch is not None:
                    pending.discard(sender)
                    for rid, messages in batch.items():
                        inbox.setdefault(rid, []).extend(messages)
            while pending:
                sender, round_no, batch = self._peers[self._index].get()
                if round_no == want and sender in pending:
                    pending.discard(sender)
                    for rid, messages in batch.items():
                        inbox.setdefault(rid, []).extend(messages)
                elif round_no > want:
                    self._deferred[(sender, round_no)] = batch
                else:
                    raise RuntimeError(
                        f"shard worker {self._index} got a duplicate or "
                        f"stale batch from worker {sender} for round "
                        f"{round_no} while collecting round {want}"
                    )
        outbox, next_time = run_region_epoch(self.regions, until, inbox)
        grouped: List[Dict[int, List[ShardMessage]]] = [
            {} for _ in self._peers
        ]
        min_arrival: Optional[float] = None
        for dest, message in outbox:
            grouped[self._owner[dest]].setdefault(dest, []).append(message)
            if min_arrival is None or message[0] < min_arrival:
                min_arrival = message[0]
        for worker, queue in enumerate(self._peers):
            if worker != self._index:
                queue.put((self._index, self._round, grouped[worker]))
        # Messages between this worker's own regions stay local: they are
        # delivered at the next barrier, exactly as a coordinator-routed
        # round trip would have.
        self._local_inbox = grouped[self._index]
        self._round += 1
        return {"status": "ok", "next_time": next_time,
                "min_arrival": min_arrival, "sent": len(outbox)}


def run_region_epoch(
    regions: Dict[int, ShardRegion],
    until: float,
    inbox: Dict[int, List[ShardMessage]],
) -> Tuple[List[Tuple[int, ShardMessage]], Optional[float]]:
    """Deliver one barrier's messages and run every region to ``until``."""
    outbox: List[Tuple[int, ShardMessage]] = []
    next_time: Optional[float] = None
    for rid in sorted(regions):
        region = regions[rid]
        messages = inbox.get(rid)
        if messages:
            region.deliver(messages)
        out, region_next = region.run_until(until)
        outbox.extend(out)
        if region_next is not None:
            next_time = region_next if next_time is None else min(next_time, region_next)
    return outbox, next_time


def assign_regions(
    region_ids: Sequence[int],
    weights: Dict[int, int],
    shards: int,
) -> List[List[int]]:
    """Pack regions onto ``shards`` workers, heaviest first (LPT).

    Purely an execution-grouping decision: any assignment produces the
    same simulation results.
    """
    shards = max(1, min(shards, len(region_ids)))
    bins: List[List[int]] = [[] for _ in range(shards)]
    loads = [0] * shards
    for rid in sorted(region_ids, key=lambda r: (-weights.get(r, 1), r)):
        target = min(range(shards), key=lambda b: (loads[b], b))
        bins[target].append(rid)
        loads[target] += weights.get(rid, 1)
    return [sorted(b) for b in bins]


class ShardedSimulation:
    """The conservative barrier coordinator.

    ``shards <= 1`` executes every region inline (no IPC); ``shards > 1``
    spreads regions over a persistent pool of worker processes (the
    campaign runner's worker loop) and exchanges messages at each barrier.
    """

    def __init__(
        self,
        config: Dict[str, Any],
        region_ids: Sequence[int],
        weights: Dict[int, int],
        lookahead: float,
        horizon: float,
        shards: int = 1,
    ) -> None:
        if lookahead <= 0:
            raise ValueError(f"lookahead must be positive, got {lookahead!r}")
        self.config = config
        self.region_ids = list(region_ids)
        self.weights = dict(weights)
        self.lookahead = float(lookahead)
        self.horizon = float(horizon)
        self.shards = max(1, int(shards))
        self.epochs = 0
        self.messages = 0

    def run(self) -> Dict[str, Any]:
        wall_started = time.perf_counter()
        cpu_started = time.process_time()
        if self.shards <= 1:
            payload = self._run_inline()
        else:
            payload = self._run_pooled()
        payload["wall_s"] = time.perf_counter() - wall_started
        payload["coordinator_cpu_s"] = time.process_time() - cpu_started
        payload["epochs"] = self.epochs
        payload["messages"] = self.messages
        payload["shards"] = self.shards
        payload["regions_count"] = len(self.region_ids)
        return payload

    # -- barrier loop shared by both executors ------------------------- #

    def _barrier_loop(
        self,
        epoch: Callable[[float, Dict[int, List[ShardMessage]]],
                        Tuple[Dict[int, List[ShardMessage]], Optional[float],
                              Optional[float], int]],
    ) -> None:
        """Drive ``epoch(until, inbox)`` until the horizon.

        The callback returns ``(next_inbox, next_time, pending_arrival,
        sent)``: the messages the coordinator must route at the next
        barrier (empty when workers exchange peer-to-peer), the earliest
        local event any region still holds, the earliest arrival among
        the messages produced this epoch, and how many were produced.
        """
        lookahead = self.lookahead
        horizon = self.horizon
        inbox: Dict[int, List[ShardMessage]] = {}
        k = 0
        while True:
            until = min((k + 1) * lookahead, horizon)
            inbox, next_time, pending_arrival, sent = epoch(until, inbox)
            self.epochs += 1
            self.messages += sent
            if until >= horizon:
                break
            wake = next_time
            if pending_arrival is not None and (wake is None or pending_arrival < wake):
                wake = pending_arrival
            if wake is None:
                # Globally idle with nothing in flight: jump to the end so
                # every clock lands on the horizon.
                k = max(k + 1, int(horizon / lookahead))
                continue
            # The epoch whose (k+1)*L boundary first covers `wake`.
            k = max(k + 1, -int(-wake / lookahead) - 1)

    # -- inline -------------------------------------------------------- #

    def _run_inline(self) -> Dict[str, Any]:
        regions = _build_regions(self.config, self.region_ids)

        def epoch(until, inbox):
            outbox, next_time = run_region_epoch(regions, until, inbox)
            next_inbox: Dict[int, List[ShardMessage]] = {}
            pending_arrival: Optional[float] = None
            for dest, message in outbox:
                next_inbox.setdefault(dest, []).append(message)
                if pending_arrival is None or message[0] < pending_arrival:
                    pending_arrival = message[0]
            return next_inbox, next_time, pending_arrival, len(outbox)

        self._barrier_loop(epoch)
        results = {rid: region.collect()
                   for rid, region in sorted(regions.items())}
        return {"regions": results, "worker_cpu_s": []}

    # -- pooled -------------------------------------------------------- #

    def _run_pooled(self) -> Dict[str, Any]:
        from repro.campaign.runner import ShardWorkerPool

        assignment = assign_regions(self.region_ids, self.weights, self.shards)
        pool = ShardWorkerPool(len(assignment))
        try:
            pool.init(self.config, assignment)

            def epoch(until, inbox):
                # Workers exchange messages peer-to-peer; the replies
                # carry only barrier control data.
                replies = pool.epoch(until)
                next_time: Optional[float] = None
                pending_arrival: Optional[float] = None
                sent = 0
                for reply in replies:
                    worker_next = reply["next_time"]
                    if worker_next is not None and (
                        next_time is None or worker_next < next_time
                    ):
                        next_time = worker_next
                    arrival = reply["min_arrival"]
                    if arrival is not None and (
                        pending_arrival is None or arrival < pending_arrival
                    ):
                        pending_arrival = arrival
                    sent += reply["sent"]
                return {}, next_time, pending_arrival, sent

            self._barrier_loop(epoch)
            collected = pool.collect()
            results: Dict[int, Dict[str, Any]] = {}
            worker_cpu = []
            for reply in collected:
                results.update(reply["regions"])
                worker_cpu.append(reply["cpu_s"])
            return {
                "regions": dict(sorted(results.items())),
                "worker_cpu_s": worker_cpu,
                "assignment": assignment,
            }
        finally:
            pool.shutdown()
