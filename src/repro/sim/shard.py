"""Shared-nothing sharded execution of a partitioned simulation.

The monolithic engine runs every device of a fabric on one event heap.
For generated fabrics (hundreds of switches) this module splits the
simulation into *regions* — disjoint device groups produced by
:func:`repro.dataplane.fabrics.partition_topology` — each with its own
:class:`~repro.sim.engine.SimulationEngine`, its own isolated copies of
every process-global counter, and its own slice of the device graph.
Regions exchange frames and control-plane bytes as explicit messages at
conservative epoch barriers.

Determinism contract
--------------------

The region partition is a pure function of the topology and the requested
region count; the *shard count* (how many worker processes execute the
regions) only groups regions onto execution units.  Every source of
nondeterminism is region-local:

* each region has a private event heap and private sequence counters
  (:class:`RegionContext`), so event tie-breaking never depends on what
  other regions did;
* cross-region messages are delivered through
  :meth:`~repro.sim.engine.SimulationEngine.schedule_message` with a
  canonical ``(arrival, MESSAGE_PRIORITY, (channel, seq))`` heap key that
  is a pure function of the message identity — delivery never draws the
  region's event-sequence counter, so region execution is *windowing
  invariant*: it cannot observe how the barrier grouped deliveries into
  epochs;
* conservative barriers: every boundary channel has latency >= the
  lookahead ``L``, and every epoch ends at least ``L`` before any message
  generated inside it can arrive — no region ever needs to roll back.

Consequently a run's results (metrics, traces) are byte-identical whether
its regions execute inline in one process or spread over any number of
pool workers, with fixed or adaptive epoch boundaries, and with either
exchange wire format.

Barrier schedule
----------------

:class:`BarrierSchedule` computes epoch boundaries from global barrier
state (the earliest local event any region holds and the earliest
in-flight message arrival).  In **fixed** mode epochs advance one
lookahead-quantum grid slot at a time, fast-forwarding over empty slots.
In **adaptive** mode each epoch widens to ``wake + promise``, where the
*promise* is the minimum boundary-channel latency: when every region is
quiescent until ``wake``, no boundary channel can emit anything arriving
before ``wake + promise``, so the barrier is provably safe and sparse
phases (liveness timers, ping intervals, drain tails) collapse into far
fewer rounds.  Windowing invariance makes both modes byte-identical.

Exchange fast lane
------------------

Pooled execution runs the whole barrier loop **inside** the workers
(``shard_run``): every worker computes the identical schedule from
exchanged control words and ships its message batches peer-to-peer over
:class:`~repro.sim.mesh.MeshEndpoint` pipes as single packed blobs
(:mod:`repro.sim.codec`), so the coordinator's only involvement is one
task/reply per run — nothing serial remains on the critical path.
"""

from __future__ import annotations

import itertools
import math
import struct
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.dataplane.link import _Direction
from repro.netlib import fastframe
from repro.sim.codec import (
    BatchDecoder,
    BatchEncoder,
    pickle_batch,
    unpickle_batch,
)
from repro.sim.engine import SimulationEngine

#: A cross-region message: (arrival_time, channel, seq, op, payload).
#: Tuples sort naturally into the deterministic delivery order.
ShardMessage = Tuple[float, str, int, str, bytes]

#: Channel-op vocabulary.
OP_FRAME = "frame"   # a data-plane frame crossing a boundary link
OP_DATA = "data"     # control-plane stream bytes
OP_OPEN = "open"     # control-plane dial
OP_CLOSE = "close"   # control-plane teardown


class RegionContext:
    """Region-private instances of every process-global counter.

    The simulation's determinism leans on process-global sequences (event
    tie-breaks, ICMP identifiers, OpenFlow xids, the FastFrame intern
    pool).  Sharding gives each region its own copies and swaps them into
    place around every slice of region execution, so the sequences a
    region observes depend only on that region's own history.
    """

    #: Lazily bound targets of the swap — resolving the imports once per
    #: process instead of on every enter/exit keeps the per-epoch context
    #: switch down to a handful of attribute assignments.
    _targets: Optional[tuple] = None

    @classmethod
    def _resolve_targets(cls) -> tuple:
        if cls._targets is None:
            from repro.core.lang.properties import InterposedMessage
            from repro.dataplane.flowtable import FlowEntry
            from repro.dataplane.host import Host
            from repro.openflow import messages as of_messages
            from repro.sim.events import Event

            cls._targets = (
                Event, FlowEntry, Host, InterposedMessage, of_messages)
        return cls._targets

    def __init__(self) -> None:
        self.event_seq = itertools.count()
        self.flow_order = itertools.count()
        self.icmp_id = itertools.count(1)
        self.ephemeral = itertools.count(49152)
        self.msg_id = itertools.count(1)
        self.xid_next = 1
        self.frame_pool: Dict[bytes, object] = {}
        self.frame_counters: Dict[str, int] = {key: 0 for key in fastframe.counters}
        self._saved: Optional[tuple] = None

    def __enter__(self) -> "RegionContext":
        Event, FlowEntry, Host, InterposedMessage, of_messages = (
            self._resolve_targets())
        if self._saved is not None:
            raise RuntimeError("RegionContext is not re-entrant")
        self._saved = (
            Event._seq_counter,
            FlowEntry._order,
            Host._icmp_id,
            Host._ephemeral,
            InterposedMessage._id_counter,
            of_messages._xid_next,
            fastframe._pool,
            fastframe.counters,
        )
        Event._seq_counter = self.event_seq
        FlowEntry._order = self.flow_order
        Host._icmp_id = self.icmp_id
        Host._ephemeral = self.ephemeral
        InterposedMessage._id_counter = self.msg_id
        of_messages._xid_next = self.xid_next
        fastframe._pool = self.frame_pool
        fastframe.counters = self.frame_counters
        return self

    def __exit__(self, *exc_info) -> None:
        Event, FlowEntry, Host, InterposedMessage, of_messages = (
            self._resolve_targets())
        # xids are a plain module int, so read the advanced value back.
        self.xid_next = of_messages._xid_next
        (
            Event._seq_counter,
            FlowEntry._order,
            Host._icmp_id,
            Host._ephemeral,
            InterposedMessage._id_counter,
            of_messages._xid_next,
            fastframe._pool,
            fastframe.counters,
        ) = self._saved
        self._saved = None


# --------------------------------------------------------------------- #
# Boundary plumbing
# --------------------------------------------------------------------- #

class BoundaryTx(_Direction):
    """The local transmit half of a cross-region data link.

    Reuses the stock direction's serialization timeline (busy_until,
    drop-tail queue) byte for byte, but the computed arrival becomes a
    cross-region message instead of a local delivery; a local no-op at
    the arrival instant keeps the queue-occupancy dynamics identical to
    an unsharded link.  Payloads are flattened to plain ``bytes`` at the
    boundary — the receiving region re-interns them into its own
    FastFrame pool at dispatch, so every execution mode (inline, pooled,
    either codec) observes the identical pool history.
    """

    __slots__ = ("emit", "chan")

    def __init__(
        self,
        engine: SimulationEngine,
        bandwidth: float,
        latency: float,
        queue_limit: int,
        emit: Callable[[str, float, str, bytes], None],
        chan: str,
    ) -> None:
        super().__init__(engine, bandwidth, latency, queue_limit)
        self.emit = emit
        self.chan = chan
        self.deliver = self._no_local_delivery  # satisfies transmit()'s guard

    @staticmethod
    def _no_local_delivery(data: bytes) -> None:  # pragma: no cover
        raise AssertionError("boundary direction delivers remotely")

    def _schedule_arrival(self, arrival: float, data: bytes) -> None:
        self.emit(self.chan, arrival, OP_FRAME, bytes(data))
        self.engine.schedule_at(arrival, self._depart)

    def _depart(self) -> None:
        self.queued = max(0, self.queued - 1)


class BoundaryHalf:
    """What a region's :class:`~repro.dataplane.network.Network` sees for
    a link whose far endpoint lives in another region."""

    __slots__ = ("tx", "_deliver")

    def __init__(self, tx: BoundaryTx) -> None:
        self.tx = tx
        self._deliver: Optional[Callable[[bytes], None]] = None

    def transmit(self, data: bytes) -> bool:
        return self.tx.transmit(data)

    def attach(self, deliver: Callable[[bytes], None]) -> None:
        self._deliver = deliver

    def deliver(self, data: bytes) -> None:
        if self._deliver is not None:
            self._deliver(data)


class BoundaryControlChannel:
    """A duck-typed :class:`~repro.dataplane.control.ControlChannel` whose
    peer lives in another region.

    Sends become cross-region messages with arrival ``now + latency`` —
    the same timeline a local channel's ``engine.schedule`` would produce.
    The boundary latency is always >= the sharding lookahead, so these
    arrivals respect the barrier contract.
    """

    __slots__ = ("owner", "latency_s", "name", "label", "peer", "open",
                 "bytes_sent", "bytes_delivered", "_engine", "_emit",
                 "_out_chan")

    def __init__(
        self,
        engine: SimulationEngine,
        owner,
        latency_s: float,
        name: str,
        emit: Callable[[str, float, str, bytes], None],
        out_chan: str,
    ) -> None:
        self._engine = engine
        self.owner = owner
        self.latency_s = latency_s
        self.name = name
        self.label = name
        self.peer = None  # the far half is in another region
        self.open = True
        self.bytes_sent = 0
        self.bytes_delivered = 0
        self._emit = emit
        self._out_chan = out_chan

    def send(self, data: bytes) -> None:
        if not self.open:
            return
        self.bytes_sent += len(data)
        self._emit(self._out_chan, self._engine.now + self.latency_s,
                   OP_DATA, bytes(data))

    def close(self) -> None:
        if not self.open:
            return
        self.open = False
        self._emit(self._out_chan, self._engine.now + self.latency_s,
                   OP_CLOSE, b"")

    # Inbound side, invoked by the region dispatcher at the arrival time.
    def _deliver(self, data: bytes) -> None:
        if not self.open:
            return
        self.bytes_delivered += len(data)
        self.owner.bytes_received(self, data)

    def _peer_closed(self) -> None:
        if not self.open:
            return
        self.open = False
        self.owner.channel_closed(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.open else "closed"
        return f"<BoundaryControlChannel {self.name} {state}>"


# --------------------------------------------------------------------- #
# Region protocol
# --------------------------------------------------------------------- #

class ShardRegion:
    """Base for one shard-executable region of a simulation.

    Subclasses (the fabric builder in :mod:`repro.experiments.fabric`)
    populate the engine/devices inside ``self.ctx``; this base carries the
    message plumbing every region shares.
    """

    def __init__(self, rid: int, total_regions: int) -> None:
        self.rid = rid
        self.ctx = RegionContext()
        self.engine = SimulationEngine()
        self.engine.shards = total_regions
        self.engine.shard_id = rid
        self.outbox: List[Tuple[int, ShardMessage]] = []
        self.messages_received = 0
        self._out_seq = itertools.count()
        #: chan -> BoundaryHalf for inbound boundary-link frames.
        self.link_sinks: Dict[str, BoundaryHalf] = {}
        #: chan -> BoundaryControlChannel for inbound control streams.
        self.ctrl_sinks: Dict[str, BoundaryControlChannel] = {}
        #: chan -> destination region id.
        self.chan_dest: Dict[str, int] = {}

    # -- outbound ------------------------------------------------------ #

    def emit(self, chan: str, arrival: float, op: str, payload: bytes) -> None:
        dest = self.route(chan)
        self.engine.cross_shard_messages += 1
        self.outbox.append(
            (dest, (arrival, chan, next(self._out_seq), op, payload))
        )

    def route(self, chan: str) -> int:
        return self.chan_dest[chan]

    # -- inbound ------------------------------------------------------- #

    def deliver(self, messages: Sequence[ShardMessage]) -> None:
        """Schedule a barrier's worth of inbound messages.

        Delivery goes through ``schedule_message``: the heap key is the
        canonical ``(arrival, MESSAGE_PRIORITY, (chan, seq))`` — a pure
        function of the message, drawing nothing from the region's event
        counter.  Neither the batch order nor how the barrier windowed
        the deliveries can influence region execution, so no pre-sort is
        needed.
        """
        with self.ctx:
            self._deliver_locked(messages)

    def _deliver_locked(self, messages: Sequence[ShardMessage]) -> None:
        engine = self.engine
        dispatch = self._dispatch
        for arrival, chan, seq, op, payload in messages:
            self.messages_received += 1
            engine.schedule_message(arrival, (chan, seq), dispatch,
                                    chan, op, payload)

    def _dispatch(self, chan: str, op: str, payload: bytes) -> None:
        if op == OP_FRAME:
            # Re-intern into this region's pool: repeated payloads (the
            # steady state of any flow) resolve to the same warm FastFrame
            # and are never parsed twice.
            frame, _ = fastframe.intern(payload)
            self.link_sinks[chan].deliver(frame)
            return
        if op == OP_OPEN:
            self.control_opened(chan)
            return
        sink = self.ctrl_sinks.get(chan)
        if sink is None:
            return  # stream raced a teardown; bytes vanish like closed TCP
        if op == OP_DATA:
            sink._deliver(payload)
        elif op == OP_CLOSE:
            sink._peer_closed()

    def control_opened(self, chan: str) -> None:
        """Hook: a far region dialled a control connection (ctrl region)."""
        raise NotImplementedError(
            f"region {self.rid} received an unexpected control dial on {chan!r}"
        )

    # -- execution ----------------------------------------------------- #

    def run_epoch(
        self,
        until: float,
        messages: Optional[Sequence[ShardMessage]] = None,
    ) -> Tuple[List[Tuple[int, ShardMessage]], Optional[float]]:
        """Deliver ``messages`` and advance to ``until`` in one context."""
        with self.ctx:
            if messages:
                self._deliver_locked(messages)
            self.engine.run(until=until)
            out = self.outbox
            self.outbox = []
            next_time = self.engine.next_event_time()
        return out, next_time

    def run_until(self, until: float) -> Tuple[List[Tuple[int, ShardMessage]], Optional[float]]:
        """Advance this region's clock to ``until``; drain the outbox."""
        return self.run_epoch(until)

    def collect(self) -> Dict[str, Any]:
        """Region results (metrics, workload counters, trace events)."""
        with self.ctx:
            return self._collect()

    def _collect(self) -> Dict[str, Any]:
        return {"engine": self.engine.metrics()}


# --------------------------------------------------------------------- #
# Barrier schedule
# --------------------------------------------------------------------- #

class BarrierSchedule:
    """Deterministic epoch-boundary calculator.

    A pure function of the global barrier state fed to :meth:`advance`
    (earliest pending local event, earliest in-flight arrival), so the
    inline coordinator and every SPMD worker compute the identical
    boundary sequence independently.

    Fixed mode reproduces the classic grid: epochs end on multiples of
    the lookahead ``L``, fast-forwarding over empty slots.  Adaptive mode
    ends each epoch at ``wake + promise`` instead (clamped to the
    horizon): since no region fires an event before ``wake``, no boundary
    channel can emit a message arriving before ``wake + promise``, which
    keeps the no-rollback guarantee while widening epochs well past one
    grid slot whenever regions are quiescent.

    A message can arrive *exactly on* an epoch boundary (latency equal to
    the promise).  It is delivered at the next barrier and its dispatch
    event fires at its arrival time with the canonical message key, after
    every local event of that instant — the identical order the grid
    produces — so widening never changes results.  The one edge case is
    an arrival landing exactly on the horizon: :meth:`advance` answers
    with a *drain round* (another epoch at the horizon) instead of
    terminating, so the delivery is never dropped.  Fixed-grid arrivals
    are strictly beyond ``previous boundary + L`` and can never trigger
    the drain.
    """

    __slots__ = ("lookahead", "horizon", "adaptive", "promise",
                 "epochs", "epochs_skipped", "epochs_widened",
                 "_k", "_until")

    def __init__(
        self,
        lookahead: float,
        horizon: float,
        adaptive: bool = False,
        promise: Optional[float] = None,
    ) -> None:
        if lookahead <= 0:
            raise ValueError(f"lookahead must be positive, got {lookahead!r}")
        self.lookahead = float(lookahead)
        self.horizon = float(horizon)
        self.adaptive = bool(adaptive)
        # The promise may never undercut the lookahead (boundary channels
        # all have latency >= L); math.inf means "no boundary channels at
        # all" and lets the schedule jump straight to the horizon.
        if promise is None:
            self.promise = self.lookahead
        else:
            self.promise = max(float(promise), self.lookahead)
        self.epochs = 0
        self.epochs_skipped = 0
        self.epochs_widened = 0
        self._k = 0
        self._until = min(self.lookahead, self.horizon)

    @property
    def until(self) -> float:
        """The boundary of the epoch to run next."""
        return self._until

    def advance(
        self,
        next_time: Optional[float],
        pending_arrival: Optional[float],
    ) -> bool:
        """Account the epoch just run; compute the next boundary.

        ``next_time`` is the earliest local event still pending in any
        region; ``pending_arrival`` the earliest arrival among messages
        exchanged this epoch (delivered at the next barrier).  Returns
        False when the simulation is complete.
        """
        self.epochs += 1
        horizon = self.horizon
        if self._until >= horizon:
            # Drain round: an exchange can still land a delivery exactly
            # on the horizon (see class docstring); run one more epoch at
            # the horizon so it fires.  Otherwise we are done.
            return pending_arrival is not None and pending_arrival <= horizon
        wake = next_time
        if pending_arrival is not None and (wake is None or pending_arrival < wake):
            wake = pending_arrival
        lookahead = self.lookahead
        if wake is None:
            # Globally idle with nothing in flight: jump to the end so
            # every clock lands on the horizon.
            k_next = max(self._k + 1, int(horizon / lookahead))
            self.epochs_skipped += max(0, k_next - self._k - 1)
            self._k = k_next
            self._until = min((k_next + 1) * lookahead, horizon)
            return True
        if not self.adaptive:
            # The epoch whose (k+1)*L boundary first covers `wake`.
            k_next = max(self._k + 1, -int(-wake / lookahead) - 1)
            self.epochs_skipped += max(0, k_next - self._k - 1)
            self._k = k_next
            self._until = min((k_next + 1) * lookahead, horizon)
            return True
        promise = self.promise
        target = horizon if math.isinf(promise) else min(horizon, wake + promise)
        if target <= self._until:  # pragma: no cover - defensive clamp
            target = min(horizon, self._until + lookahead)
        grid_k = max(self._k + 1, -int(-wake / lookahead) - 1)
        grid_until = min((grid_k + 1) * lookahead, horizon)
        if target > grid_until:
            self.epochs_widened += 1
        k_next = max(grid_k, -int(-target / lookahead) - 1)
        self.epochs_skipped += max(0, k_next - self._k - 1)
        self._k = k_next
        self._until = target
        return True

    def counters(self) -> Dict[str, int]:
        return {
            "epochs": self.epochs,
            "epochs_skipped": self.epochs_skipped,
            "epochs_widened": self.epochs_widened,
        }


# --------------------------------------------------------------------- #
# Executors
# --------------------------------------------------------------------- #

def _build_regions(config: Dict[str, Any], rids: Sequence[int]) -> Dict[int, ShardRegion]:
    # The builder lives with the experiment (it knows about controllers,
    # workloads, fabrics); imported lazily to keep the sim layer free of
    # upward dependencies at import time.
    from repro.experiments.fabric import build_fabric_regions

    return {region.rid: region for region in build_fabric_regions(config, rids)}


#: SPMD control word exchanged alongside each batch blob: the sender's
#: earliest pending local event time and earliest outbound arrival
#: (``inf`` encodes "none").
_CONTROL = struct.Struct("<dd")


def _pack_optional(value: Optional[float]) -> float:
    return math.inf if value is None else value


def _unpack_optional(value: float) -> Optional[float]:
    return None if math.isinf(value) else value


class ShardWorkerSession:
    """Per-process state behind the pool's ``shard_*`` tasks.

    Lives inside a pool worker.  ``shard_init`` builds this worker's
    regions; ``shard_run`` executes the **entire** barrier loop SPMD-style
    (batches travel peer-to-peer over the pipe mesh, every worker derives
    the identical epoch schedule from exchanged control words, and the
    coordinator sees exactly one reply per run); ``shard_collect``
    returns results.  The per-epoch ops (``shard_epoch``) remain as the
    queue-routed fallback for pools without a mesh (non-fork start
    methods) and for single-worker pools driven epoch by epoch.
    """

    def __init__(self, peer_queues=None, peer_index: Optional[int] = None,
                 mesh_matrix=None) -> None:
        self.regions: Dict[int, ShardRegion] = {}
        self.cpu_s = 0.0
        self._peers = list(peer_queues) if peer_queues else None
        self._index = peer_index
        self._owner: Dict[int, int] = {}
        self._round = 0
        self._local_inbox: Dict[int, List[ShardMessage]] = {}
        self._deferred: Dict[Tuple[int, int], Dict[int, List[ShardMessage]]] = {}
        self._mesh = None
        if mesh_matrix is not None and peer_index is not None:
            from repro.sim.mesh import MeshEndpoint

            self._mesh = MeshEndpoint(peer_index, mesh_matrix)

    def handle(self, task: Dict[str, Any]) -> Dict[str, Any]:
        op = task["op"]
        if op == "shard_init":
            started = time.process_time()
            from repro.campaign.runner import reset_run_state

            reset_run_state()
            self.regions = _build_regions(task["config"], task["rids"])
            self._owner = {
                rid: worker
                for worker, rids in enumerate(task.get("assignment") or [])
                for rid in rids
            }
            self._round = 0
            self._local_inbox = {}
            self._deferred = {}
            self.cpu_s += time.process_time() - started
            return {"status": "ok", "rids": sorted(self.regions)}
        if op == "shard_run":
            started = time.process_time()
            reply = self._spmd_run(task)
            self.cpu_s += time.process_time() - started
            return reply
        if op == "shard_epoch":
            started = time.process_time()
            if self._peers is not None and len(self._peers) > 1:
                reply = self._peer_epoch(task["until"])
            else:
                outbox, next_time = run_region_epoch(
                    self.regions, task["until"], task.get("inbox") or {}
                )
                reply = {"status": "ok", "outbox": outbox,
                         "next_time": next_time}
            self.cpu_s += time.process_time() - started
            return reply
        if op == "shard_collect":
            started = time.process_time()
            results = {rid: region.collect()
                       for rid, region in sorted(self.regions.items())}
            self.cpu_s += time.process_time() - started
            return {"status": "ok", "regions": results, "cpu_s": self.cpu_s}
        raise ValueError(f"unknown shard op {op!r}")

    # -- SPMD barrier loop --------------------------------------------- #

    def _spmd_run(self, task: Dict[str, Any]) -> Dict[str, Any]:
        """Run every barrier of the simulation without coordinator turns.

        Each round: run this worker's regions to the current boundary,
        group the outbox by owning worker, send one control word plus one
        batch blob to every peer, fold the peers' control words into the
        global barrier state, and advance the shared schedule.  All
        workers see the same control information, so all compute the same
        boundary sequence — lock-step without a conductor.
        """
        schedule = BarrierSchedule(
            task["lookahead"], task["horizon"],
            adaptive=task.get("adaptive", False),
            promise=task.get("promise"),
        )
        use_codec = task.get("codec", True)
        mesh = self._mesh
        peers = mesh.peers if mesh is not None else []
        encoders = {peer: BatchEncoder() for peer in peers}
        decoders = {peer: BatchDecoder() for peer in peers}
        inbox: Dict[int, List[ShardMessage]] = {}
        sent_total = 0
        exchange_bytes = 0
        exchange_blobs = 0
        while True:
            outbox, next_time = run_region_epoch(
                self.regions, schedule.until, inbox)
            inbox = {}
            grouped: Dict[int, Dict[int, List[ShardMessage]]] = {
                peer: {} for peer in peers}
            min_arrival: Optional[float] = None
            for dest, message in outbox:
                owner = self._owner.get(dest, self._index)
                target = inbox if owner == self._index else grouped[owner]
                target.setdefault(dest, []).append(message)
                if min_arrival is None or message[0] < min_arrival:
                    min_arrival = message[0]
            control = _CONTROL.pack(
                _pack_optional(next_time), _pack_optional(min_arrival))
            for peer in peers:
                batch = grouped[peer]
                blob = (encoders[peer].encode(batch) if use_codec
                        else pickle_batch(batch))
                mesh.send(peer, control + blob)
                exchange_bytes += _CONTROL.size + len(blob)
                if batch:
                    exchange_blobs += 1
            agg_next = next_time
            agg_arrival = min_arrival
            for peer in peers:
                frame = mesh.recv(peer)
                peer_next, peer_arrival = _CONTROL.unpack_from(frame, 0)
                blob = frame[_CONTROL.size:]
                batch = (decoders[peer].decode(blob) if use_codec
                         else unpickle_batch(blob))
                for rid, messages in batch.items():
                    inbox.setdefault(rid, []).extend(messages)
                peer_next = _unpack_optional(peer_next)
                peer_arrival = _unpack_optional(peer_arrival)
                if peer_next is not None and (
                        agg_next is None or peer_next < agg_next):
                    agg_next = peer_next
                if peer_arrival is not None and (
                        agg_arrival is None or peer_arrival < agg_arrival):
                    agg_arrival = peer_arrival
            if mesh is not None:
                mesh.flush_all()
            sent_total += len(outbox)
            if not schedule.advance(agg_next, agg_arrival):
                break
        reply = {"status": "ok", "sent": sent_total,
                 "exchange_bytes": exchange_bytes,
                 "exchange_blobs": exchange_blobs}
        reply.update(schedule.counters())
        return reply

    # -- legacy queue-routed epoch ------------------------------------- #

    def _peer_epoch(self, until: float) -> Dict[str, Any]:
        """One barrier with queue-based peer-to-peer message exchange.

        Every worker puts exactly one (possibly empty) batch per round on
        every other worker's queue, so collecting one batch per peer for
        the previous round is a complete exchange.  Queue puts are
        asynchronous (a feeder thread flushes them), so a fast peer's
        round ``r+1`` batch can arrive before a slow peer's round ``r``
        one — ahead-of-round batches are parked in ``_deferred`` until
        their round comes up.  Delivery keys are canonical per message,
        so neither the sender interleaving nor the merge order can leak
        into results.
        """
        inbox = self._local_inbox
        self._local_inbox = {}
        if self._round > 0:
            want = self._round - 1
            pending = set(range(len(self._peers))) - {self._index}
            for sender in sorted(pending):
                batch = self._deferred.pop((sender, want), None)
                if batch is not None:
                    pending.discard(sender)
                    for rid, messages in batch.items():
                        inbox.setdefault(rid, []).extend(messages)
            while pending:
                sender, round_no, batch = self._peers[self._index].get()
                if round_no == want and sender in pending:
                    pending.discard(sender)
                    for rid, messages in batch.items():
                        inbox.setdefault(rid, []).extend(messages)
                elif round_no > want:
                    self._deferred[(sender, round_no)] = batch
                else:
                    raise RuntimeError(
                        f"shard worker {self._index} got a duplicate or "
                        f"stale batch from worker {sender} for round "
                        f"{round_no} while collecting round {want}"
                    )
        outbox, next_time = run_region_epoch(self.regions, until, inbox)
        grouped: List[Dict[int, List[ShardMessage]]] = [
            {} for _ in self._peers
        ]
        min_arrival: Optional[float] = None
        for dest, message in outbox:
            grouped[self._owner[dest]].setdefault(dest, []).append(message)
            if min_arrival is None or message[0] < min_arrival:
                min_arrival = message[0]
        for worker, queue in enumerate(self._peers):
            if worker != self._index:
                queue.put((self._index, self._round, grouped[worker]))
        # Messages between this worker's own regions stay local: they are
        # delivered at the next barrier, exactly as a coordinator-routed
        # round trip would have.
        self._local_inbox = grouped[self._index]
        self._round += 1
        return {"status": "ok", "next_time": next_time,
                "min_arrival": min_arrival, "sent": len(outbox)}


def run_region_epoch(
    regions: Dict[int, ShardRegion],
    until: float,
    inbox: Dict[int, List[ShardMessage]],
) -> Tuple[List[Tuple[int, ShardMessage]], Optional[float]]:
    """Deliver one barrier's messages and run every region to ``until``."""
    outbox: List[Tuple[int, ShardMessage]] = []
    next_time: Optional[float] = None
    for rid in sorted(regions):
        region = regions[rid]
        out, region_next = region.run_epoch(until, inbox.get(rid))
        outbox.extend(out)
        if region_next is not None:
            next_time = region_next if next_time is None else min(next_time, region_next)
    return outbox, next_time


def assign_regions(
    region_ids: Sequence[int],
    weights: Dict[int, int],
    shards: int,
) -> List[List[int]]:
    """Pack regions onto ``shards`` workers, heaviest first (LPT).

    Purely an execution-grouping decision: any assignment produces the
    same simulation results.
    """
    shards = max(1, min(shards, len(region_ids)))
    bins: List[List[int]] = [[] for _ in range(shards)]
    loads = [0] * shards
    for rid in sorted(region_ids, key=lambda r: (-weights.get(r, 1), r)):
        target = min(range(shards), key=lambda b: (loads[b], b))
        bins[target].append(rid)
        loads[target] += weights.get(rid, 1)
    return [sorted(b) for b in bins]


class ShardedSimulation:
    """The conservative barrier coordinator.

    ``shards <= 1`` executes every region inline (no IPC); ``shards > 1``
    spreads regions over a persistent pool of worker processes (the
    campaign runner's worker loop).  When the pool has a pipe mesh the
    whole barrier loop runs SPMD inside the workers; otherwise the
    coordinator drives per-epoch tasks over the legacy queue exchange.
    """

    def __init__(
        self,
        config: Dict[str, Any],
        region_ids: Sequence[int],
        weights: Dict[int, int],
        lookahead: float,
        horizon: float,
        shards: int = 1,
        adaptive: bool = False,
        codec: bool = True,
        promise: Optional[float] = None,
    ) -> None:
        if lookahead <= 0:
            raise ValueError(f"lookahead must be positive, got {lookahead!r}")
        self.config = config
        self.region_ids = list(region_ids)
        self.weights = dict(weights)
        self.lookahead = float(lookahead)
        self.horizon = float(horizon)
        self.shards = max(1, int(shards))
        self.adaptive = bool(adaptive)
        self.codec = bool(codec)
        self.promise = promise
        self.epochs = 0
        self.messages = 0
        self.epochs_skipped = 0
        self.epochs_widened = 0
        self.exchange_bytes = 0
        self.exchange_blobs = 0
        self._last_payload: Optional[Dict[str, Any]] = None

    def _schedule(self) -> BarrierSchedule:
        return BarrierSchedule(self.lookahead, self.horizon,
                               adaptive=self.adaptive, promise=self.promise)

    def run(self) -> Dict[str, Any]:
        wall_started = time.perf_counter()
        cpu_started = time.process_time()
        if self.shards <= 1:
            payload = self._run_inline()
        else:
            payload = self._run_pooled()
        payload["wall_s"] = time.perf_counter() - wall_started
        payload["coordinator_cpu_s"] = time.process_time() - cpu_started
        payload["epochs"] = self.epochs
        payload["messages"] = self.messages
        payload["shards"] = self.shards
        payload["regions_count"] = len(self.region_ids)
        payload["epochs_skipped"] = self.epochs_skipped
        payload["epochs_widened"] = self.epochs_widened
        payload["exchange_bytes"] = self.exchange_bytes
        payload["exchange_blobs"] = self.exchange_blobs
        self._last_payload = payload
        return payload

    def metrics(self) -> Dict[str, Any]:
        """Exchange/barrier observability for the completed run."""
        payload = self._last_payload or {}
        return {
            "shards": self.shards,
            "regions": len(self.region_ids),
            "epochs": self.epochs,
            "epochs_skipped": self.epochs_skipped,
            "epochs_widened": self.epochs_widened,
            "messages": self.messages,
            "exchange_bytes": self.exchange_bytes,
            "exchange_blobs": self.exchange_blobs,
            "adaptive_lookahead": self.adaptive,
            "exchange_codec": self.codec,
            "wall_s": payload.get("wall_s"),
            "coordinator_cpu_s": payload.get("coordinator_cpu_s"),
            "worker_cpu_s": list(payload.get("worker_cpu_s") or []),
        }

    # -- barrier loop shared by the coordinator-driven executors ------- #

    def _barrier_loop(
        self,
        epoch: Callable[[float, Dict[int, List[ShardMessage]]],
                        Tuple[Dict[int, List[ShardMessage]], Optional[float],
                              Optional[float], int]],
    ) -> None:
        """Drive ``epoch(until, inbox)`` until the horizon.

        The callback returns ``(next_inbox, next_time, pending_arrival,
        sent)``: the messages the coordinator must route at the next
        barrier (empty when workers exchange peer-to-peer), the earliest
        local event any region still holds, the earliest arrival among
        the messages produced this epoch, and how many were produced.
        """
        schedule = self._schedule()
        inbox: Dict[int, List[ShardMessage]] = {}
        while True:
            inbox, next_time, pending_arrival, sent = epoch(
                schedule.until, inbox)
            self.messages += sent
            if not schedule.advance(next_time, pending_arrival):
                break
        self._note_schedule(schedule)

    def _note_schedule(self, schedule: BarrierSchedule) -> None:
        self.epochs = schedule.epochs
        self.epochs_skipped = schedule.epochs_skipped
        self.epochs_widened = schedule.epochs_widened

    # -- inline -------------------------------------------------------- #

    def _run_inline(self) -> Dict[str, Any]:
        regions = _build_regions(self.config, self.region_ids)

        def epoch(until, inbox):
            outbox, next_time = run_region_epoch(regions, until, inbox)
            next_inbox: Dict[int, List[ShardMessage]] = {}
            pending_arrival: Optional[float] = None
            for dest, message in outbox:
                next_inbox.setdefault(dest, []).append(message)
                if pending_arrival is None or message[0] < pending_arrival:
                    pending_arrival = message[0]
            return next_inbox, next_time, pending_arrival, len(outbox)

        self._barrier_loop(epoch)
        results = {rid: region.collect()
                   for rid, region in sorted(regions.items())}
        return {"regions": results, "worker_cpu_s": []}

    # -- pooled -------------------------------------------------------- #

    def _run_pooled(self) -> Dict[str, Any]:
        from repro.campaign.runner import ShardWorkerPool

        assignment = assign_regions(self.region_ids, self.weights, self.shards)
        pool = ShardWorkerPool(len(assignment))
        try:
            pool.init(self.config, assignment)
            if pool.has_mesh or len(assignment) == 1:
                self._run_spmd(pool)
            else:
                self._run_stepped(pool)
            collected = pool.collect()
            results: Dict[int, Dict[str, Any]] = {}
            worker_cpu = []
            for reply in collected:
                results.update(reply["regions"])
                worker_cpu.append(reply["cpu_s"])
            return {
                "regions": dict(sorted(results.items())),
                "worker_cpu_s": worker_cpu,
                "assignment": assignment,
            }
        finally:
            pool.shutdown()

    def _run_spmd(self, pool) -> None:
        """One task per worker; the barrier loop runs inside the pool."""
        replies = pool.run_barrier(
            lookahead=self.lookahead, horizon=self.horizon,
            adaptive=self.adaptive, promise=self.promise, codec=self.codec)
        epochs = {reply["epochs"] for reply in replies}
        if len(epochs) != 1:  # pragma: no cover - protocol invariant
            raise RuntimeError(
                f"shard workers disagreed on the epoch count: {sorted(epochs)}"
            )
        first = replies[0]
        self.epochs = first["epochs"]
        self.epochs_skipped = first["epochs_skipped"]
        self.epochs_widened = first["epochs_widened"]
        self.messages = sum(reply["sent"] for reply in replies)
        self.exchange_bytes = sum(reply["exchange_bytes"] for reply in replies)
        self.exchange_blobs = sum(reply["exchange_blobs"] for reply in replies)

    def _run_stepped(self, pool) -> None:
        """Legacy fallback: coordinator-driven epochs over queue exchange."""

        def epoch(until, inbox):
            replies = pool.epoch(until)
            next_time: Optional[float] = None
            pending_arrival: Optional[float] = None
            sent = 0
            for reply in replies:
                worker_next = reply["next_time"]
                if worker_next is not None and (
                    next_time is None or worker_next < next_time
                ):
                    next_time = worker_next
                arrival = reply["min_arrival"]
                if arrival is not None and (
                    pending_arrival is None or arrival < pending_arrival
                ):
                    pending_arrival = arrival
                sent += reply["sent"]
            return {}, next_time, pending_arrival, sent

        self._barrier_loop(epoch)
