"""Packed binary codec for cross-shard message batches.

The sharded executor (:mod:`repro.sim.shard`) exchanges batches of
``(arrival, chan, seq, op, payload)`` messages between workers at every
epoch barrier.  Pickling those tuples is the dominant serial tax of the
exchange path: every message re-emits its channel string, every payload
ships in full even when the same frame bytes cross the same boundary
link thousands of times (the steady state of any flow), and each batch
pays a pickler walk over its tuples.

This codec packs a batch into **one** ``bytes`` blob and keeps
**per-stream state** so repetition never crosses the wire twice:

* **channel registry** — a channel's name and destination region id are
  sent once per stream, the first blob they appear in; afterwards
  messages carry a 2-byte index.
* **payload reference table** — per channel, previously sent payloads
  are remembered (up to :data:`PAYLOAD_CACHE` entries); a payload seen
  before is encoded as a 2-byte reference instead of its bytes.  When a
  table is full it is cleared before the next insert — both sides apply
  the rule at the same point in the stream, so the tables never diverge.
* **sequence deltas** — per channel, the sender's sequence number is
  monotone; messages carry the 2-byte delta from the previous message
  on that channel (with a wide escape for rare large gaps).

The blob is sectioned so each side runs **one** bulk ``struct`` call
per blob instead of one per message: a fixed-stride header array
(``<dHBHH`` per message: arrival f64, channel index, op/flags byte,
seq delta, payload ref-or-length), then a u32 extras array holding the
rare wide values (``FLAG_WIDE_SEQ`` / ``FLAG_WIDE_LEN`` escapes for
deltas or literal lengths that overflow 16 bits, consumed in message
order), then the literal payload bytes concatenated.

Encoders/decoders are **stateful per directed worker pair**: state
persists across the blobs of one stream and must never be shared
between streams.  Both ends of a stream process its blobs in the same
round order (the barrier is lock-step), which is what makes the
mirrored state sound.  :func:`pickle_batch` / :func:`unpickle_batch`
provide the pickled-tuple wire format for A/B byte accounting and as
the codec-off mode of the determinism suite.
"""

from __future__ import annotations

import pickle
import struct
from typing import Dict, List, Tuple

#: A cross-region message: (arrival_time, channel, seq, op, payload).
ShardMessage = Tuple[float, str, int, str, bytes]

#: A batch: destination region id -> ordered messages.
Batch = Dict[int, List[ShardMessage]]

# Wire op codes (must stay in sync with repro.sim.shard OP_* strings).
_OPS = ("frame", "data", "open", "close")
_OP_CODE = {name: code for code, name in enumerate(_OPS)}

#: Per-channel payload table bound.  Big enough that every flow crossing
#: one boundary link keeps its frame resident; small enough that streams
#: of never-repeating payloads (control-plane messages with fresh xids)
#: stay O(1) in memory.
PAYLOAD_CACHE = 256

FLAG_REF = 0x10        # payload field is a table reference, not a length
FLAG_WIDE_SEQ = 0x20   # u32 seq delta appended after the fixed struct
FLAG_WIDE_LEN = 0x40   # u32 payload length appended after the fixed struct
_OP_MASK = 0x03

_HEAD = struct.Struct("<HII")   # new-channel count, message count, wide count
_CHAN = struct.Struct("<HH")    # destination region id, name length
_MSG = struct.Struct("<dHBHH")  # arrival, chan, op/flags, seq delta, ref/len
_MSG_FIELDS = "dHBHH"
MESSAGE_HEADER_BYTES = _MSG.size
_struct_pack = struct.pack
_struct_unpack_from = struct.unpack_from


class BatchEncoder:
    """Stateful encoder for one directed exchange stream.

    Per-channel stream state lives in parallel lists indexed by channel
    id (payload table, payload index, last sequence number) — index
    loads beat attribute loads in the per-message hot loop.
    """

    __slots__ = ("_chan_ids", "_payloads", "_indexes", "_last_seqs")

    def __init__(self) -> None:
        self._chan_ids: Dict[str, int] = {}
        self._payloads: List[List[bytes]] = []
        self._indexes: List[Dict[bytes, int]] = []
        self._last_seqs: List[int] = []

    def encode(self, batch: Batch) -> bytes:
        if not batch:
            # Most directed worker pairs share no boundary link most
            # epochs; their exchange is pure barrier control.  Zero bytes
            # on the wire for that case — the frame length already says
            # everything.
            return b""
        chan_ids = self._chan_ids
        payload_tables = self._payloads
        payload_indexes = self._indexes
        last_seqs = self._last_seqs
        new_chans: List[bytes] = []
        header_vals: List = []
        extend = header_vals.extend
        extras: List[int] = []
        payloads: List[bytes] = []
        count = 0
        for rid in sorted(batch):
            for arrival, chan, seq, op, payload in batch[rid]:
                index = chan_ids.get(chan)
                if index is None:
                    index = chan_ids[chan] = len(last_seqs)
                    payload_tables.append([])
                    payload_indexes.append({})
                    last_seqs.append(0)
                    encoded = chan.encode("utf-8")
                    new_chans.append(_CHAN.pack(rid, len(encoded)) + encoded)
                flags = _OP_CODE[op]
                delta = seq - last_seqs[index]
                last_seqs[index] = seq
                if delta > 0xFFFF or delta < 0:
                    flags |= FLAG_WIDE_SEQ
                    extras.append(delta & 0xFFFFFFFF)
                    delta = 0
                payload = bytes(payload)
                ref = payload_indexes[index].get(payload)
                if ref is not None:
                    extend((arrival, index, flags | FLAG_REF, delta, ref))
                else:
                    table = payload_tables[index]
                    if len(table) >= PAYLOAD_CACHE:
                        table.clear()
                        payload_indexes[index].clear()
                    payload_indexes[index][payload] = len(table)
                    table.append(payload)
                    length = len(payload)
                    if length > 0xFFFF:
                        flags |= FLAG_WIDE_LEN
                        extras.append(length)
                        length = 0
                    extend((arrival, index, flags, delta, length))
                    payloads.append(payload)
                count += 1
        parts = [_HEAD.pack(len(new_chans), count, len(extras))]
        parts += new_chans
        if count:
            parts.append(_struct_pack("<" + _MSG_FIELDS * count, *header_vals))
        if extras:
            parts.append(_struct_pack("<%dI" % len(extras), *extras))
        parts += payloads
        return b"".join(parts)


class BatchDecoder:
    """Stateful decoder mirroring :class:`BatchEncoder` exactly."""

    __slots__ = ("_payloads", "_last_seqs", "_names", "_rids")

    def __init__(self) -> None:
        self._payloads: List[List[bytes]] = []
        self._last_seqs: List[int] = []
        self._names: List[str] = []
        self._rids: List[int] = []

    def decode(self, blob: bytes) -> Batch:
        if not blob:
            return {}
        view = memoryview(blob)
        n_new, count, n_wide = _HEAD.unpack_from(view, 0)
        offset = _HEAD.size
        for _ in range(n_new):
            rid, length = _CHAN.unpack_from(view, offset)
            offset += _CHAN.size
            name = bytes(view[offset:offset + length]).decode("utf-8")
            offset += length
            self._names.append(name)
            self._rids.append(rid)
            self._payloads.append([])
            self._last_seqs.append(0)
        batch: Batch = {}
        if not count:
            return batch
        vals = _struct_unpack_from("<" + _MSG_FIELDS * count, view, offset)
        offset += MESSAGE_HEADER_BYTES * count
        if n_wide:
            wides = iter(
                _struct_unpack_from("<%dI" % n_wide, view, offset)
            )
            offset += 4 * n_wide
        payload_tables = self._payloads
        last_seqs = self._last_seqs
        names = self._names
        rids = self._rids
        ops = _OPS
        position = offset
        fields = iter(vals)
        for arrival, index, flags, delta, extra in zip(
            fields, fields, fields, fields, fields
        ):
            if flags & FLAG_WIDE_SEQ:
                delta = next(wides)
            seq = (last_seqs[index] + delta) & 0xFFFFFFFF
            last_seqs[index] = seq
            if flags & FLAG_REF:
                payload = payload_tables[index][extra]
            else:
                if flags & FLAG_WIDE_LEN:
                    extra = next(wides)
                end = position + extra
                payload = bytes(view[position:end])
                position = end
                table = payload_tables[index]
                if len(table) >= PAYLOAD_CACHE:
                    table.clear()
                table.append(payload)
            rid = rids[index]
            messages = batch.get(rid)
            if messages is None:
                messages = batch[rid] = []
            messages.append(
                (arrival, names[index], seq, ops[flags & _OP_MASK], payload)
            )
        return batch


def pickle_batch(batch: Batch) -> bytes:
    """Legacy wire format: one pickle over the per-message tuples."""
    return pickle.dumps(batch, protocol=pickle.HIGHEST_PROTOCOL)


def unpickle_batch(blob: bytes) -> Batch:
    return pickle.loads(blob)
