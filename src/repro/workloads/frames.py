"""Pre-packed frame templates: batch packet synthesis for the fast lane.

Naive generation builds an ``EthernetFrame``/``Ipv4Packet``/L4 object
graph per packet and re-runs ``internet_checksum`` over the whole header
— at flood rates the generator, not the network, dominates the benchmark.
A :class:`FrameTemplate` packs that object graph **once** into a mutable
buffer and then patches only the bytes that vary per packet (ports,
addresses, ICMP ident/seq), fixing checksums incrementally per RFC 1624
(``HC' = ~(~HC + ~m + m')``) instead of re-summing the header.

Templates also keep the PR 3 flow-key caches warm: the patched field
dict is maintained *alongside* the bytes, so :meth:`emit` can hand the
switch a :class:`~repro.netlib.fastframe.FastFrame` whose ``_base`` is
already populated — the first hop never parses the frame at all.  With
the fast lane disabled (A/B runs) ``emit`` returns plain bytes and every
hop extracts on demand; either way the bytes are identical, which the
determinism tests pin against ``extract_flow_base``.

Byte layout (no VLAN, IHL=5, offsets from frame start)::

    0  dl_dst   6  dl_src   12 ethertype
    14 IPv4: ver/ihl .. 24 checksum  26 nw_src  30 nw_dst
    34 L4: tp_src  36 tp_dst  (ICMP: 34 type/code 36 csum 38 id 40 seq)
    14 ARP: .. 22 sender_mac  28 sender_ip  32 target_mac  38 target_ip
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Union

from repro.netlib import fastframe
from repro.netlib.addresses import Ipv4Address, MacAddress
from repro.netlib.arp import ArpPacket
from repro.netlib.ethernet import EtherType, EthernetFrame
from repro.netlib.flowkey import MATCH_FIELD_NAMES, extract_flow_base
from repro.netlib.icmp import IcmpEcho
from repro.netlib.ipv4 import IpProtocol, Ipv4Packet
from repro.netlib.tcp import TcpFlags, TcpSegment
from repro.netlib.udp import UdpDatagram

_BASE_NAMES = MATCH_FIELD_NAMES[1:]  # the eleven port-independent fields
_FIELD_POS = {name: i for i, name in enumerate(_BASE_NAMES)}

# Fixed offsets (frame start; untagged Ethernet, IHL=5).
_DL_DST = 0
_DL_SRC = 6
_IP_CSUM = 24
_NW_SRC = 26
_NW_DST = 30
_TP_SRC = 34
_TP_DST = 36
_ICMP_CSUM = 36
_ICMP_ID = 38
_ICMP_SEQ = 40
_ARP_SENDER_MAC = 22
_ARP_SENDER_IP = 28
_ARP_TARGET_MAC = 32
_ARP_TARGET_IP = 38

_U16 = struct.Struct("!H")


def _csum_patch(buf: bytearray, csum_off: int, word_off: int, new: int) -> None:
    """Replace the 16-bit word at ``word_off`` and incrementally fix the
    one's-complement checksum at ``csum_off`` (RFC 1624 eqn. 3)."""
    old = (buf[word_off] << 8) | buf[word_off + 1]
    buf[word_off] = new >> 8
    buf[word_off + 1] = new & 0xFF
    hc = (buf[csum_off] << 8) | buf[csum_off + 1]
    x = (~hc & 0xFFFF) + (~old & 0xFFFF) + new
    x = (x & 0xFFFF) + (x >> 16)
    x = (x & 0xFFFF) + (x >> 16)
    buf[csum_off] = (~x >> 8) & 0xFF
    buf[csum_off + 1] = ~x & 0xFF


class FrameTemplate:
    """One mutable wire image plus its live flow-key fields.

    Build via the class methods (:meth:`udp`, :meth:`tcp_syn`,
    :meth:`icmp_echo`, :meth:`arp`), patch the varying fields, and call
    :meth:`emit` once per packet.  Patches mutate the template in place —
    a source cycling N flows patches the same template N times per batch.
    """

    __slots__ = ("buf", "fields", "_values")

    def __init__(self, packed: bytes) -> None:
        self.buf = bytearray(packed)
        # The authoritative key for the current bytes; patch methods keep
        # it in lockstep (pinned by tests against extract_flow_base).
        self.fields: Dict[str, Any] = extract_flow_base(packed)
        self._values = [self.fields[name] for name in _BASE_NAMES]

    # -------------------------------------------------------------- #
    # Builders
    # -------------------------------------------------------------- #

    @classmethod
    def udp(cls, src_mac, dst_mac, src_ip, dst_ip,
            src_port: int, dst_port: int, payload: bytes = b"\x00" * 18
            ) -> "FrameTemplate":
        datagram = UdpDatagram(src_port, dst_port, payload)
        packet = Ipv4Packet(Ipv4Address(src_ip), Ipv4Address(dst_ip),
                            IpProtocol.UDP, datagram.pack())
        frame = EthernetFrame(MacAddress(dst_mac), MacAddress(src_mac),
                              EtherType.IPV4, packet.pack())
        return cls(frame.pack())

    @classmethod
    def tcp_syn(cls, src_mac, dst_mac, src_ip, dst_ip,
                src_port: int, dst_port: int) -> "FrameTemplate":
        segment = TcpSegment(src_port, dst_port, seq=0, ack=0,
                             flags=TcpFlags.SYN)
        packet = Ipv4Packet(Ipv4Address(src_ip), Ipv4Address(dst_ip),
                            IpProtocol.TCP, segment.pack())
        frame = EthernetFrame(MacAddress(dst_mac), MacAddress(src_mac),
                              EtherType.IPV4, packet.pack())
        return cls(frame.pack())

    @classmethod
    def icmp_echo(cls, src_mac, dst_mac, src_ip, dst_ip,
                  identifier: int = 1, sequence: int = 0,
                  payload: bytes = b"\x00" * 48) -> "FrameTemplate":
        echo = IcmpEcho.request(identifier, sequence, payload)
        packet = Ipv4Packet(Ipv4Address(src_ip), Ipv4Address(dst_ip),
                            IpProtocol.ICMP, echo.pack())
        frame = EthernetFrame(MacAddress(dst_mac), MacAddress(src_mac),
                              EtherType.IPV4, packet.pack())
        return cls(frame.pack())

    @classmethod
    def arp(cls, src_mac, dst_mac, sender_mac, sender_ip,
            target_mac, target_ip, reply: bool = True) -> "FrameTemplate":
        if reply:
            arp = ArpPacket.reply(MacAddress(sender_mac), Ipv4Address(sender_ip),
                                  MacAddress(target_mac), Ipv4Address(target_ip))
        else:
            arp = ArpPacket.request(MacAddress(sender_mac),
                                    Ipv4Address(sender_ip),
                                    Ipv4Address(target_ip))
        frame = EthernetFrame(MacAddress(dst_mac), MacAddress(src_mac),
                              EtherType.ARP, arp.pack())
        return cls(frame.pack())

    # -------------------------------------------------------------- #
    # Field patches (bytes + flow key, in lockstep)
    # -------------------------------------------------------------- #

    def _set_field(self, name: str, value: Any) -> None:
        self.fields[name] = value
        self._values[_FIELD_POS[name]] = value

    def _put_mac(self, offset: int, mac: MacAddress) -> None:
        self.buf[offset:offset + 6] = mac.packed

    def set_dl_src(self, mac: Union[MacAddress, int, bytes]) -> None:
        mac = MacAddress(mac)
        self._put_mac(_DL_SRC, mac)
        self._set_field("dl_src", mac)

    def set_dl_dst(self, mac: Union[MacAddress, int, bytes]) -> None:
        mac = MacAddress(mac)
        self._put_mac(_DL_DST, mac)
        self._set_field("dl_dst", mac)

    def set_nw_src(self, ip: Union[Ipv4Address, int, bytes]) -> None:
        ip = Ipv4Address(ip)
        value = int(ip)
        _csum_patch(self.buf, _IP_CSUM, _NW_SRC, value >> 16)
        _csum_patch(self.buf, _IP_CSUM, _NW_SRC + 2, value & 0xFFFF)
        self._set_field("nw_src", ip)

    def set_nw_dst(self, ip: Union[Ipv4Address, int, bytes]) -> None:
        ip = Ipv4Address(ip)
        value = int(ip)
        _csum_patch(self.buf, _IP_CSUM, _NW_DST, value >> 16)
        _csum_patch(self.buf, _IP_CSUM, _NW_DST + 2, value & 0xFFFF)
        self._set_field("nw_dst", ip)

    def set_tp_src(self, port: int) -> None:
        # UDP/TCP checksums are unused in this stack (packed as zero),
        # so a port patch is a bare word write.
        _U16.pack_into(self.buf, _TP_SRC, port)
        self._set_field("tp_src", port)

    def set_tp_dst(self, port: int) -> None:
        _U16.pack_into(self.buf, _TP_DST, port)
        self._set_field("tp_dst", port)

    def set_icmp_ident(self, identifier: int) -> None:
        # Not a flow-key field (ICMP keys on type/code); checksum is real.
        _csum_patch(self.buf, _ICMP_CSUM, _ICMP_ID, identifier)

    def set_icmp_seq(self, sequence: int) -> None:
        _csum_patch(self.buf, _ICMP_CSUM, _ICMP_SEQ, sequence)

    def set_arp_sender(self, mac: Union[MacAddress, int, bytes],
                       ip: Union[Ipv4Address, int, bytes]) -> None:
        mac, ip = MacAddress(mac), Ipv4Address(ip)
        self._put_mac(_ARP_SENDER_MAC, mac)
        self.buf[_ARP_SENDER_IP:_ARP_SENDER_IP + 4] = ip.packed
        self._set_field("nw_src", ip)

    def set_arp_target(self, mac: Union[MacAddress, int, bytes],
                       ip: Union[Ipv4Address, int, bytes]) -> None:
        mac, ip = MacAddress(mac), Ipv4Address(ip)
        self._put_mac(_ARP_TARGET_MAC, mac)
        self.buf[_ARP_TARGET_IP:_ARP_TARGET_IP + 4] = ip.packed
        self._set_field("nw_dst", ip)

    # -------------------------------------------------------------- #
    # Emission
    # -------------------------------------------------------------- #

    def emit(self) -> bytes:
        """Freeze the current buffer into one outgoing frame.

        With the fast lane on, the frame is a FastFrame born with its
        ``_base``/``_base_tuple`` caches populated from the template's
        live field dict — ``fastframe.intern`` passes FastFrames through
        untouched, so no hop ever re-extracts the key.
        """
        data = bytes(self.buf)
        if fastframe.fast_lane_enabled():
            frame = fastframe.FastFrame(data)
            frame._base = dict(self.fields)
            frame._base_tuple = tuple(self._values)
            return frame
        return data

    def __len__(self) -> int:
        return len(self.buf)
