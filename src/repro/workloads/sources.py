"""Built-in traffic sources: benign mixes and adversarial floods.

Every builder is a pure function of ``(topology, seed, params)``.  Hosts
sort by name and sender ``i`` targets host ``i + n/2`` — the same pairing
rule as :func:`repro.experiments.fabric.workload_pairs`, so controllerless
fabric runs (whose proactive routes cover exactly those pairs) forward
this traffic without any extra setup.

Sources
=======

``benign-mix``
    Background traffic: UDP datagrams, ICMP echo requests, and
    TCP-handshake-style SYNs at configurable ratios, cycling a bounded
    pool of distinct port pairs (steady flow-table reuse, realistic
    cache behaviour).

``packetin-flood``
    Spoofed-MAC host flood.  Every packet (or every ``spoof_macs``-th,
    cyclically) carries a fresh locally-administered source MAC, so a
    full-granularity learning controller never sees a matching entry:
    each packet is a table miss, a buffered frame, and a PACKET_IN.

``table-overflow``
    Distinct-flow-key churn: sweeps ``keys`` source ports against one
    destination, cyclically.  With ``keys`` above the switch's table
    capacity the revisit always misses — a sustained install/evict storm
    (see "An Inference Attack Model for Flow Table Capacity and Usage").

``arp-poison``
    Packet injection: spoofed ARP replies claiming the impersonated
    host's IP resolves to the attacker's MAC, cycled over the victim
    hosts, which opportunistically learn the mapping and divert their
    traffic to the attacker.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.sim.rng import SeededRng
from repro.workloads.base import (
    HostEmitter,
    TrafficSource,
    register_source,
    schedule_param,
)
from repro.workloads.frames import FrameTemplate

#: Port bases; benign and attack flows stay in disjoint ranges so report
#: columns can be attributed by inspection.
BENIGN_UDP_PORT = 41000
BENIGN_SYN_PORT = 42000
FLOOD_UDP_PORT = 43000
OVERFLOW_PORT_BASE = 20000


def _host_pairs(topology, params: Dict[str, Any]) -> List[Tuple[str, str]]:
    """Sender ``i`` -> far host ``i + n/2`` over name-sorted hosts."""
    hosts = sorted(topology.hosts)
    half = len(hosts) // 2
    if half == 0:
        raise ValueError("topology has fewer than two hosts")
    senders = int(params.get("senders", min(4, half)))
    return [(hosts[i], hosts[i + half]) for i in range(min(senders, half))]


def _window(params: Dict[str, Any]) -> Tuple[float, float]:
    return (float(params.get("start_s", 0.0)),
            float(params.get("duration_s", 1.0)))


@register_source(
    "benign-mix",
    description="UDP/ICMP/TCP-SYN background traffic at configurable ratios",
)
def build_benign_mix(topology, seed: int, params: Dict[str, Any]) -> TrafficSource:
    pairs = _host_pairs(topology, params)
    start_s, duration_s = _window(params)
    flows = max(1, int(params.get("flows", 16)))
    udp_w = float(params.get("udp_ratio", 0.6))
    icmp_w = float(params.get("icmp_ratio", 0.2))
    syn_w = float(params.get("syn_ratio", 0.2))
    total = udp_w + icmp_w + syn_w
    if total <= 0:
        raise ValueError("benign-mix ratios sum to zero")
    udp_cut, icmp_cut = udp_w / total, (udp_w + icmp_w) / total

    emitters = []
    for src, dst in pairs:
        s, d = topology.hosts[src], topology.hosts[dst]
        rng = SeededRng(seed).child(f"workload/benign-mix/{src}")
        udp_t = FrameTemplate.udp(s.mac, d.mac, s.ip, d.ip,
                                  BENIGN_UDP_PORT, BENIGN_UDP_PORT + 1)
        icmp_t = FrameTemplate.icmp_echo(s.mac, d.mac, s.ip, d.ip)
        syn_t = FrameTemplate.tcp_syn(s.mac, d.mac, s.ip, d.ip,
                                      BENIGN_SYN_PORT, 80)
        state = {"udp": 0, "icmp": 0, "syn": 0}

        def next_frame(rng=rng, udp_t=udp_t, icmp_t=icmp_t, syn_t=syn_t,
                       state=state):
            roll = rng.random()
            if roll < udp_cut:
                udp_t.set_tp_src(BENIGN_UDP_PORT + state["udp"] % flows)
                state["udp"] += 1
                return udp_t.emit()
            if roll < icmp_cut:
                state["icmp"] += 1
                icmp_t.set_icmp_seq(state["icmp"] & 0xFFFF)
                return icmp_t.emit()
            syn_t.set_tp_src(BENIGN_SYN_PORT + state["syn"] % flows)
            state["syn"] += 1
            return syn_t.emit()

        emitters.append(HostEmitter(
            src, schedule_param(params, "constant:400"), next_frame,
            start_s=start_s, duration_s=duration_s,
        ))
    return TrafficSource("benign-mix", emitters)


@register_source(
    "packetin-flood",
    description="spoofed-MAC host flood provoking a PACKET_IN storm",
    needs_controller=True,
    adversarial=True,
)
def build_packetin_flood(topology, seed: int, params: Dict[str, Any]) -> TrafficSource:
    pairs = _host_pairs(topology, params)
    start_s, duration_s = _window(params)
    # 0 = a fresh spoofed MAC every packet; N > 0 cycles a pool of N.
    spoof_macs = int(params.get("spoof_macs", 0))

    emitters = []
    for src, dst in pairs:
        s, d = topology.hosts[src], topology.hosts[dst]
        rng = SeededRng(seed).child(f"workload/packetin-flood/{src}")
        template = FrameTemplate.udp(s.mac, d.mac, s.ip, d.ip,
                                     FLOOD_UDP_PORT, FLOOD_UDP_PORT + 1)
        # Locally-administered unicast (0x02 first octet): never collides
        # with topology MACs, never broadcast/multicast.
        pool = [
            (0x02 << 40) | rng.randint(0, (1 << 40) - 1)
            for _ in range(spoof_macs)
        ]
        state = {"i": 0}

        def next_frame(rng=rng, template=template, pool=pool, state=state):
            if pool:
                mac = pool[state["i"] % len(pool)]
                state["i"] += 1
            else:
                mac = (0x02 << 40) | rng.randint(0, (1 << 40) - 1)
            template.set_dl_src(mac)
            return template.emit()

        emitters.append(HostEmitter(
            src, schedule_param(params, "constant:2000"), next_frame,
            start_s=start_s, duration_s=duration_s,
        ))
    return TrafficSource("packetin-flood", emitters)


@register_source(
    "table-overflow",
    description="distinct-flow-key sweep driving flow-table eviction churn",
    needs_controller=True,
    adversarial=True,
)
def build_table_overflow(topology, seed: int, params: Dict[str, Any]) -> TrafficSource:
    pairs = _host_pairs(topology, params)
    start_s, duration_s = _window(params)
    keys = int(params.get("keys", 2048))
    if not 1 <= keys <= 40000:
        raise ValueError(f"keys must be in [1, 40000], got {keys}")

    emitters = []
    for src, dst in pairs:
        s, d = topology.hosts[src], topology.hosts[dst]
        template = FrameTemplate.udp(s.mac, d.mac, s.ip, d.ip,
                                     OVERFLOW_PORT_BASE, FLOOD_UDP_PORT + 1)
        state = {"i": 0}

        def next_frame(template=template, state=state):
            # Cyclic sweep: once capacity < keys, every revisit has been
            # evicted in the meantime — a permanent miss/install/evict
            # cycle rather than a one-shot fill.
            template.set_tp_src(OVERFLOW_PORT_BASE + state["i"] % keys)
            state["i"] += 1
            return template.emit()

        emitters.append(HostEmitter(
            src, schedule_param(params, "constant:2000"), next_frame,
            start_s=start_s, duration_s=duration_s,
        ))
    return TrafficSource("table-overflow", emitters)


@register_source(
    "arp-poison",
    description="spoofed ARP replies poisoning victim hosts' ARP caches",
    adversarial=True,
)
def build_arp_poison(topology, seed: int, params: Dict[str, Any]) -> TrafficSource:
    pairs = _host_pairs(topology, params)
    start_s, duration_s = _window(params)
    pair_hosts = [name for pair in pairs for name in pair]

    emitters = []
    for attacker, impersonated in pairs:
        a = topology.hosts[attacker]
        imp = topology.hosts[impersonated]
        victims = [
            topology.hosts[name] for name in pair_hosts
            if name not in (attacker, impersonated)
        ]
        if not victims:
            continue
        # Gratuitous-reply poisoning: "impersonated's IP is at the
        # attacker's MAC", unicast to each victim in turn.
        template = FrameTemplate.arp(
            a.mac, victims[0].mac,
            sender_mac=a.mac, sender_ip=imp.ip,
            target_mac=victims[0].mac, target_ip=victims[0].ip,
        )
        state = {"i": 0}

        def next_frame(template=template, victims=victims, state=state):
            victim = victims[state["i"] % len(victims)]
            state["i"] += 1
            template.set_dl_dst(victim.mac)
            template.set_arp_target(victim.mac, victim.ip)
            return template.emit()

        emitters.append(HostEmitter(
            attacker, schedule_param(params, "constant:50"), next_frame,
            start_s=start_s, duration_s=duration_s,
        ))
    if not emitters:
        raise ValueError(
            "arp-poison needs at least two sender pairs (senders >= 2) "
            "so every attacker has a victim"
        )
    return TrafficSource("arp-poison", emitters)
