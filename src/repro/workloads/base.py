"""Traffic-source interface, registry, and the batch-tick driver.

A *traffic source* turns ``(topology, seed, params)`` into a set of
:class:`HostEmitter` streams — one per sending host — as a **pure
function**: building the same source twice (or in two different shard
worker processes) yields per-host streams that are byte-identical.
Per-host randomness comes from ``SeededRng(seed).child("workload/<source>/
<host>")``, so a host's stream never depends on which other hosts exist
in the same region.

Emission is batched: the driver wakes every ``tick_s`` of sim-time, asks
the emitter's :class:`~repro.workloads.schedule.RateSchedule` how many
packets the elapsed window owes (``count_between``), and injects exactly
that many frames through :meth:`Host.inject_frame`.  One engine event
per tick instead of one per packet is what lets a source sustain tens of
thousands of packets per sim-second without the event heap dominating;
tick boundaries are computed as ``start + k * tick`` (never accumulated),
so sharded and inline runs fire them at identical sim-times.

Registry: :func:`register_source` / :func:`build_source` /
:func:`list_sources`, mirroring the attack registry in
``repro.attacks.library``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.workloads.schedule import RateSchedule, parse_schedule

#: Default batch-tick width.  5 ms keeps burst edges sharp at the
#: schedule level while costing only 200 events per sim-second per host.
DEFAULT_TICK_S = 0.005


class HostEmitter:
    """One host's deterministic packet stream.

    ``next_frame`` is a stateful zero-argument callable returning the
    next frame's bytes; calling it ``n`` times yields the same ``n``
    frames for the same build inputs, which is the determinism contract
    the workload tests pin.
    """

    __slots__ = ("host", "schedule", "next_frame", "start_s", "duration_s",
                 "emitted")

    def __init__(
        self,
        host: str,
        schedule: RateSchedule,
        next_frame: Callable[[], bytes],
        start_s: float = 0.0,
        duration_s: float = 1.0,
    ) -> None:
        self.host = host
        self.schedule = schedule
        self.next_frame = next_frame
        self.start_s = float(start_s)
        self.duration_s = float(duration_s)
        self.emitted = 0


class TrafficSource:
    """A built workload: a named set of emitters over one topology."""

    def __init__(self, name: str, emitters: List[HostEmitter]) -> None:
        self.name = name
        self.emitters = list(emitters)

    def emitters_for(self, host_names) -> List[HostEmitter]:
        """The emitters whose hosts are in ``host_names`` (a shard region
        drives only the streams it owns)."""
        owned = set(host_names)
        return [e for e in self.emitters if e.host in owned]

    def __repr__(self) -> str:
        return f"<TrafficSource {self.name} emitters={len(self.emitters)}>"


class EmitterDriver:
    """Drives one emitter on one engine with batched ticks."""

    __slots__ = ("engine", "host", "emitter", "tick_s")

    def __init__(self, engine, host, emitter: HostEmitter,
                 tick_s: float = DEFAULT_TICK_S) -> None:
        if tick_s <= 0:
            raise ValueError(f"tick width must be positive, got {tick_s!r}")
        self.engine = engine
        self.host = host
        self.emitter = emitter
        self.tick_s = float(tick_s)

    def start(self) -> None:
        self.engine.schedule_at(self.emitter.start_s + self._end(0),
                                self._tick, 0)

    def _end(self, k: int) -> float:
        return min((k + 1) * self.tick_s, self.emitter.duration_s)

    def _tick(self, k: int) -> None:
        emitter = self.emitter
        t1 = self._end(k)
        count = emitter.schedule.count_between(k * self.tick_s, t1)
        inject = self.host.inject_frame
        next_frame = emitter.next_frame
        for _ in range(count):
            inject(next_frame())
        emitter.emitted += count
        if t1 < emitter.duration_s:
            self.engine.schedule_at(emitter.start_s + self._end(k + 1),
                                    self._tick, k + 1)


def drive_source(engine, hosts: Dict[str, Any], source: TrafficSource,
                 tick_s: float = DEFAULT_TICK_S) -> List[EmitterDriver]:
    """Attach and start drivers for every emitter whose host is local.

    ``hosts`` maps host name to the live :class:`Host` — a shard region
    passes only the hosts it owns, so each stream runs on exactly one
    engine no matter how the fabric is partitioned.
    """
    drivers = []
    for emitter in source.emitters:
        host = hosts.get(emitter.host)
        if host is None:
            continue
        driver = EmitterDriver(engine, host, emitter, tick_s)
        driver.start()
        drivers.append(driver)
    return drivers


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #

class SourceInfo:
    __slots__ = ("name", "builder", "description", "needs_controller",
                 "adversarial")

    def __init__(self, name: str, builder, description: str,
                 needs_controller: bool, adversarial: bool) -> None:
        self.name = name
        self.builder = builder
        self.description = description
        self.needs_controller = needs_controller
        self.adversarial = adversarial


_SOURCES: Dict[str, SourceInfo] = {}


def register_source(name: str, *, description: str = "",
                    needs_controller: bool = False,
                    adversarial: bool = False):
    """Decorator: register ``builder(topology, seed, params) ->
    TrafficSource`` under ``name``.

    ``adversarial`` marks attack traffic: the defense plane uses the
    source's ``start_s``/``duration_s`` as detection ground truth, while
    benign sources label every window inactive.
    """

    def decorate(builder):
        if name in _SOURCES:
            raise ValueError(f"traffic source {name!r} already registered")
        _SOURCES[name] = SourceInfo(name, builder, description,
                                    needs_controller, adversarial)
        return builder

    return decorate


def _ensure_builtin_sources() -> None:
    import repro.workloads.sources  # noqa: F401  (registers on import)


def source_names() -> List[str]:
    _ensure_builtin_sources()
    return sorted(_SOURCES)


def source_info(name: str) -> SourceInfo:
    _ensure_builtin_sources()
    try:
        return _SOURCES[name]
    except KeyError:
        raise KeyError(
            f"unknown traffic source {name!r}; available: {sorted(_SOURCES)}"
        ) from None


def list_sources() -> List[Dict[str, Any]]:
    _ensure_builtin_sources()
    return [
        {
            "name": info.name,
            "description": info.description,
            "needs_controller": info.needs_controller,
            "adversarial": info.adversarial,
        }
        for _, info in sorted(_SOURCES.items())
    ]


def build_source(name: str, topology, seed: int,
                 params: Optional[Dict[str, Any]] = None) -> TrafficSource:
    """Build a registered source.  Pure: same inputs, same streams."""
    info = source_info(name)
    return info.builder(topology, int(seed), dict(params or {}))


def schedule_param(params: Dict[str, Any], default: str) -> RateSchedule:
    """The conventional ``schedule`` parameter, parsed."""
    return parse_schedule(params.get("schedule", default))
