"""High-rate adversarial workloads: seed-deterministic traffic generators.

See docs/WORKLOADS.md.  Public surface:

* :class:`FrameTemplate` — pre-packed frames with per-packet field
  patching through the FastFrame lane (``repro.workloads.frames``);
* rate schedules + ``parse_schedule`` (``repro.workloads.schedule``);
* the :class:`TrafficSource`/:class:`HostEmitter` interface, registry
  (``register_source``/``build_source``/``list_sources``), and the
  batch-tick :func:`drive_source` driver (``repro.workloads.base``);
* the built-in sources — ``benign-mix``, ``packetin-flood``,
  ``table-overflow``, ``arp-poison`` (``repro.workloads.sources``).
"""

from repro.workloads.base import (
    DEFAULT_TICK_S,
    EmitterDriver,
    HostEmitter,
    TrafficSource,
    build_source,
    drive_source,
    list_sources,
    register_source,
    source_info,
    source_names,
)
from repro.workloads.frames import FrameTemplate
from repro.workloads.schedule import (
    BurstRate,
    ConstantRate,
    OnOffRate,
    RampRate,
    RateSchedule,
    parse_schedule,
)

__all__ = [
    "DEFAULT_TICK_S",
    "EmitterDriver",
    "HostEmitter",
    "TrafficSource",
    "build_source",
    "drive_source",
    "list_sources",
    "register_source",
    "source_info",
    "source_names",
    "FrameTemplate",
    "BurstRate",
    "ConstantRate",
    "OnOffRate",
    "RampRate",
    "RateSchedule",
    "parse_schedule",
]
