"""Deterministic packet-rate schedules for traffic sources.

A schedule answers one question: *how many packets are due by sim-time
``t``?*  Sources drive their generators from :meth:`count_between`, so a
batch tick of any width emits exactly the packets the schedule owes for
that window — no per-packet events, no drift, and the packet count for a
window is a pure function of ``(schedule, t0, t1)``.  That purity is what
keeps sharded and inline fabric runs byte-identical: a region ticking a
source on its private engine computes the same counts at the same
sim-times regardless of which process hosts it.

String forms (CLI ``--schedule`` / campaign params)::

    constant:RATE                 RATE pps forever
    ramp:START:END:DURATION       linear START->END pps over DURATION s,
                                  then END pps
    burst:PEAK:BASE:PERIOD:DUTY   PEAK pps for the first DUTY fraction of
                                  each PERIOD, BASE pps for the rest
    onoff:RATE:ON:OFF             RATE pps for ON seconds, silent for OFF
"""

from __future__ import annotations

import math


def _finite(name: str, value: float) -> float:
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


class RateSchedule:
    """Cumulative-count interface every schedule implements."""

    def cumulative(self, t: float) -> int:
        """Packets owed in ``[0, t)``; non-decreasing in ``t``."""
        raise NotImplementedError

    def count_between(self, t0: float, t1: float) -> int:
        """Packets due in ``[t0, t1)`` — what one batch tick emits."""
        return max(0, self.cumulative(t1) - self.cumulative(t0))


class ConstantRate(RateSchedule):
    def __init__(self, pps: float) -> None:
        pps = _finite("rate", pps)
        if pps <= 0:
            raise ValueError(f"rate must be positive, got {pps!r}")
        self.pps = pps

    def cumulative(self, t: float) -> int:
        if t <= 0:
            return 0
        return int(math.floor(self.pps * t))

    def __repr__(self) -> str:
        return f"constant:{self.pps:g}"


class RampRate(RateSchedule):
    """Linear ramp from ``start_pps`` to ``end_pps`` over ``duration`` s."""

    def __init__(self, start_pps: float, end_pps: float, duration: float) -> None:
        start_pps = _finite("ramp start rate", start_pps)
        end_pps = _finite("ramp end rate", end_pps)
        duration = _finite("ramp duration", duration)
        if duration <= 0:
            raise ValueError(f"ramp duration must be positive, got {duration!r}")
        if start_pps < 0 or end_pps < 0:
            raise ValueError(
                f"ramp rates must be non-negative, "
                f"got {start_pps!r}->{end_pps!r}")
        if start_pps == 0 and end_pps == 0:
            raise ValueError("ramp needs a positive start or end rate")
        self.start_pps = start_pps
        self.end_pps = end_pps
        self.duration = duration

    def cumulative(self, t: float) -> int:
        if t <= 0:
            return 0
        d = self.duration
        slope = (self.end_pps - self.start_pps) / d
        if t <= d:
            area = self.start_pps * t + slope * t * t / 2.0
        else:
            area = (self.start_pps * d + slope * d * d / 2.0
                    + self.end_pps * (t - d))
        return int(math.floor(area))

    def __repr__(self) -> str:
        return f"ramp:{self.start_pps:g}:{self.end_pps:g}:{self.duration:g}"


class BurstRate(RateSchedule):
    """Periodic bursts: PEAK pps for ``duty * period``, BASE pps after."""

    def __init__(self, peak_pps: float, base_pps: float, period: float,
                 duty: float) -> None:
        peak_pps = _finite("burst peak rate", peak_pps)
        base_pps = _finite("burst base rate", base_pps)
        period = _finite("burst period", period)
        duty = _finite("burst duty", duty)
        if period <= 0:
            raise ValueError(f"burst period must be positive, got {period!r}")
        if not 0.0 < duty <= 1.0:
            raise ValueError(f"burst duty must be in (0, 1], got {duty!r}")
        if peak_pps <= 0:
            raise ValueError(
                f"burst peak rate must be positive, got {peak_pps!r}")
        if base_pps < 0:
            raise ValueError(
                f"burst base rate must be non-negative, got {base_pps!r}")
        self.peak_pps = peak_pps
        self.base_pps = base_pps
        self.period = period
        self.duty = duty

    def cumulative(self, t: float) -> int:
        if t <= 0:
            return 0
        on = self.period * self.duty
        per_period = self.peak_pps * on + self.base_pps * (self.period - on)
        full, into = divmod(t, self.period)
        area = per_period * full
        area += self.peak_pps * min(into, on)
        if into > on:
            area += self.base_pps * (into - on)
        return int(math.floor(area))

    def __repr__(self) -> str:
        return (f"burst:{self.peak_pps:g}:{self.base_pps:g}"
                f":{self.period:g}:{self.duty:g}")


class OnOffRate(BurstRate):
    """RATE pps for ``on_s`` seconds, silence for ``off_s``, repeating."""

    def __init__(self, pps: float, on_s: float, off_s: float) -> None:
        on_s = _finite("on period", on_s)
        off_s = _finite("off period", off_s)
        if on_s <= 0 or off_s < 0:
            raise ValueError(
                f"on period must be positive and off non-negative, "
                f"got on={on_s!r} off={off_s!r}")
        super().__init__(pps, 0.0, on_s + off_s, on_s / (on_s + off_s))
        self.on_s = float(on_s)
        self.off_s = float(off_s)

    def __repr__(self) -> str:
        return f"onoff:{self.peak_pps:g}:{self.on_s:g}:{self.off_s:g}"


def parse_schedule(spec) -> RateSchedule:
    """Parse a schedule string (see module docstring); passes through
    :class:`RateSchedule` instances unchanged."""
    if isinstance(spec, RateSchedule):
        return spec
    if isinstance(spec, (int, float)):
        return ConstantRate(float(spec))
    parts = str(spec).split(":")
    kind, args = parts[0], parts[1:]
    try:
        values = [float(a) for a in args]
        if kind == "constant" and len(values) == 1:
            return ConstantRate(values[0])
        if kind == "ramp" and len(values) == 3:
            return RampRate(*values)
        if kind == "burst" and len(values) == 4:
            return BurstRate(*values)
        if kind == "onoff" and len(values) == 3:
            return OnOffRate(*values)
    except ValueError as exc:
        raise ValueError(f"bad schedule spec {spec!r}: {exc}") from None
    raise ValueError(
        f"bad schedule spec {spec!r}; expected constant:RATE, "
        f"ramp:START:END:DURATION, burst:PEAK:BASE:PERIOD:DUTY, "
        f"or onoff:RATE:ON:OFF"
    )
