"""The Section VIII-B modelling-efficiency comparison.

An attack that must see ``n`` instances of a message before acting can be
modelled two ways:

* **naive**: one attack state per observed message — "similar to a
  memoryless finite state machine" — requiring O(n) states;
* **deque counter**: a single state with a length-1 counter deque,
  incremented via ``PREPEND(δ, SHIFT(δ) + 1)`` and checked with
  ``EXAMINEFRONT(δ) = n`` — O(1) states.

Both builders produce an attack that, after ``n`` matching messages,
transitions to an absorbing state that drops all further matching
messages, so their behaviours are comparable end-to-end.
"""

from __future__ import annotations

from repro.core.lang.actions import DropMessage, GoToState, PrependAction
from repro.core.lang.attack import Attack
from repro.core.lang.conditionals import And, Comparison, Const, ExamineFront, ShiftExpr, Sum
from repro.core.lang.parser import parse_condition
from repro.core.lang.rules import Rule
from repro.core.lang.states import AttackState
from repro.core.model.capabilities import gamma_no_tls
from repro.attacks.library import normalize_connections


def counting_attack_naive(
    connections,
    n: int,
    condition_text: str = "type = PACKET_IN",
) -> Attack:
    """O(n)-state counter: one attack state per observed message."""
    if n < 1:
        raise ValueError("n must be >= 1")
    bound = normalize_connections(connections)
    match_text = condition_text
    states = []
    for index in range(n):
        target = f"seen_{index + 1}" if index + 1 < n else "armed"
        rule = Rule(
            name=f"advance_{index}",
            connections=bound,
            gamma=gamma_no_tls(),
            conditional=parse_condition(match_text),
            actions=[GoToState(target)],
        )
        name = "seen_0" if index == 0 else f"seen_{index}"
        states.append(AttackState(name, [rule]))
    armed_rule = Rule(
        name="drop_after_count",
        connections=bound,
        gamma=gamma_no_tls(),
        conditional=parse_condition(match_text),
        actions=[DropMessage()],
    )
    states.append(AttackState("armed", [armed_rule]))
    return Attack(
        name=f"counting-naive-{n}",
        states=states,
        start="seen_0",
        description=f"Section VIII-B naive FSM counter with {n} counting states.",
    )


def counting_attack_deque(
    connections,
    n: int,
    condition_text: str = "type = PACKET_IN",
) -> Attack:
    """O(1)-state counter using the deque idiom of Section VIII-B."""
    if n < 1:
        raise ValueError("n must be >= 1")
    bound = normalize_connections(connections)
    match = parse_condition(condition_text)
    increment = Sum(ShiftExpr("counter"), [("+", Const(1))])
    count_rule = Rule(
        name="count",
        connections=bound,
        gamma=gamma_no_tls(),
        conditional=match,
        actions=[PrependAction("counter", increment)],
    )
    arm_rule = Rule(
        name="arm_when_reached",
        connections=bound,
        gamma=gamma_no_tls(),
        conditional=And(
            match, Comparison("=", ExamineFront("counter"), Const(n))
        ),
        actions=[GoToState("armed")],
    )
    counting = AttackState("counting", [count_rule, arm_rule])
    armed_rule = Rule(
        name="drop_after_count",
        connections=bound,
        gamma=gamma_no_tls(),
        conditional=match,
        actions=[DropMessage()],
    )
    armed = AttackState("armed", [armed_rule])
    return Attack(
        name=f"counting-deque-{n}",
        states=[counting, armed],
        start="counting",
        deque_declarations={"counter": [0]},
        description=(
            "Section VIII-B deque counter: "
            "PREPEND(counter, SHIFT(counter)+1) in one state."
        ),
    )
