"""Stochastic drop attack (the Section VIII-A future-work extension).

Drops each matching message independently with probability ``p`` using the
language's ``prob(p)`` conditional.  Because the draw comes from the
executor's seeded random stream, a stochastic attack remains replayable —
the same seed reproduces the same drop pattern, preserving the framework's
deterministic-testing story.
"""

from __future__ import annotations

from repro.core.lang.actions import DropMessage
from repro.core.lang.attack import Attack
from repro.core.lang.conditionals import And, Probability
from repro.core.lang.parser import parse_condition
from repro.core.lang.rules import Rule
from repro.core.lang.states import AttackState
from repro.core.model.capabilities import gamma_no_tls
from repro.attacks.library import normalize_connections


def stochastic_drop_attack(
    connections,
    drop_probability: float,
    condition_text: str = "true",
) -> Attack:
    """Drop matching messages with probability ``drop_probability``."""
    if not 0.0 <= drop_probability <= 1.0:
        raise ValueError(f"drop probability must be in [0, 1], got {drop_probability!r}")
    bound = normalize_connections(connections)
    conditional = And(parse_condition(condition_text), Probability(drop_probability))
    rule = Rule(
        name="drop_probabilistically",
        connections=bound,
        gamma=gamma_no_tls(),
        conditional=conditional,
        actions=[DropMessage()],
    )
    sigma1 = AttackState("sigma1", [rule])
    return Attack(
        name="stochastic-drop",
        states=[sigma1],
        start="sigma1",
        description=(
            f"Drop messages matching {condition_text!r} with probability "
            f"{drop_probability} (seeded, replayable)."
        ),
    )
