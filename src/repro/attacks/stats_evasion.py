"""Monitoring-evasion attack: starve the controller's statistics loop.

An attacker who wants its data-plane activity to stay invisible to
flow-statistics monitoring can simply drop OFPST_FLOW replies on the
attacked connection: the collector's last snapshot goes stale, and the
flows created afterwards never appear in any report.  A subtler variant
drops only the replies while letting requests through, so the controller
sees a live connection (echoes flow) with a silent statistics pipeline.
"""

from __future__ import annotations

from repro.core.lang.actions import DropMessage
from repro.core.lang.attack import Attack
from repro.core.lang.parser import parse_condition
from repro.core.lang.rules import Rule
from repro.core.lang.states import AttackState
from repro.core.model.capabilities import gamma_no_tls
from repro.attacks.library import normalize_connections


def stats_evasion_attack(connections) -> Attack:
    """Drop every STATS_REPLY on the bound connections."""
    bound = normalize_connections(connections)
    rule = Rule(
        name="drop_stats_replies",
        connections=bound,
        gamma=gamma_no_tls(),
        conditional=parse_condition("type = STATS_REPLY"),
        actions=[DropMessage()],
    )
    sigma1 = AttackState("sigma1", [rule])
    return Attack(
        name="stats-evasion",
        states=[sigma1],
        start="sigma1",
        description=(
            "Starve flow-statistics monitoring by dropping STATS_REPLY "
            "messages; the collector's view goes stale while the data "
            "plane keeps forwarding."
        ),
    )
