"""Message-reordering attack (Section VIII-A).

"Suppose a set of messages M need to be sent in reverse order.  ...the
attack can store the messages in a deque δ acting like a stack, insert the
messages using the PREPEND(δ, m) action |M| times, and retrieve and send
the messages in reverse order using the SHIFT(δ) and PASSMESSAGE actions."

The attack withholds ``batch_size`` consecutive messages matching
``condition_text``; when the batch is complete, it re-injects them in
reverse (LIFO) order and returns to collecting.
"""

from __future__ import annotations

from repro.core.lang.actions import (
    DropMessage,
    InjectNewMessage,
    PrependAction,
    ShiftAction,
)
from repro.core.lang.attack import Attack
from repro.core.lang.conditionals import (
    And,
    Comparison,
    Const,
    ExamineFront,
    MessageRef,
    ShiftExpr,
    Sum,
)
from repro.core.lang.parser import parse_condition
from repro.core.lang.rules import Rule
from repro.core.lang.states import AttackState
from repro.core.model.capabilities import gamma_no_tls
from repro.attacks.library import normalize_connections


def reordering_attack(
    connections,
    condition_text: str = "type = ECHO_REQUEST",
    batch_size: int = 3,
) -> Attack:
    """Reverse the order of each ``batch_size``-message batch."""
    if batch_size < 2:
        raise ValueError("a reordering batch needs at least 2 messages")
    bound = normalize_connections(connections)
    match = parse_condition(condition_text)

    increment = Sum(ShiftExpr("count"), [("+", Const(1))])
    collect = Rule(
        name="collect",
        connections=bound,
        gamma=gamma_no_tls(),
        conditional=match,
        actions=[
            PrependAction("stack", MessageRef()),   # stack: newest at front
            DropMessage(),                          # withhold from the wire
            PrependAction("count", increment),
        ],
    )
    # When the batch is complete, SHIFT the stack |M| times: front-first
    # retrieval of a PREPEND-built deque yields reverse arrival order.
    release_actions = [
        InjectNewMessage(ShiftExpr("stack")) for _ in range(batch_size)
    ]
    # Reset the single-cell counter: remove the old value, store 0.
    release_actions.append(ShiftAction("count"))
    release_actions.append(PrependAction("count", Const(0)))
    release = Rule(
        name="release_reversed",
        connections=bound,
        gamma=gamma_no_tls(),
        conditional=And(match, Comparison("=", ExamineFront("count"), Const(batch_size))),
        actions=release_actions,
    )
    sigma1 = AttackState("sigma1", [collect, release])
    return Attack(
        name="message-reordering",
        states=[sigma1],
        start="sigma1",
        deque_declarations={"count": [0], "stack": []},
        description=(
            f"Section VIII-A: batch {batch_size} matching messages in a "
            "deque used as a stack, then replay them reversed."
        ),
    )
