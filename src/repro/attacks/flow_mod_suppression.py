"""The flow-modification-suppression attack (Section VII-B, Fig. 10).

A single absorbing attack state σ1 whose rule φ1 drops every FLOW_MOD on
the bound connections.  "The attack drops the request, and as a result,
the switch does not instantiate the corresponding flow entry" — every
subsequent packet of the flow becomes a table miss and a controller round
trip, degrading (or, for controllers that release the buffered packet via
the flow mod itself, denying) data-plane service.
"""

from __future__ import annotations

from repro.core.lang.actions import DropMessage
from repro.core.lang.attack import Attack
from repro.core.lang.parser import parse_condition
from repro.core.lang.rules import Rule
from repro.core.lang.states import AttackState
from repro.core.model.capabilities import gamma_no_tls
from repro.attacks.library import normalize_connections


def flow_mod_suppression_attack(connections) -> Attack:
    """Build Fig. 10's attack for the given control-plane connections.

    The paper binds φ1 to all four case-study connections
    {(c1,s1), (c1,s2), (c1,s3), (c1,s4)}; any subset works.
    """
    bound = normalize_connections(connections)
    phi1 = Rule(
        name="phi1",
        connections=bound,
        gamma=gamma_no_tls(),
        conditional=parse_condition("type = FLOW_MOD"),
        actions=[DropMessage()],
    )
    sigma1 = AttackState("sigma1", [phi1])
    return Attack(
        name="flow-mod-suppression",
        states=[sigma1],
        start="sigma1",
        description=(
            "Fig. 10: drop every FLOW_MOD so switches never instantiate "
            "flow entries; σ1 is both the start and the absorbing state."
        ),
    )
