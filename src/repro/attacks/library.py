"""Shared helpers for building attack descriptions."""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.core.lang.actions import PassMessage
from repro.core.lang.attack import Attack
from repro.core.lang.conditionals import TrueCondition
from repro.core.lang.rules import Rule
from repro.core.lang.states import AttackState
from repro.core.model.capabilities import Capability

ConnectionKey = Tuple[str, str]


def passthrough_attack(connections: Iterable[ConnectionKey]) -> Attack:
    """The trivial single-state "attack" of Fig. 5.

    One state whose only rule passes every message — it "models normal
    control plane operation" and is the baseline for the interposition-
    overhead ablation benchmark.
    """
    rule = Rule(
        "pass_all",
        frozenset(tuple(c) for c in connections),
        {Capability.PASS_MESSAGE},
        TrueCondition(),
        [PassMessage()],
    )
    state = AttackState("sigma1", [rule])
    return Attack(
        "passthrough",
        [state],
        start="sigma1",
        description="Fig. 5: normal control plane operation (all messages pass).",
    )


def normalize_connections(connections) -> frozenset:
    """Accept a single (c, s) pair or an iterable of pairs."""
    if (
        isinstance(connections, tuple)
        and len(connections) == 2
        and all(isinstance(part, str) for part in connections)
    ):
        return frozenset({connections})
    return frozenset(tuple(connection) for connection in connections)
