"""Shared helpers for building attack descriptions, and the attack registry.

The registry is how higher layers (campaigns, the CLI, future sweeps)
refer to attacks *by name* instead of importing factory functions: each
attack module registers its factory under a stable name, and
:func:`build_attack` instantiates one, binding ``connections`` when the
factory wants them.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, Iterable, List, Tuple

from repro.core.lang.actions import PassMessage
from repro.core.lang.attack import Attack
from repro.core.lang.conditionals import TrueCondition
from repro.core.lang.rules import Rule
from repro.core.lang.states import AttackState
from repro.core.model.capabilities import Capability

ConnectionKey = Tuple[str, str]
AttackFactory = Callable[..., Attack]

_REGISTRY: Dict[str, AttackFactory] = {}


def register_attack(name: str, factory: AttackFactory,
                    replace: bool = False) -> AttackFactory:
    """Register ``factory`` under ``name`` (idempotent for the same factory).

    Raises ``ValueError`` on a conflicting re-registration unless
    ``replace=True``, so two modules cannot silently claim one name.
    """
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not factory and not replace:
        raise ValueError(f"attack {name!r} is already registered")
    _REGISTRY[name] = factory
    return factory


def _ensure_builtin_attacks() -> None:
    # The stock attack modules register themselves when the package
    # initialises; importing it here makes lookups work even when a caller
    # imported this module directly.
    import repro.attacks  # noqa: F401


def get_attack_factory(name: str) -> AttackFactory:
    """Look up a registered factory; raises ``KeyError`` with suggestions."""
    _ensure_builtin_attacks()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown attack {name!r}; registered: {', '.join(list_attacks())}"
        ) from None


def list_attacks() -> List[str]:
    """Names of every registered attack, sorted."""
    _ensure_builtin_attacks()
    return sorted(_REGISTRY)


def build_attack(name: str, connections=None, **params) -> Attack:
    """Instantiate a registered attack by name.

    ``connections`` is passed through only when the factory declares a
    ``connections`` (or ``connection``) parameter, so connection-free
    factories keep working; ``params`` are forwarded verbatim.
    """
    factory = get_attack_factory(name)
    signature = inspect.signature(factory)
    if connections is not None:
        if "connections" in signature.parameters:
            params.setdefault("connections", connections)
        elif "connection" in signature.parameters:
            params.setdefault("connection", connections)
    return factory(**params)


def passthrough_attack(connections: Iterable[ConnectionKey]) -> Attack:
    """The trivial single-state "attack" of Fig. 5.

    One state whose only rule passes every message — it "models normal
    control plane operation" and is the baseline for the interposition-
    overhead ablation benchmark.
    """
    rule = Rule(
        "pass_all",
        frozenset(tuple(c) for c in connections),
        {Capability.PASS_MESSAGE},
        TrueCondition(),
        [PassMessage()],
    )
    state = AttackState("sigma1", [rule])
    return Attack(
        "passthrough",
        [state],
        start="sigma1",
        description="Fig. 5: normal control plane operation (all messages pass).",
    )


def normalize_connections(connections) -> frozenset:
    """Accept a single (c, s) pair or an iterable of pairs."""
    if (
        isinstance(connections, tuple)
        and len(connections) == 2
        and all(isinstance(part, str) for part in connections)
    ):
        return frozenset({connections})
    return frozenset(tuple(connection) for connection in connections)
