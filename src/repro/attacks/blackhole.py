"""Black-hole routing via MODIFYMESSAGE (the Section II-A4 effect).

Instead of dropping FLOW_MODs (loud: the controller notices nothing gets
installed and keeps seeing PACKET_INs), this attack *rewrites* their
output actions to a dead or wrong port before forwarding them.  The
switch installs the rule, the controller sees the expected flow state,
subsequent packets match in hardware — and silently vanish.  A far
stealthier service denial than suppression: no control-plane amplification
signature at all.

Optionally the attack only activates after ``after_timestamp`` simulated
seconds (using the extension ``>`` ordering operator), modelling an
attacker who waits out a commissioning/test window.
"""

from __future__ import annotations

from typing import Optional

from repro.core.lang.actions import ModifyMessage
from repro.core.lang.attack import Attack
from repro.core.lang.parser import parse_condition
from repro.core.lang.rules import Rule
from repro.core.lang.states import AttackState
from repro.core.model.capabilities import gamma_no_tls
from repro.attacks.library import normalize_connections


def blackhole_attack(
    connections,
    dead_port: int,
    after_timestamp: Optional[float] = None,
) -> Attack:
    """Rewrite every FLOW_MOD's output actions to ``dead_port``.

    Pick a port with nothing (or the wrong thing) behind it.  With
    ``after_timestamp`` set, flow mods before that simulated time pass
    untouched.
    """
    bound = normalize_connections(connections)
    condition = "type = FLOW_MOD"
    if after_timestamp is not None:
        condition += f" and timestamp > {after_timestamp}"
    rule = Rule(
        name="rewrite_outputs",
        connections=bound,
        gamma=gamma_no_tls(),
        conditional=parse_condition(condition),
        actions=[ModifyMessage("output_port", dead_port)],
    )
    sigma1 = AttackState("sigma1", [rule])
    return Attack(
        name="flow-mod-blackhole",
        states=[sigma1],
        start="sigma1",
        description=(
            f"Rewrite FLOW_MOD output actions to port {dead_port}"
            + (f" after t={after_timestamp}s" if after_timestamp else "")
            + "; rules install but traffic silently vanishes."
        ),
    )
