"""Message-delay attack: DELAYMESSAGE actuation.

Delays every matching message by a fixed amount — useful for probing
timeout sensitivity (e.g. delaying ECHO_REPLYs toward a switch's liveness
deadline) and as the DELAYMESSAGE capability demonstration.
"""

from __future__ import annotations

from repro.core.lang.actions import DelayMessage
from repro.core.lang.attack import Attack
from repro.core.lang.parser import parse_condition
from repro.core.lang.rules import Rule
from repro.core.lang.states import AttackState
from repro.core.model.capabilities import gamma_no_tls
from repro.attacks.library import normalize_connections


def delay_attack(
    connections,
    condition_text: str = "type = FLOW_MOD",
    delay_s: float = 0.5,
) -> Attack:
    """Delay every matching message by ``delay_s`` seconds."""
    if delay_s <= 0:
        raise ValueError("delay must be positive")
    bound = normalize_connections(connections)
    rule = Rule(
        name="delay_matching",
        connections=bound,
        gamma=gamma_no_tls(),
        conditional=parse_condition(condition_text),
        actions=[DelayMessage(delay_s)],
    )
    sigma1 = AttackState("sigma1", [rule])
    return Attack(
        name="message-delay",
        states=[sigma1],
        start="sigma1",
        description=f"Delay messages matching {condition_text!r} by {delay_s}s.",
    )
