"""Reusable attack descriptions.

The paper's goal is "modular and reusable control plane attack
descriptions" — this package is that library: the two evaluation attacks
(Sections VII-B and VII-C), the Section VIII-A expressiveness examples
(reordering, replay, flooding), the Section VIII-B modelling-efficiency
counter idiom, and additional capability demonstrations (delay, fuzzing).
"""

from repro.attacks.blackhole import blackhole_attack
from repro.attacks.connection_interruption import connection_interruption_attack
from repro.attacks.counting import counting_attack_deque, counting_attack_naive
from repro.attacks.delay import delay_attack
from repro.attacks.flow_mod_suppression import flow_mod_suppression_attack
from repro.attacks.fuzzing import fuzzing_attack
from repro.attacks.library import (
    build_attack,
    get_attack_factory,
    list_attacks,
    passthrough_attack,
    register_attack,
)
from repro.attacks.link_fabrication import (
    forged_lldp_packet_in,
    link_fabrication_attack,
)
from repro.attacks.reordering import reordering_attack
from repro.attacks.replay import replay_attack
from repro.attacks.stats_evasion import stats_evasion_attack
from repro.attacks.stochastic import stochastic_drop_attack

# The registry: campaigns and the CLI reference attacks by these names.
register_attack("passthrough", passthrough_attack)
register_attack("flow-mod-suppression", flow_mod_suppression_attack)
register_attack("connection-interruption", connection_interruption_attack)
register_attack("blackhole", blackhole_attack)
register_attack("delay", delay_attack)
register_attack("replay", replay_attack)
register_attack("reordering", reordering_attack)
register_attack("fuzzing", fuzzing_attack)
register_attack("stats-evasion", stats_evasion_attack)
register_attack("link-fabrication", link_fabrication_attack)
register_attack("stochastic-drop", stochastic_drop_attack)
register_attack("counting-naive", counting_attack_naive)
register_attack("counting-deque", counting_attack_deque)

__all__ = [
    "blackhole_attack",
    "build_attack",
    "connection_interruption_attack",
    "counting_attack_deque",
    "counting_attack_naive",
    "delay_attack",
    "flow_mod_suppression_attack",
    "forged_lldp_packet_in",
    "fuzzing_attack",
    "get_attack_factory",
    "link_fabrication_attack",
    "list_attacks",
    "passthrough_attack",
    "register_attack",
    "reordering_attack",
    "replay_attack",
    "stats_evasion_attack",
    "stochastic_drop_attack",
]
