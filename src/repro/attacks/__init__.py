"""Reusable attack descriptions.

The paper's goal is "modular and reusable control plane attack
descriptions" — this package is that library: the two evaluation attacks
(Sections VII-B and VII-C), the Section VIII-A expressiveness examples
(reordering, replay, flooding), the Section VIII-B modelling-efficiency
counter idiom, and additional capability demonstrations (delay, fuzzing).
"""

from repro.attacks.blackhole import blackhole_attack
from repro.attacks.connection_interruption import connection_interruption_attack
from repro.attacks.counting import counting_attack_deque, counting_attack_naive
from repro.attacks.delay import delay_attack
from repro.attacks.flow_mod_suppression import flow_mod_suppression_attack
from repro.attacks.fuzzing import fuzzing_attack
from repro.attacks.library import passthrough_attack
from repro.attacks.link_fabrication import (
    forged_lldp_packet_in,
    link_fabrication_attack,
)
from repro.attacks.reordering import reordering_attack
from repro.attacks.replay import replay_attack
from repro.attacks.stats_evasion import stats_evasion_attack
from repro.attacks.stochastic import stochastic_drop_attack

__all__ = [
    "blackhole_attack",
    "connection_interruption_attack",
    "counting_attack_deque",
    "counting_attack_naive",
    "delay_attack",
    "flow_mod_suppression_attack",
    "forged_lldp_packet_in",
    "fuzzing_attack",
    "link_fabrication_attack",
    "passthrough_attack",
    "reordering_attack",
    "replay_attack",
    "stats_evasion_attack",
    "stochastic_drop_attack",
]
