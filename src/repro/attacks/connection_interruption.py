"""The connection-interruption attack (Section VII-C, Fig. 12).

Three states against one control-plane connection (the paper uses
(c1, s2), the DMZ firewall switch):

* **σ1** waits for the connection-setup message (the switch's HELLO) and
  transitions to σ2;
* **σ2** waits for a flow-modification request "related to traffic
  originating from h2 and destined to an internal network host,
  H \\ {h1}" — the firewall's drop rule — then drops it and moves to σ3;
* **σ3** (absorbing) drops every message on the connection, black-holing
  it until the switch's and controller's liveness checks declare the
  connection dead and the switch falls back to its fail-safe or
  fail-secure behaviour (the Table II axis).

The σ2 conditional inspects the flow mod's ``match.nw_src`` /
``match.nw_dst`` type options.  Controllers whose flow-mod matches omit
network-layer fields (Ryu's simple_switch) never satisfy it — "the attack
never entered state σ3".
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.core.lang.actions import DropMessage, GoToState, PassMessage
from repro.core.lang.attack import Attack
from repro.core.lang.parser import parse_condition
from repro.core.lang.rules import Rule
from repro.core.lang.states import AttackState
from repro.core.model.capabilities import gamma_no_tls

ConnectionKey = Tuple[str, str]


def connection_interruption_attack(
    connection: ConnectionKey,
    trigger_source_ip: str,
    protected_destination_ips: Iterable[str],
) -> Attack:
    """Build Fig. 12's attack.

    ``trigger_source_ip`` is the external user's address (h2 in the case
    study) and ``protected_destination_ips`` are the internal hosts whose
    flow mods trip the attack.
    """
    controller, switch = connection
    destinations = ", ".join(str(ip) for ip in protected_destination_ips)

    phi1 = Rule(
        name="phi1",
        connections=connection,
        gamma=gamma_no_tls(),
        conditional=parse_condition(f"source = {switch} and type = HELLO"),
        actions=[PassMessage(), GoToState("sigma2")],
    )
    sigma1 = AttackState("sigma1", [phi1])

    phi2 = Rule(
        name="phi2",
        connections=connection,
        gamma=gamma_no_tls(),
        conditional=parse_condition(
            f"type = FLOW_MOD and destination = {switch} "
            f"and opt.match.nw_src = {trigger_source_ip} "
            f"and opt.match.nw_dst in {{{destinations}}}"
        ),
        actions=[DropMessage(), GoToState("sigma3")],
    )
    sigma2 = AttackState("sigma2", [phi2])

    phi3 = Rule(
        name="phi3",
        connections=connection,
        gamma=gamma_no_tls(),
        conditional=parse_condition("true"),
        actions=[DropMessage()],
    )
    sigma3 = AttackState("sigma3", [phi3])

    return Attack(
        name="connection-interruption",
        states=[sigma1, sigma2, sigma3],
        start="sigma1",
        description=(
            f"Fig. 12: sever {connection} after observing a firewall flow "
            f"mod for {trigger_source_ip} -> {{{destinations}}}."
        ),
    )
