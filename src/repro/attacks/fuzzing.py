"""Message-fuzzing attack: FUZZMESSAGE actuation (DELTA-style testing).

Flips random bits in matching messages.  The related-work system DELTA
finds vulnerabilities by fuzzing control messages; in ATTAIN's language
that is a one-rule attack.  A fuzz count limit keeps the attack bounded so
experiments can compare endpoint robustness before/after N corruptions.
"""

from __future__ import annotations

from typing import Optional

from repro.core.lang.actions import FuzzMessage, GoToState, PrependAction
from repro.core.lang.attack import Attack
from repro.core.lang.conditionals import And, Comparison, Const, ExamineFront, ShiftExpr, Sum
from repro.core.lang.parser import parse_condition
from repro.core.lang.rules import Rule
from repro.core.lang.states import AttackState
from repro.core.model.capabilities import gamma_no_tls
from repro.attacks.library import normalize_connections


def fuzzing_attack(
    connections,
    condition_text: str = "type = PACKET_IN",
    bit_flips: int = 8,
    max_messages: Optional[int] = None,
    preserve_header: bool = True,
) -> Attack:
    """Fuzz matching messages; optionally stop after ``max_messages``."""
    bound = normalize_connections(connections)
    match = parse_condition(condition_text)
    fuzz = FuzzMessage(bit_flips=bit_flips, preserve_header=preserve_header)

    if max_messages is None:
        rule = Rule(
            name="fuzz_matching",
            connections=bound,
            gamma=gamma_no_tls(),
            conditional=match,
            actions=[fuzz],
        )
        states = [AttackState("sigma1", [rule])]
        deques = {}
    else:
        increment = Sum(ShiftExpr("count"), [("+", Const(1))])
        fuzz_rule = Rule(
            name="fuzz_matching",
            connections=bound,
            gamma=gamma_no_tls(),
            conditional=match,
            actions=[fuzz, PrependAction("count", increment)],
        )
        stop_rule = Rule(
            name="stop_after_limit",
            connections=bound,
            gamma=gamma_no_tls(),
            conditional=And(
                match, Comparison("=", ExamineFront("count"), Const(max_messages))
            ),
            actions=[GoToState("sigma_end")],
        )
        states = [
            AttackState("sigma1", [fuzz_rule, stop_rule]),
            AttackState("sigma_end", []),  # σ_end: no rules, all pass
        ]
        deques = {"count": [0]}
    return Attack(
        name="message-fuzzing",
        states=states,
        start="sigma1",
        deque_declarations=deques,
        description=(
            f"Flip {bit_flips} random bits in messages matching "
            f"{condition_text!r}"
            + (f", stopping after {max_messages} messages." if max_messages else ".")
        ),
    )
