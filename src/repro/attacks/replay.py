"""Message replay / flooding attack (Section VIII-A).

"Suppose a set of messages M need to be sent in FIFO order more than once.
...the attack can store the messages in a deque δ acting like a queue, use
the DUPLICATEMESSAGE and [APPEND] actions to duplicate and store message
copies, and sometime later use the [SHIFT] and PASSMESSAGE actions to
replay the messages in FIFO order.  Flooding can be implemented similarly."

``replay_attack`` records ``batch_size`` matching messages (passing the
originals through) and then re-injects each recorded message
``replay_copies`` times in FIFO order, triggered by the next matching
message — a replay for ``replay_copies=1`` and a flood for larger values.
"""

from __future__ import annotations

from repro.core.lang.actions import InjectNewMessage, PrependAction, ReadMessage, ShiftAction
from repro.core.lang.attack import Attack
from repro.core.lang.conditionals import (
    And,
    Comparison,
    Const,
    ExamineFront,
    ShiftExpr,
    Sum,
)
from repro.core.lang.parser import parse_condition
from repro.core.lang.rules import Rule
from repro.core.lang.states import AttackState
from repro.core.model.capabilities import gamma_no_tls
from repro.attacks.library import normalize_connections


def replay_attack(
    connections,
    condition_text: str = "type = PACKET_IN",
    batch_size: int = 2,
    replay_copies: int = 1,
) -> Attack:
    """Record a FIFO batch, then replay (or flood) it."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if replay_copies < 1:
        raise ValueError("replay_copies must be >= 1")
    bound = normalize_connections(connections)
    match = parse_condition(condition_text)
    increment = Sum(ShiftExpr("count"), [("+", Const(1))])

    # σ1: record matching messages (originals pass through untouched).
    record = Rule(
        name="record",
        connections=bound,
        gamma=gamma_no_tls(),
        conditional=And(
            match,
            Comparison("!=", ExamineFront("count"), Const(batch_size)),
        ),
        actions=[
            ReadMessage(store_to="queue"),   # queue: FIFO via APPEND
            PrependAction("count", increment),
        ],
    )
    # Once the batch is full, the next matching message triggers the
    # replay burst: SHIFT yields the oldest message first (FIFO).
    replay_actions = []
    for _ in range(batch_size):
        # Re-inject each stored message `replay_copies` times: examine the
        # front for the extra flood copies, then SHIFT consumes the entry.
        for _copy in range(replay_copies - 1):
            replay_actions.append(InjectNewMessage(ExamineFront("queue")))
        replay_actions.append(InjectNewMessage(ShiftExpr("queue")))
    replay = Rule(
        name="replay",
        connections=bound,
        gamma=gamma_no_tls(),
        conditional=And(
            match,
            Comparison("=", ExamineFront("count"), Const(batch_size)),
        ),
        actions=replay_actions
        + [ShiftAction("count"), PrependAction("count", Const(0))],
    )
    sigma1 = AttackState("sigma1", [record, replay])
    return Attack(
        name="message-replay" if replay_copies == 1 else "message-flooding",
        states=[sigma1],
        start="sigma1",
        deque_declarations={"count": [0], "queue": []},
        description=(
            f"Section VIII-A: store {batch_size} matching messages in a "
            f"FIFO deque, then re-inject each {replay_copies}x."
        ),
    )
