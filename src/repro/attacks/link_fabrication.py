"""LLDP link-fabrication attack (Hong et al. [9], Section II-A4).

"LLDP messages can be used to fabricate fake links to manipulate the
controller into believing that such links exist, thus causing black hole
routing."

The attack forges a PACKET_IN that claims an LLDP probe from a chosen
(fake) source switch/port arrived on the attacked switch's ``in_port``,
and injects it toward the controller whenever a *real* LLDP PACKET_IN
crosses the connection — so the fabricated link refreshes at exactly the
discovery service's own cadence and never ages out of its TTL.
"""

from __future__ import annotations

from typing import Tuple

from repro.netlib.addresses import LLDP_MULTICAST_MAC, MacAddress
from repro.netlib.ethernet import EtherType, EthernetFrame
from repro.netlib.lldp import LldpPacket
from repro.openflow.constants import OFP_NO_BUFFER
from repro.openflow.messages import PacketIn
from repro.core.lang.actions import InjectNewMessage
from repro.core.lang.attack import Attack
from repro.core.lang.parser import parse_condition
from repro.core.lang.rules import Rule
from repro.core.lang.states import AttackState
from repro.core.model.capabilities import gamma_no_tls

ConnectionKey = Tuple[str, str]


def forged_lldp_packet_in(
    fake_src_dpid: int,
    fake_src_port: int,
    reported_in_port: int,
    chassis_prefix: str = "dpid:",
) -> PacketIn:
    """Build the forged PACKET_IN carrying the fabricated LLDP probe."""
    lldp = LldpPacket(f"{chassis_prefix}{fake_src_dpid}", fake_src_port)
    frame = EthernetFrame(
        LLDP_MULTICAST_MAC,
        MacAddress((fake_src_dpid << 8) | fake_src_port),
        EtherType.LLDP,
        lldp.pack(),
    )
    data = frame.pack()
    return PacketIn(OFP_NO_BUFFER, len(data), reported_in_port, 0, data)


def link_fabrication_attack(
    connection: ConnectionKey,
    fake_src_dpid: int,
    fake_src_port: int,
    reported_in_port: int,
) -> Attack:
    """Fabricate a link (fake_src_dpid, fake_src_port) -> attacked switch.

    The controller's :class:`~repro.controllers.discovery.TopologyDiscoveryApp`
    will record the fabricated link as if the probe were genuine.
    """
    forged = forged_lldp_packet_in(fake_src_dpid, fake_src_port, reported_in_port)
    rule = Rule(
        name="fabricate_on_real_probe",
        connections=connection,
        gamma=gamma_no_tls(),
        # 35020 == 0x88CC, the LLDP EtherType of the genuine probe.
        conditional=parse_condition(
            "type = PACKET_IN and opt.packet.dl_type = 35020"
        ),
        actions=[InjectNewMessage(forged, direction="to_controller")],
    )
    sigma1 = AttackState("sigma1", [rule])
    return Attack(
        name="lldp-link-fabrication",
        states=[sigma1],
        start="sigma1",
        description=(
            f"Inject forged LLDP PACKET_INs on {connection} claiming a link "
            f"from dpid {fake_src_dpid} port {fake_src_port} into port "
            f"{reported_in_port}."
        ),
    )
