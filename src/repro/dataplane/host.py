"""End hosts with a small ARP/ICMP/TCP network stack.

Hosts are the workload generators of the evaluation: ``ping`` (ICMP echo
with per-trial RTT and loss accounting) and an ``iperf``-style TCP bulk
transfer that measures achieved throughput.  The stack is deliberately
simple — go-back-N with a fixed window — but it exercises the same
data-plane paths (ARP resolution, per-flow table misses, controller round
trips) whose disruption the paper measures.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.netlib import fastframe
from repro.netlib.addresses import BROADCAST_MAC, Ipv4Address, MacAddress
from repro.netlib.arp import ArpPacket
from repro.netlib.ethernet import EtherType, EthernetFrame
from repro.netlib.icmp import IcmpEcho
from repro.netlib.ipv4 import IpProtocol, Ipv4Packet
from repro.netlib.packet import decode_ethernet
from repro.netlib.tcp import TcpFlags, TcpSegment
from repro.netlib.udp import UdpDatagram
from repro.sim.engine import SimulationEngine
from repro.sim.process import Signal


@dataclass
class PingResult:
    """Outcome of one ping run (one ``ping`` invocation in the paper)."""

    target: Ipv4Address
    sent: int = 0
    received: int = 0
    rtts: List[Optional[float]] = field(default_factory=list)

    @property
    def loss_rate(self) -> float:
        return 1.0 - (self.received / self.sent) if self.sent else 0.0

    @property
    def successful_rtts(self) -> List[float]:
        return [rtt for rtt in self.rtts if rtt is not None]

    @property
    def min_rtt(self) -> Optional[float]:
        ok = self.successful_rtts
        return min(ok) if ok else None

    @property
    def avg_rtt(self) -> Optional[float]:
        ok = self.successful_rtts
        return sum(ok) / len(ok) if ok else None

    @property
    def median_rtt(self) -> Optional[float]:
        ok = sorted(self.successful_rtts)
        if not ok:
            return None
        mid = len(ok) // 2
        if len(ok) % 2:
            return ok[mid]
        return (ok[mid - 1] + ok[mid]) / 2

    @property
    def max_rtt(self) -> Optional[float]:
        ok = self.successful_rtts
        return max(ok) if ok else None

    @property
    def any_success(self) -> bool:
        return self.received > 0


@dataclass
class IperfResult:
    """Outcome of one iperf-style TCP transfer trial."""

    target: Ipv4Address
    duration_s: float
    bytes_acked: int = 0
    connected: bool = False
    retransmits: int = 0

    @property
    def throughput_bps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.bytes_acked * 8.0 / self.duration_s

    @property
    def throughput_mbps(self) -> float:
        return self.throughput_bps / 1e6


class _PingRun:
    """One in-flight ping series (identified by ICMP identifier)."""

    def __init__(
        self,
        host: "Host",
        target: Ipv4Address,
        count: int,
        interval: float,
        timeout: float,
        identifier: int,
    ) -> None:
        self.host = host
        self.target = target
        self.count = count
        self.interval = interval
        self.timeout = timeout
        self.identifier = identifier
        self.result = PingResult(target)
        self.done = Signal(host.engine, name=f"{host.name}.ping.{identifier}")
        self._sent_at: Dict[int, float] = {}
        self._answered: set = set()
        self._finished = False

    def start(self) -> None:
        for seq in range(self.count):
            self.host.engine.schedule(seq * self.interval, self._send_one, seq)
        finish_at = (self.count - 1) * self.interval + self.timeout + 0.001
        self.host.engine.schedule(finish_at, self._finish)

    def _send_one(self, seq: int) -> None:
        self.result.sent += 1
        self.result.rtts.append(None)
        self._sent_at[seq] = self.host.engine.now
        echo = IcmpEcho.request(self.identifier, seq, b"\x00" * 48)
        self.host.send_ip(self.target, IpProtocol.ICMP, echo.pack())

    def reply_received(self, seq: int) -> None:
        if seq in self._answered or seq not in self._sent_at:
            return
        rtt = self.host.engine.now - self._sent_at[seq]
        if rtt > self.timeout:
            return  # reply arrived after the per-trial deadline
        self._answered.add(seq)
        self.result.received += 1
        self.result.rtts[seq] = rtt

    def _finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        self.host._ping_runs.pop(self.identifier, None)
        self.done.fire(self.result)


class _IperfServer:
    """Accepts one TCP connection per client and acks received bytes."""

    def __init__(self, host: "Host", port: int) -> None:
        self.host = host
        self.port = port
        # keyed by (client_ip, client_port) -> rcv_nxt
        self.sessions: Dict[Tuple[Ipv4Address, int], int] = {}
        self.bytes_received: Dict[Tuple[Ipv4Address, int], int] = {}

    def segment_received(self, src_ip: Ipv4Address, segment: TcpSegment) -> None:
        key = (src_ip, segment.src_port)
        if segment.is_syn:
            self.sessions[key] = (segment.seq + 1) & 0xFFFFFFFF
            self.bytes_received[key] = 0
            self._send(src_ip, segment.src_port, TcpFlags.SYN | TcpFlags.ACK,
                       seq=0, ack=self.sessions[key])
            return
        if key not in self.sessions:
            self._send(src_ip, segment.src_port, TcpFlags.RST, seq=0, ack=0)
            return
        rcv_nxt = self.sessions[key]
        if segment.is_fin:
            self._send(src_ip, segment.src_port, TcpFlags.FIN | TcpFlags.ACK,
                       seq=1, ack=(rcv_nxt + 1) & 0xFFFFFFFF)
            self.sessions.pop(key, None)
            return
        if segment.payload:
            if segment.seq == rcv_nxt:
                rcv_nxt = (rcv_nxt + len(segment.payload)) & 0xFFFFFFFF
                self.sessions[key] = rcv_nxt
                self.bytes_received[key] += len(segment.payload)
            # Cumulative ack either way (duplicate ack on out-of-order).
            self._send(src_ip, segment.src_port, TcpFlags.ACK, seq=1, ack=rcv_nxt)

    def _send(self, dst_ip: Ipv4Address, dst_port: int, flags: TcpFlags,
              seq: int, ack: int) -> None:
        segment = TcpSegment(self.port, dst_port, seq=seq, ack=ack, flags=flags)
        self.host.send_ip(dst_ip, IpProtocol.TCP, segment.pack())


class _IperfClient:
    """A duration-bounded go-back-N bulk sender."""

    MSS = 1460
    WINDOW = 65535
    SYN_RETRIES = 5
    SYN_TIMEOUT = 1.0
    RTO = 0.5

    def __init__(
        self,
        host: "Host",
        target: Ipv4Address,
        port: int,
        duration: float,
        src_port: int,
    ) -> None:
        self.host = host
        self.target = target
        self.port = port
        self.duration = duration
        self.src_port = src_port
        self.result = IperfResult(target, duration)
        self.done = Signal(host.engine, name=f"{host.name}.iperf.{src_port}")
        self.established = False
        self.finished = False
        self.snd_una = 0
        self.snd_nxt = 0
        self.snd_max = 0  # highest byte ever sent (survives go-back-N resets)
        self._syn_attempts = 0
        self._deadline: Optional[float] = None
        self._rto_event = None
        self._give_up_event = None

    def start(self) -> None:
        self._send_syn()

    def _send_syn(self) -> None:
        if self.established or self.finished:
            return
        if self._syn_attempts >= self.SYN_RETRIES:
            self._finish()
            return
        self._syn_attempts += 1
        self._send(TcpFlags.SYN, seq=0, ack=0)
        self.host.engine.schedule(self.SYN_TIMEOUT, self._send_syn)

    def segment_received(self, segment: TcpSegment) -> None:
        if self.finished:
            return
        if segment.is_rst:
            self._finish()
            return
        if segment.is_syn and segment.is_ack and not self.established:
            self.established = True
            self.result.connected = True
            self._deadline = self.host.engine.now + self.duration
            self._give_up_event = self.host.engine.schedule(
                self.duration + 10.0, self._finish
            )
            self._try_send()
            return
        if segment.is_ack and self.established:
            acked = (segment.ack - 1) & 0xFFFFFFFF  # data bytes acked (seq starts at 1)
            if acked > self.snd_una:
                self.result.bytes_acked = acked
                self.snd_una = acked
                self._restart_rto()
            self._try_send()

    def _try_send(self) -> None:
        if self.finished or not self.established:
            return
        now = self.host.engine.now
        if self._deadline is not None and now >= self._deadline:
            if self.snd_una >= self.snd_max:
                self._send(TcpFlags.FIN | TcpFlags.ACK, seq=self.snd_max + 1, ack=1)
                self._finish()
            else:
                # Past the deadline with unacked data: retransmit the
                # outstanding window, but generate no new data.
                limit = min(self.snd_una + self.WINDOW, self.snd_max)
                while self.snd_nxt < limit:
                    chunk = min(self.MSS, limit - self.snd_nxt)
                    self._send(TcpFlags.ACK, seq=self.snd_nxt + 1, ack=1,
                               payload=b"\x00" * chunk)
                    self.snd_nxt += chunk
                if self._rto_event is None:
                    self._restart_rto()
            return
        while self.snd_nxt - self.snd_una < self.WINDOW:
            payload = b"\x00" * self.MSS
            self._send(TcpFlags.ACK, seq=self.snd_nxt + 1, ack=1, payload=payload)
            self.snd_nxt += len(payload)
            self.snd_max = max(self.snd_max, self.snd_nxt)
        if self._rto_event is None:
            self._restart_rto()

    def _restart_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
        self._rto_event = self.host.engine.schedule(self.RTO, self._rto_fired)

    def _rto_fired(self) -> None:
        self._rto_event = None
        if self.finished or not self.established:
            return
        if self.snd_una < self.snd_max:
            # Go-back-N: retransmit the window from the last cumulative ack.
            self.result.retransmits += 1
            self.snd_nxt = self.snd_una
            self._try_send()
        elif self._deadline is not None and self.host.engine.now >= self._deadline:
            self._finish()
        else:
            self._try_send()

    def _send(self, flags: TcpFlags, seq: int, ack: int, payload: bytes = b"") -> None:
        segment = TcpSegment(self.src_port, self.port, seq=seq, ack=ack,
                             flags=flags, payload=payload)
        self.host.send_ip(self.target, IpProtocol.TCP, segment.pack())

    def _finish(self) -> None:
        if self.finished:
            return
        self.finished = True
        if self._rto_event is not None:
            self._rto_event.cancel()
        if self._give_up_event is not None:
            self._give_up_event.cancel()
        if self._deadline is not None:
            elapsed = min(self.duration, max(1e-9, self.host.engine.now - (self._deadline - self.duration)))
            self.result.duration_s = max(elapsed, 1e-9) if elapsed > 0 else self.duration
        self.host._iperf_clients.pop(self.src_port, None)
        self.done.fire(self.result)


class Host:
    """A simulated end host with one network interface."""

    ARP_RETRIES = 3
    ARP_TIMEOUT = 1.0

    _icmp_id = itertools.count(1)
    _ephemeral = itertools.count(49152)

    def __init__(
        self,
        engine: SimulationEngine,
        name: str,
        mac: MacAddress,
        ip: Ipv4Address,
    ) -> None:
        self.engine = engine
        self.name = name
        self.mac = MacAddress(mac)
        self.ip = Ipv4Address(ip)
        self._transmit: Optional[Callable[[bytes], None]] = None

        self.arp_table: Dict[Ipv4Address, MacAddress] = {}
        self._arp_pending: Dict[Ipv4Address, List[bytes]] = {}
        self._arp_attempts: Dict[Ipv4Address, int] = {}

        self._ping_runs: Dict[int, _PingRun] = {}
        self._iperf_servers: Dict[int, _IperfServer] = {}
        self._iperf_clients: Dict[int, _IperfClient] = {}
        self._udp_handlers: Dict[int, Callable[[Ipv4Address, UdpDatagram], None]] = {}

        self.stats: Dict[str, int] = {
            "tx_frames": 0,
            "rx_frames": 0,
            "arp_requests_sent": 0,
            "arp_replies_sent": 0,
            "icmp_requests_answered": 0,
            "arp_resolution_failures": 0,
        }

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #

    def attach(self, transmit: Callable[[bytes], None]) -> None:
        """Bind the host NIC to its access link."""
        self._transmit = transmit

    def _send_frame(self, frame: EthernetFrame) -> None:
        if self._transmit is None:
            raise RuntimeError(f"host {self.name} is not attached to a link")
        self.stats["tx_frames"] += 1
        self._transmit(frame.pack())

    def inject_frame(self, data: bytes) -> None:
        """Put pre-packed frame bytes on the wire as-is.

        The traffic-generator subsystem synthesizes frames from templates
        (``repro.workloads``) — including spoofed source MACs/IPs the
        normal stack would never emit — so they bypass ARP resolution and
        EthernetFrame re-packing entirely.
        """
        if self._transmit is None:
            raise RuntimeError(f"host {self.name} is not attached to a link")
        self.stats["tx_frames"] += 1
        self._transmit(data)

    # ------------------------------------------------------------------ #
    # ARP + IP send path
    # ------------------------------------------------------------------ #

    def send_ip(self, dst_ip: Ipv4Address, protocol: int, payload: bytes) -> None:
        """Send an IPv4 packet, resolving the destination MAC first."""
        dst_ip = Ipv4Address(dst_ip)
        packet = Ipv4Packet(self.ip, dst_ip, protocol, payload)
        dst_mac = self.arp_table.get(dst_ip)
        if dst_mac is not None:
            self._send_frame(
                EthernetFrame(dst_mac, self.mac, EtherType.IPV4, packet.pack())
            )
            return
        self._arp_pending.setdefault(dst_ip, []).append(packet.pack())
        if self._arp_attempts.get(dst_ip, 0) == 0:
            self._arp_attempts[dst_ip] = 0
            self._send_arp_request(dst_ip)

    def _send_arp_request(self, dst_ip: Ipv4Address) -> None:
        if dst_ip in self.arp_table or dst_ip not in self._arp_pending:
            return
        attempts = self._arp_attempts.get(dst_ip, 0)
        if attempts >= self.ARP_RETRIES:
            dropped = self._arp_pending.pop(dst_ip, [])
            self._arp_attempts.pop(dst_ip, None)
            self.stats["arp_resolution_failures"] += len(dropped)
            return
        self._arp_attempts[dst_ip] = attempts + 1
        self.stats["arp_requests_sent"] += 1
        arp = ArpPacket.request(self.mac, self.ip, dst_ip)
        self._send_frame(EthernetFrame(BROADCAST_MAC, self.mac, EtherType.ARP, arp.pack()))
        self.engine.schedule(self.ARP_TIMEOUT, self._send_arp_request, dst_ip)

    # ------------------------------------------------------------------ #
    # Receive path
    # ------------------------------------------------------------------ #

    def frame_received(self, data: bytes) -> None:
        """Entry point for frames arriving from the access link."""
        self.stats["rx_frames"] += 1
        if fastframe.fast_lane_enabled():
            # NIC filter without a full decode: flooded unicast for some
            # other host is the common case on learning-switch topologies,
            # and the MAC pair is already memoized on interned frames.
            macs = fastframe.mac_pair(data)
            if macs is not None:
                dst = macs[1]
                if dst != self.mac and not dst.is_broadcast and not dst.is_multicast:
                    return
        decoded = decode_ethernet(data)
        frame = decoded.ethernet
        if frame.dst != self.mac and not frame.dst.is_broadcast and not frame.dst.is_multicast:
            return  # not for us (flooded unicast for another host)
        l3 = decoded.l3
        if isinstance(l3, ArpPacket):
            self._handle_arp(l3)
        elif isinstance(l3, Ipv4Packet) and l3.dst == self.ip:
            self._handle_ip(l3, decoded.l4)

    def _handle_arp(self, arp: ArpPacket) -> None:
        # Opportunistic learning from both requests and replies.
        self.arp_table[arp.sender_ip] = arp.sender_mac
        self._flush_pending(arp.sender_ip)
        if arp.is_request and arp.target_ip == self.ip:
            self.stats["arp_replies_sent"] += 1
            reply = ArpPacket.reply(self.mac, self.ip, arp.sender_mac, arp.sender_ip)
            self._send_frame(
                EthernetFrame(arp.sender_mac, self.mac, EtherType.ARP, reply.pack())
            )

    def _flush_pending(self, ip: Ipv4Address) -> None:
        mac = self.arp_table.get(ip)
        pending = self._arp_pending.pop(ip, [])
        self._arp_attempts.pop(ip, None)
        if mac is None:
            return
        for packet_bytes in pending:
            self._send_frame(EthernetFrame(mac, self.mac, EtherType.IPV4, packet_bytes))

    def _handle_ip(self, packet: Ipv4Packet, l4) -> None:
        if isinstance(l4, IcmpEcho):
            if l4.is_request:
                self.stats["icmp_requests_answered"] += 1
                self.send_ip(packet.src, IpProtocol.ICMP, l4.reply().pack())
            elif l4.is_reply:
                run = self._ping_runs.get(l4.identifier)
                if run is not None:
                    run.reply_received(l4.sequence)
        elif isinstance(l4, TcpSegment):
            server = self._iperf_servers.get(l4.dst_port)
            if server is not None:
                server.segment_received(packet.src, l4)
                return
            client = self._iperf_clients.get(l4.dst_port)
            if client is not None:
                client.segment_received(l4)
        elif isinstance(l4, UdpDatagram):
            handler = self._udp_handlers.get(l4.dst_port)
            if handler is not None:
                handler(packet.src, l4)

    # ------------------------------------------------------------------ #
    # Workloads
    # ------------------------------------------------------------------ #

    def ping(
        self,
        target: Ipv4Address,
        count: int = 1,
        interval: float = 1.0,
        timeout: float = 1.0,
    ) -> _PingRun:
        """Start a ping series; returns a run whose ``done`` signal fires
        with a :class:`PingResult`."""
        identifier = next(Host._icmp_id) & 0xFFFF
        run = _PingRun(self, Ipv4Address(target), count, interval, timeout, identifier)
        self._ping_runs[identifier] = run
        run.start()
        return run

    def start_iperf_server(self, port: int = 5001) -> _IperfServer:
        """Listen for iperf-style TCP transfers on ``port``."""
        server = _IperfServer(self, port)
        self._iperf_servers[port] = server
        return server

    def stop_iperf_server(self, port: int = 5001) -> None:
        self._iperf_servers.pop(port, None)

    def run_iperf_client(
        self,
        target: Ipv4Address,
        port: int = 5001,
        duration: float = 10.0,
    ) -> _IperfClient:
        """Start a TCP bulk transfer; ``done`` fires with an IperfResult."""
        src_port = next(Host._ephemeral) & 0xFFFF
        client = _IperfClient(self, Ipv4Address(target), port, duration, src_port)
        self._iperf_clients[src_port] = client
        client.start()
        return client

    def register_udp_handler(
        self, port: int, handler: Callable[[Ipv4Address, UdpDatagram], None]
    ) -> None:
        self._udp_handlers[port] = handler

    def send_udp(self, dst_ip: Ipv4Address, src_port: int, dst_port: int, payload: bytes) -> None:
        datagram = UdpDatagram(src_port, dst_port, payload)
        self.send_ip(dst_ip, IpProtocol.UDP, datagram.pack())

    def __repr__(self) -> str:
        return f"<Host {self.name} {self.ip}({self.mac})>"
