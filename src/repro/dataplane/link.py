"""Point-to-point link model with bandwidth, latency, and a drop-tail queue.

Each direction of a link is an independent transmit queue: frames are
serialized at the link bandwidth, experience the propagation latency, and
are dropped when the queue is full.  The paper's testbed used 100 Mbps GENI
links; the throughput shape of the flow-modification-suppression experiment
(Fig. 11a) depends on this serialization model.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import SimulationEngine

Deliver = Callable[[bytes], None]


class _Direction:
    """One transmit direction of a link."""

    __slots__ = ("engine", "bandwidth", "latency", "queue_limit",
                 "busy_until", "queued", "deliver", "tx_frames", "tx_bytes",
                 "dropped_frames")

    def __init__(
        self,
        engine: SimulationEngine,
        bandwidth: float,
        latency: float,
        queue_limit: int,
    ) -> None:
        self.engine = engine
        self.bandwidth = bandwidth
        self.latency = latency
        self.queue_limit = queue_limit
        self.busy_until = 0.0
        self.queued = 0
        self.deliver: Optional[Deliver] = None
        self.tx_frames = 0
        self.tx_bytes = 0
        self.dropped_frames = 0

    def transmit(self, data: bytes) -> bool:
        """Queue a frame for transmission; False when tail-dropped."""
        if self.deliver is None:
            raise RuntimeError("link direction has no receiver attached")
        now = self.engine.now
        if self.busy_until < now:
            self.busy_until = now
            self.queued = 0
        if self.queued >= self.queue_limit:
            self.dropped_frames += 1
            return False
        size = len(data)
        self.busy_until += size * 8.0 / self.bandwidth
        arrival = self.busy_until + self.latency
        self.queued += 1
        self.tx_frames += 1
        self.tx_bytes += size
        self._schedule_arrival(arrival, data)
        return True

    def _schedule_arrival(self, arrival: float, data: bytes) -> None:
        # Seam for the shard boundary (repro.sim.shard): a cross-region
        # direction computes the identical serialization timeline but
        # ships the frame to the far region instead of scheduling a local
        # delivery.
        self.engine.schedule_at(arrival, self._arrive, data)

    def _arrive(self, data: bytes) -> None:
        self.queued = max(0, self.queued - 1)
        assert self.deliver is not None
        self.deliver(data)


class DataLink:
    """A bidirectional data-plane link between two attachment points."""

    DEFAULT_QUEUE_LIMIT = 100

    def __init__(
        self,
        engine: SimulationEngine,
        bandwidth_bps: float,
        latency_s: float,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        name: str = "link",
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth_bps!r}")
        if latency_s < 0:
            raise ValueError(f"latency must be non-negative: {latency_s!r}")
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.latency_s = latency_s
        self._a_to_b = _Direction(engine, bandwidth_bps, latency_s, queue_limit)
        self._b_to_a = _Direction(engine, bandwidth_bps, latency_s, queue_limit)
        self.up = True
        self._status_observers = []

    def attach_a(self, deliver: Deliver) -> None:
        """Register the A-side receiver (frames sent by B arrive here)."""
        self._b_to_a.deliver = deliver

    def attach_b(self, deliver: Deliver) -> None:
        """Register the B-side receiver (frames sent by A arrive here)."""
        self._a_to_b.deliver = deliver

    def send_from_a(self, data: bytes) -> bool:
        """Transmit from the A side; returns False when dropped."""
        if not self.up:
            return False
        return self._a_to_b.transmit(data)

    def send_from_b(self, data: bytes) -> bool:
        """Transmit from the B side; returns False when dropped."""
        if not self.up:
            return False
        return self._b_to_a.transmit(data)

    def add_status_observer(self, observer) -> None:
        """Register ``observer(up: bool)`` for carrier state changes.

        Attached switches use this to notice loss of carrier and emit
        OpenFlow PORT_STATUS notifications.
        """
        self._status_observers.append(observer)

    def set_up(self, up: bool) -> None:
        """Administratively raise/lower the link (frames silently dropped)."""
        if up == self.up:
            return
        self.up = up
        for observer in self._status_observers:
            observer(up)

    @property
    def tx_frames(self) -> int:
        return self._a_to_b.tx_frames + self._b_to_a.tx_frames

    @property
    def tx_bytes(self) -> int:
        return self._a_to_b.tx_bytes + self._b_to_a.tx_bytes

    @property
    def dropped_frames(self) -> int:
        return self._a_to_b.dropped_frames + self._b_to_a.dropped_frames

    def __repr__(self) -> str:
        state = "up" if self.up else "down"
        return f"<DataLink {self.name} {self.bandwidth_bps/1e6:.0f}Mbps {state}>"
