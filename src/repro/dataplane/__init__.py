"""Data-plane network elements.

This package replaces the paper's GENI testbed and Open vSwitch deployment:
a deterministic simulation of OpenFlow 1.0 switches, end hosts with a small
ARP/ICMP/TCP network stack, and bandwidth/latency-modelled links, all driven
by :mod:`repro.sim`.
"""

from repro.dataplane.control import ControlChannel, ControlEndpoint, connect_endpoints
from repro.dataplane.fabrics import (
    Fabric,
    fat_tree,
    generate_fabric,
    is_fabric_name,
    leaf_spine,
    partition_topology,
    waxman,
)
from repro.dataplane.flowtable import FlowEntry, FlowTable
from repro.dataplane.host import Host, IperfResult, PingResult
from repro.dataplane.link import DataLink
from repro.dataplane.network import Network
from repro.dataplane.switch import FailMode, OpenFlowSwitch
from repro.dataplane.topology import Topology, TopologyError

__all__ = [
    "ControlChannel",
    "ControlEndpoint",
    "DataLink",
    "Fabric",
    "FailMode",
    "FlowEntry",
    "FlowTable",
    "Host",
    "IperfResult",
    "Network",
    "OpenFlowSwitch",
    "PingResult",
    "Topology",
    "TopologyError",
    "connect_endpoints",
    "fat_tree",
    "generate_fabric",
    "is_fabric_name",
    "leaf_spine",
    "partition_topology",
    "waxman",
]
