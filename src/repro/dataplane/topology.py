"""Topology description: the concrete realization of the paper's N_D graph.

A :class:`Topology` is a declarative description (names, addresses, links);
:class:`repro.dataplane.network.Network` instantiates it into simulated
devices.  :meth:`Topology.data_plane_graph` exports the formal
``N_D = (V, E, A)`` structure consumed by :mod:`repro.core.model`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.netlib.addresses import Ipv4Address, MacAddress


class TopologyError(Exception):
    """Raised for inconsistent topology declarations."""


@dataclass(frozen=True)
class HostSpec:
    """A declared end host (h_i in the system model)."""

    name: str
    mac: MacAddress
    ip: Ipv4Address


@dataclass(frozen=True)
class SwitchSpec:
    """A declared OpenFlow switch (s_i in the system model)."""

    name: str
    datapath_id: int


@dataclass(frozen=True)
class LinkSpec:
    """A declared bidirectional link between two attachment points.

    ``a``/``b`` are device names; ``a_port``/``b_port`` are switch port
    numbers (``None`` for host endpoints, which have a single interface —
    the NULL ingress ports of Figure 3).
    """

    a: str
    a_port: Optional[int]
    b: str
    b_port: Optional[int]
    bandwidth_bps: float
    latency_s: float


Endpoint = Union[str, Tuple[str, int]]


class Topology:
    """Mutable builder + validated container for a network topology."""

    DEFAULT_BANDWIDTH = 100e6  # the paper's 100 Mbps GENI links
    DEFAULT_LATENCY = 0.0002

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self.hosts: Dict[str, HostSpec] = {}
        self.switches: Dict[str, SwitchSpec] = {}
        self.links: List[LinkSpec] = []
        self._next_port: Dict[str, int] = {}
        self._used_ports: Dict[str, set] = {}
        self._link_pairs: set = set()

    # ------------------------------------------------------------------ #
    # Declaration
    # ------------------------------------------------------------------ #

    def add_host(
        self,
        name: str,
        mac: Optional[str] = None,
        ip: Optional[str] = None,
    ) -> HostSpec:
        """Declare an end host; MAC/IP default to values derived from order."""
        self._check_fresh(name)
        index = len(self.hosts) + 1
        host = HostSpec(
            name=name,
            mac=MacAddress(mac) if mac else MacAddress(index),
            ip=Ipv4Address(ip) if ip else Ipv4Address(f"10.0.0.{index}"),
        )
        self.hosts[name] = host
        return host

    def add_switch(self, name: str, datapath_id: Optional[int] = None) -> SwitchSpec:
        """Declare an OpenFlow switch; datapath id defaults to order."""
        self._check_fresh(name)
        switch = SwitchSpec(
            name=name,
            datapath_id=datapath_id if datapath_id is not None else len(self.switches) + 1,
        )
        self.switches[name] = switch
        self._next_port[name] = 1
        self._used_ports[name] = set()
        return switch

    def add_link(
        self,
        a: Endpoint,
        b: Endpoint,
        bandwidth_bps: float = DEFAULT_BANDWIDTH,
        latency_s: float = DEFAULT_LATENCY,
    ) -> LinkSpec:
        """Declare a link; switch endpoints may name an explicit port."""
        a_name = a[0] if isinstance(a, tuple) else a
        b_name = b[0] if isinstance(b, tuple) else b
        if a_name == b_name:
            raise TopologyError(f"self-loop link on {a_name!r}")
        pair = frozenset((a_name, b_name))
        if pair in self._link_pairs:
            raise TopologyError(
                f"duplicate link between {a_name!r} and {b_name!r}"
            )
        for name in (a_name, b_name):
            if name in self.hosts and any(
                name in (link.a, link.b) for link in self.links
            ):
                raise TopologyError(
                    f"host {name!r} already has a link (hosts have a single interface)"
                )
        a_name, a_port = self._resolve_endpoint(a)
        b_name, b_port = self._resolve_endpoint(b)
        if bandwidth_bps <= 0:
            raise TopologyError(f"bandwidth must be positive, got {bandwidth_bps!r}")
        if latency_s < 0:
            raise TopologyError(f"latency must be non-negative, got {latency_s!r}")
        link = LinkSpec(a_name, a_port, b_name, b_port, bandwidth_bps, latency_s)
        self._link_pairs.add(pair)
        self.links.append(link)
        return link

    def _resolve_endpoint(self, endpoint: Endpoint) -> Tuple[str, Optional[int]]:
        if isinstance(endpoint, tuple):
            name, port = endpoint
            if name not in self.switches:
                raise TopologyError(f"explicit port given for non-switch {name!r}")
            if port in self._used_ports[name]:
                raise TopologyError(f"port {port} on {name!r} already in use")
            self._used_ports[name].add(port)
            self._next_port[name] = max(self._next_port[name], port + 1)
            return name, port
        name = endpoint
        if name in self.switches:
            port = self._next_port[name]
            while port in self._used_ports[name]:
                port += 1
            self._used_ports[name].add(port)
            self._next_port[name] = port + 1
            return name, port
        if name in self.hosts:
            return name, None
        raise TopologyError(f"unknown device {name!r}")

    def _check_fresh(self, name: str) -> None:
        if name in self.hosts or name in self.switches:
            raise TopologyError(f"device name {name!r} already declared")

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def validate(self) -> None:
        """Check the system-model preconditions from Section IV-A.

        Besides the paper's minimum-size rules this re-checks every link
        record, so topologies assembled by appending ``LinkSpec`` entries
        directly (generators, loaders) fail fast with an error naming the
        offending node rather than failing obscurely at build time.
        """
        if len(self.switches) < 1:
            raise TopologyError("a functional SDN network needs at least one switch")
        if len(self.hosts) < 2:
            raise TopologyError("a functional SDN network needs at least two end hosts")
        seen_pairs: set = set()
        seen_ports: Dict[str, set] = {name: set() for name in self.switches}
        host_degree: Dict[str, int] = {name: 0 for name in self.hosts}
        for link in self.links:
            if link.a == link.b:
                raise TopologyError(f"self-loop link on {link.a!r}")
            pair = frozenset((link.a, link.b))
            if pair in seen_pairs:
                raise TopologyError(
                    f"duplicate link between {link.a!r} and {link.b!r}"
                )
            seen_pairs.add(pair)
            for name, port in ((link.a, link.a_port), (link.b, link.b_port)):
                if name in self.switches:
                    if port is None:
                        raise TopologyError(
                            f"switch endpoint {name!r} is missing a port number"
                        )
                    if port in seen_ports[name]:
                        raise TopologyError(
                            f"port {port} on switch {name!r} referenced by two links"
                        )
                    seen_ports[name].add(port)
                elif name in self.hosts:
                    if port is not None:
                        raise TopologyError(
                            f"host endpoint {name!r} carries a port number"
                        )
                    host_degree[name] += 1
                    if host_degree[name] > 1:
                        raise TopologyError(
                            f"host {name!r} has more than one link "
                            f"(hosts have a single interface)"
                        )
                else:
                    raise TopologyError(
                        f"link references unknown device {name!r}"
                    )
        attached = {link.a for link in self.links} | {link.b for link in self.links}
        for name in list(self.hosts) + list(self.switches):
            if name not in attached:
                raise TopologyError(f"device {name!r} has no links")

    def host_names(self) -> List[str]:
        return sorted(self.hosts)

    def switch_names(self) -> List[str]:
        return sorted(self.switches)

    def switch_ports(self, switch: str) -> List[int]:
        """All declared port numbers on ``switch``, in order."""
        ports = []
        for link in self.links:
            if link.a == switch and link.a_port is not None:
                ports.append(link.a_port)
            if link.b == switch and link.b_port is not None:
                ports.append(link.b_port)
        return sorted(ports)

    def data_plane_graph(self) -> Dict[str, object]:
        """Export the formal N_D = (V_ND, E_ND, A_ND) of Section IV-A4.

        Vertices are device names, edges are directed pairs (both
        directions of each declared link), and attributes map each edge to
        its (ingress_port, egress_port) pair with ``None`` playing the role
        of NULL for host interfaces.
        """
        vertices = set(self.hosts) | set(self.switches)
        edges = set()
        attributes: Dict[Tuple[str, str], Tuple[Optional[int], Optional[int]]] = {}
        for link in self.links:
            edges.add((link.a, link.b))
            edges.add((link.b, link.a))
            attributes[(link.a, link.b)] = (link.a_port, link.b_port)
            attributes[(link.b, link.a)] = (link.b_port, link.a_port)
        return {"vertices": vertices, "edges": edges, "attributes": attributes}

    def __repr__(self) -> str:
        return (
            f"<Topology {self.name!r} hosts={len(self.hosts)} "
            f"switches={len(self.switches)} links={len(self.links)}>"
        )
