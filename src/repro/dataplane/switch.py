"""OpenFlow 1.0 switch model (Open vSwitch v1.9 substitute).

Implements the switch behaviours the paper's attacks exploit:

* flow-table miss -> buffer the packet and send ``PACKET_IN`` (the message
  stream the flow-modification-suppression attack starves);
* echo-based connection liveness (the connection-interruption attack
  black-holes the control channel until this declares the controller dead);
* **fail-safe** (standalone: revert to an autonomous MAC-learning switch)
  vs. **fail-secure** (no new flows) modes, the axis of Table II;
* reconnection attempts with a handshake timeout, so a severed control
  connection stays severed while the injector keeps dropping bytes.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import Callable, Dict, List, Optional

from repro.netlib import fastframe
from repro.netlib.addresses import Ipv4Address, MacAddress
from repro.netlib.ethernet import EthernetFrame, FrameDecodeError
from repro.netlib.ipv4 import Ipv4Packet
from repro.openflow.actions import (
    Action,
    OutputAction,
    SetDlDstAction,
    SetDlSrcAction,
    SetNwDstAction,
    SetNwSrcAction,
)
from repro.openflow.connection import MessageFramer
from repro.openflow.constants import (
    OFP_NO_BUFFER,
    Capabilities,
    FlowModCommand,
    Port,
    StatsType,
)
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMessage,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowRemoved,
    GetConfigReply,
    GetConfigRequest,
    Hello,
    OpenFlowDecodeError,
    OpenFlowMessage,
    PacketOut,
    PacketIn,
    PhyPort,
    PortStatus,
    SetConfig,
    StatsReply,
    StatsRequest,
)
from repro.dataplane.control import ControlChannel
from repro.dataplane.flowtable import FlowTable
from repro.sim.engine import SimulationEngine


class FailMode(enum.Enum):
    """What the switch does when it loses its controllers (Table II axis)."""

    SECURE = "secure"       # no new flows: misses are dropped
    STANDALONE = "standalone"  # fail-safe: autonomous learning switch


class ConnectionState(enum.Enum):
    DISCONNECTED = "disconnected"
    CONNECTING = "connecting"   # channel open, HELLO exchange pending
    CONNECTED = "connected"


ConnectFactory = Callable[["OpenFlowSwitch"], Optional[ControlChannel]]


class _ControlLink:
    """Switch-side state for one controller connection.

    The system model's N_C is many-to-many: "a switch can communicate
    with multiple controllers for redundancy or fault tolerance" (Section
    IV-A5).  Each link carries its own handshake, framer, and liveness
    clock; the switch aggregates them (fail mode only engages when *every*
    link is down).
    """

    __slots__ = ("name", "factory", "channel", "state", "framer",
                 "last_received", "echo_outstanding")

    def __init__(self, name: str, factory: ConnectFactory) -> None:
        self.name = name
        self.factory = factory
        self.channel: Optional[ControlChannel] = None
        self.state = ConnectionState.DISCONNECTED
        self.framer = MessageFramer()
        self.last_received = 0.0
        self.echo_outstanding = False

    @property
    def connected(self) -> bool:
        return self.state is ConnectionState.CONNECTED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<_ControlLink {self.name} {self.state.value}>"


class OpenFlowSwitch:
    """A simulated OpenFlow 1.0 switch."""

    ECHO_INTERVAL = 5.0       # OVS inactivity-probe default
    ECHO_TIMEOUT = 15.0       # silence before the controller is declared dead
    HANDSHAKE_TIMEOUT = 5.0
    RECONNECT_INTERVAL = 5.0
    LIVENESS_TICK = 1.0
    EXPIRY_TICK = 1.0
    DEFAULT_MISS_SEND_LEN = 128
    N_BUFFERS = 256

    def __init__(
        self,
        engine: SimulationEngine,
        name: str,
        datapath_id: int,
        fail_mode: FailMode = FailMode.SECURE,
        table_capacity: Optional[int] = None,
        table_eviction: str = "refuse",
    ) -> None:
        self.engine = engine
        self.name = name
        self.datapath_id = datapath_id
        self.fail_mode = fail_mode

        self.flow_table = FlowTable(
            max_entries=table_capacity if table_capacity else 65536,
            eviction=table_eviction,
        )
        self._ports: Dict[int, Callable[[bytes], None]] = {}
        self._port_up: Dict[int, bool] = {}

        # Control connection state: one _ControlLink per controller target
        # (N_C is many-to-many; most deployments register exactly one).
        self._links: "OrderedDict[str, _ControlLink]" = OrderedDict()
        self._link_by_channel: Dict[ControlChannel, _ControlLink] = {}
        self.miss_send_len = self.DEFAULT_MISS_SEND_LEN
        self._ever_connected = False
        self.standalone_active = False

        # Packet buffering for PACKET_IN
        self._buffers: "OrderedDict[int, tuple]" = OrderedDict()
        self._next_buffer_id = 1

        # Standalone / NORMAL-action MAC learning table
        self._mac_table: Dict[MacAddress, int] = {}

        # Statistics the monitors scrape
        self.stats: Dict[str, int] = {
            "rx_frames": 0,
            "tx_frames": 0,
            "flowkey_cache_hits": 0,
            "frames_interned": 0,
            "flow_matches": 0,
            "table_misses": 0,
            "packet_ins_sent": 0,
            "packet_outs_received": 0,
            "flow_mods_received": 0,
            "flow_removed_sent": 0,
            "evictions_idle": 0,
            "evictions_hard": 0,
            "evictions_capacity": 0,
            "evictions_delete": 0,
            "dropped_no_controller": 0,
            "dropped_no_buffer_release": 0,
            "standalone_forwards": 0,
            "echo_requests_sent": 0,
            "port_status_sent": 0,
            "connection_deaths": 0,
            "reconnect_attempts": 0,
            "control_messages_received": 0,
            "control_messages_sent": 0,
        }
        self.tracer = None
        # Optional defense-plane tap (repro.defense.tap.SketchTap); shared
        # by every switch in a shard region, wired the same way as tracer.
        self.sketches = None
        self._started = False

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #

    def attach_port(self, port_no: int, transmit: Callable[[bytes], None]) -> None:
        """Bind a data-plane port to a link transmit function."""
        if port_no in self._ports:
            raise ValueError(f"{self.name}: port {port_no} already attached")
        if not 1 <= port_no < Port.MAX:
            raise ValueError(f"{self.name}: invalid port number {port_no}")
        self._ports[port_no] = transmit
        self._port_up[port_no] = True

    def set_connect_factory(self, factory: ConnectFactory) -> None:
        """Point the switch at a single controller (replaces all targets)."""
        self._links.clear()
        self._link_by_channel.clear()
        self.add_controller_target("default", factory)

    def add_controller_target(self, name: str, factory: ConnectFactory) -> None:
        """Register an additional controller connection (N_C redundancy)."""
        if name in self._links:
            raise ValueError(f"{self.name}: controller target {name!r} exists")
        self._links[name] = _ControlLink(name, factory)
        if self._started:
            self._dial(self._links[name])

    def start(self) -> None:
        """Begin periodic liveness/expiry ticks and dial the controllers."""
        if self._started:
            return
        self._started = True
        self.engine.schedule(self.EXPIRY_TICK, self._expiry_tick)
        self.engine.schedule(self.LIVENESS_TICK, self._liveness_tick)
        for link in self._links.values():
            if link.channel is None:
                self._dial(link)

    def port_numbers(self) -> List[int]:
        return sorted(self._ports)

    def port_link_status(self, port_no: int, up: bool) -> None:
        """Carrier change on a port: update state, notify the controller.

        Mirrors OVS reacting to loss of carrier with an OFPT_PORT_STATUS
        (reason MODIFY, state LINK_DOWN).
        """
        if port_no not in self._ports or self._port_up.get(port_no) == up:
            return
        self._port_up[port_no] = up
        if self.connected:
            from repro.openflow.constants import PortReason, PortState

            port = PhyPort(
                port_no,
                MacAddress((self.datapath_id << 8) | port_no),
                f"{self.name}-eth{port_no}",
                state=0 if up else int(PortState.LINK_DOWN),
            )
            self.stats["port_status_sent"] += 1
            self._send(PortStatus(PortReason.MODIFY, port))

    def phy_ports(self) -> List[PhyPort]:
        return [
            PhyPort(
                port_no,
                MacAddress((self.datapath_id << 8) | port_no),
                f"{self.name}-eth{port_no}",
            )
            for port_no in self.port_numbers()
        ]

    # ------------------------------------------------------------------ #
    # Control connection lifecycle
    # ------------------------------------------------------------------ #

    def _dial(self, link: _ControlLink) -> None:
        self.stats["reconnect_attempts"] += 1
        channel = link.factory(self)
        if channel is None:
            self.engine.schedule(self.RECONNECT_INTERVAL, self._maybe_redial, link)

    def _maybe_redial(self, link: _ControlLink) -> None:
        if (link.state is ConnectionState.DISCONNECTED and self._started
                and link.name in self._links):
            self._dial(link)

    def _link_for_dial(self) -> Optional[_ControlLink]:
        """The link currently awaiting its channel (factory callback path)."""
        for link in self._links.values():
            if link.channel is None and link.state is ConnectionState.DISCONNECTED:
                return link
        return None

    def channel_opened(self, channel: ControlChannel) -> None:
        """ControlEndpoint hook: one of our dialled connections is up."""
        link = self._link_for_dial()
        if link is None:
            channel.close()
            return
        link.channel = channel
        link.state = ConnectionState.CONNECTING
        link.framer.reset()
        link.last_received = self.engine.now
        link.echo_outstanding = False
        self._link_by_channel[channel] = link
        self._send_on(link, Hello())
        self.engine.schedule(self.HANDSHAKE_TIMEOUT, self._handshake_check,
                             link, channel)

    def _handshake_check(self, link: _ControlLink, channel: ControlChannel) -> None:
        if link.channel is channel and link.state is ConnectionState.CONNECTING:
            channel.close()
            self._connection_lost(link)

    def bytes_received(self, channel: ControlChannel, data: bytes) -> None:
        """ControlEndpoint hook: stream bytes from a controller side."""
        link = self._link_by_channel.get(channel)
        if link is None or channel is not link.channel:
            return
        link.last_received = self.engine.now
        link.echo_outstanding = False
        try:
            messages = link.framer.feed(data)
        except OpenFlowDecodeError:
            # Garbage on the control channel (e.g. a fuzzed frame that no
            # longer parses): drop the connection like a real stack would.
            channel.close()
            self._connection_lost(link)
            return
        for message in messages:
            self.stats["control_messages_received"] += 1
            self._handle_control_message(link, message)

    def channel_closed(self, channel: ControlChannel) -> None:
        """ControlEndpoint hook: a controller side went away."""
        link = self._link_by_channel.get(channel)
        if link is not None and channel is link.channel:
            self._connection_lost(link)

    def _connection_lost(self, link: _ControlLink) -> None:
        if link.channel is not None:
            self._link_by_channel.pop(link.channel, None)
        link.channel = None
        link.framer.reset()
        if link.state is not ConnectionState.DISCONNECTED:
            link.state = ConnectionState.DISCONNECTED
            self.stats["connection_deaths"] += 1
            if not self.connected:
                # Redundant controllers keep the switch out of fail mode;
                # it engages only when the *last* connection dies.
                self._enter_fail_mode()
        if self._started:
            self.engine.schedule(self.RECONNECT_INTERVAL, self._maybe_redial, link)

    def _enter_fail_mode(self) -> None:
        if self.fail_mode is FailMode.STANDALONE:
            # Fail-safe: the switch takes over forwarding autonomously,
            # "in which it operated independently of the controller".
            self.standalone_active = True
        # Fail-secure: nothing to do — existing entries keep forwarding
        # until they expire; new flows are dropped.

    @property
    def connected(self) -> bool:
        """True when at least one controller connection is established."""
        return any(link.connected for link in self._links.values())

    @property
    def channel(self) -> Optional[ControlChannel]:
        """The primary (first live) control channel, for introspection."""
        for link in self._links.values():
            if link.channel is not None:
                return link.channel
        return None

    @property
    def state(self) -> ConnectionState:
        """Aggregate connection state across all controller links."""
        states = [link.state for link in self._links.values()]
        if ConnectionState.CONNECTED in states:
            return ConnectionState.CONNECTED
        if ConnectionState.CONNECTING in states:
            return ConnectionState.CONNECTING
        return ConnectionState.DISCONNECTED

    def connected_controller_names(self) -> List[str]:
        return [name for name, link in self._links.items() if link.connected]

    def _liveness_tick(self) -> None:
        if self._started:
            self.engine.schedule(self.LIVENESS_TICK, self._liveness_tick)
        for link in list(self._links.values()):
            if link.state is not ConnectionState.CONNECTED or link.channel is None:
                continue
            silence = self.engine.now - link.last_received
            if silence >= self.ECHO_TIMEOUT:
                # The connection-interruption attack lands here: the proxy
                # is black-holing both directions, so silence accumulates.
                channel = link.channel
                channel.close()
                self._connection_lost(link)
            elif silence >= self.ECHO_INTERVAL and not link.echo_outstanding:
                link.echo_outstanding = True
                self.stats["echo_requests_sent"] += 1
                self._send_on(link, EchoRequest(payload=b"ovs-probe"))

    def _note_eviction(self, entry, reason: str) -> None:
        """Single exit point for every flow-removal path.

        Counts the eviction by reason (``idle``/``hard``/``capacity``/
        ``delete``) and emits a ``flow_evict`` trace record carrying the
        reason plus the table occupancy after the removal, so overflow
        campaigns can reconstruct occupancy curves from the trace alone.
        """
        key = "evictions_" + reason
        if key in self.stats:
            self.stats[key] += 1
        if self.tracer is not None:
            self.tracer.emit(
                "flow_evict",
                switch=self.name,
                reason=reason,
                priority=entry.priority,
                match=str(entry.match),
                size=len(self.flow_table),
            )

    def _expiry_tick(self) -> None:
        if self._started:
            self.engine.schedule(self.EXPIRY_TICK, self._expiry_tick)
        now = self.engine.now
        for entry, reason in self.flow_table.expire(now):
            self._note_eviction(entry, reason)
            if entry.sends_flow_removed and self.connected:
                self.stats["flow_removed_sent"] += 1
                duration = max(0.0, now - entry.install_time)
                self._send(
                    FlowRemoved(
                        entry.match,
                        entry.cookie,
                        entry.priority,
                        0 if reason == "idle" else 1,
                        duration_sec=int(duration),
                        idle_timeout=entry.idle_timeout,
                        packet_count=entry.packet_count,
                        byte_count=entry.byte_count,
                    )
                )

    def _send(self, message: OpenFlowMessage) -> None:
        """Broadcast an asynchronous message to every connected controller."""
        sent = False
        for link in self._links.values():
            if link.connected and link.channel is not None and link.channel.open:
                self.stats["control_messages_sent"] += 1
                link.channel.send(message.pack())
                sent = True
        if not sent:
            # During the handshake (pre-CONNECTED) fall back to the first
            # open channel so HELLO-phase replies still flow.
            for link in self._links.values():
                if link.channel is not None and link.channel.open:
                    self.stats["control_messages_sent"] += 1
                    link.channel.send(message.pack())
                    return

    def _send_on(self, link: _ControlLink, message: OpenFlowMessage) -> None:
        """Send a reply on the specific connection the request came from."""
        if link.channel is not None and link.channel.open:
            self.stats["control_messages_sent"] += 1
            link.channel.send(message.pack())

    # ------------------------------------------------------------------ #
    # Control message handling
    # ------------------------------------------------------------------ #

    def _handle_control_message(self, link: _ControlLink,
                                message: OpenFlowMessage) -> None:
        if isinstance(message, Hello):
            if link.state is ConnectionState.CONNECTING:
                link.state = ConnectionState.CONNECTED
                self.standalone_active = False
                self._ever_connected = True
            return
        if isinstance(message, FeaturesRequest):
            self._send_on(
                link,
                FeaturesReply(
                    self.datapath_id,
                    n_buffers=self.N_BUFFERS,
                    n_tables=1,
                    capabilities=int(Capabilities.FLOW_STATS | Capabilities.ARP_MATCH_IP),
                    ports=self.phy_ports(),
                    xid=message.xid,
                ),
            )
            return
        if isinstance(message, EchoRequest):
            self._send_on(link, EchoReply.for_request(message))
            return
        if isinstance(message, EchoReply):
            return
        if isinstance(message, SetConfig):
            self.miss_send_len = message.miss_send_len
            return
        if isinstance(message, GetConfigRequest):
            self._send_on(
                link, GetConfigReply(miss_send_len=self.miss_send_len, xid=message.xid)
            )
            return
        if isinstance(message, BarrierRequest):
            self._send_on(link, BarrierReply(xid=message.xid))
            return
        if isinstance(message, FlowMod):
            self._handle_flow_mod(link, message)
            return
        if isinstance(message, PacketOut):
            self._handle_packet_out(message)
            return
        if isinstance(message, StatsRequest):
            self._handle_stats_request(link, message)
            return
        # Everything else (VENDOR, unexpected replies) is ignored, matching
        # OVS's tolerance for unknown-but-well-formed messages.

    def preinstall_flow(
        self,
        match,
        actions: List[Action],
        priority: int = 0x8000,
    ) -> None:
        """Install a permanent flow entry without a controller round trip.

        The controllerless fabric workloads (and any proactively routed
        deployment) seed switch tables directly — semantically a FLOW_MOD
        applied before the first packet, minus the control connection.
        """
        flow_mod = FlowMod(match, priority=priority, actions=list(actions))
        removed, full = self.flow_table.apply_flow_mod(flow_mod, self.engine.now)
        if full:
            raise RuntimeError(f"flow table full on switch {self.name!r}")
        for entry in removed:
            self._note_eviction(entry, "capacity")

    def _handle_flow_mod(self, link: _ControlLink, flow_mod: FlowMod) -> None:
        self.stats["flow_mods_received"] += 1
        removed, full = self.flow_table.apply_flow_mod(flow_mod, self.engine.now)
        if full:
            self._send_on(link, ErrorMessage(3, 0, flow_mod.pack()[:64],
                                             xid=flow_mod.xid))
            return
        deleting = flow_mod.command in (FlowModCommand.DELETE,
                                        FlowModCommand.DELETE_STRICT)
        if self.tracer is not None and not deleting:
            self.tracer.emit(
                "flow_install",
                switch=self.name,
                command=flow_mod.command.name,
                priority=flow_mod.priority,
                match=str(flow_mod.match),
                xid=flow_mod.xid,
                size=len(self.flow_table),
            )
        for entry in removed:
            # ADD against a full lru/fifo table returns the capacity
            # victims; DELETE returns the deleted entries.
            self._note_eviction(entry, "delete" if deleting else "capacity")
            if entry.sends_flow_removed:
                self.stats["flow_removed_sent"] += 1
                self._send(
                    FlowRemoved(entry.match, entry.cookie, entry.priority, 2)
                )
        if flow_mod.buffer_id != OFP_NO_BUFFER:
            # OF 1.0: a FLOW_MOD naming a buffer releases the buffered
            # packet through the new actions.  When the suppression attack
            # drops this message, the buffered packet is never released —
            # the denial-of-service case of Fig. 11.
            self._release_buffer(flow_mod.buffer_id, flow_mod.actions)

    def _handle_packet_out(self, packet_out: PacketOut) -> None:
        self.stats["packet_outs_received"] += 1
        in_port = packet_out.in_port
        if packet_out.buffer_id != OFP_NO_BUFFER:
            self._release_buffer(packet_out.buffer_id, packet_out.actions)
            return
        if packet_out.data:
            self._execute_actions(packet_out.actions, packet_out.data, in_port)

    def _handle_stats_request(self, link: _ControlLink,
                              request: StatsRequest) -> None:
        from repro.openflow.stats import (
            FlowStatsEntry,
            aggregate_stats_reply,
            flow_stats_reply,
            parse_flow_stats_request,
        )

        if request.stats_type == StatsType.DESC:
            body = (
                b"repro".ljust(256, b"\x00")          # mfr_desc
                + b"OpenFlowSwitch".ljust(256, b"\x00")  # hw_desc
                + b"repro-1.0".ljust(256, b"\x00")    # sw_desc
                + self.name.encode().ljust(32, b"\x00")  # serial_num
                + b"simulated".ljust(256, b"\x00")    # dp_desc
            )
            self._send_on(link, StatsReply(StatsType.DESC, body, xid=request.xid))
            return
        if request.stats_type in (StatsType.FLOW, StatsType.AGGREGATE):
            try:
                match, _table_id, out_port = parse_flow_stats_request(
                    StatsRequest(StatsType.FLOW, request.body, xid=request.xid)
                )
            except Exception:
                self._send_on(link, ErrorMessage(1, 2, request.pack()[:64],
                                                 xid=request.xid))
                return
            now = self.engine.now
            selected = [
                entry
                for entry in self.flow_table.entries
                if match.subsumes(entry.match)
                and (out_port == Port.NONE or entry.outputs_to(out_port))
            ]
            if request.stats_type == StatsType.FLOW:
                records = [
                    FlowStatsEntry(
                        entry.match,
                        priority=entry.priority,
                        duration_sec=int(max(0.0, now - entry.install_time)),
                        idle_timeout=entry.idle_timeout,
                        hard_timeout=entry.hard_timeout,
                        cookie=entry.cookie,
                        packet_count=entry.packet_count,
                        byte_count=entry.byte_count,
                        actions=entry.actions,
                    )
                    for entry in selected
                ]
                self._send_on(link, flow_stats_reply(records, xid=request.xid))
            else:
                self._send_on(
                    link,
                    aggregate_stats_reply(
                        sum(e.packet_count for e in selected),
                        sum(e.byte_count for e in selected),
                        len(selected),
                        xid=request.xid,
                    )
                )
            return
        self._send_on(link, StatsReply(request.stats_type, b"", xid=request.xid))

    # ------------------------------------------------------------------ #
    # Packet buffering
    # ------------------------------------------------------------------ #

    def _buffer_packet(self, data: bytes, in_port: int) -> int:
        buffer_id = self._next_buffer_id
        self._next_buffer_id = self._next_buffer_id % 0x7FFFFFFF + 1
        if len(self._buffers) >= self.N_BUFFERS:
            self._buffers.popitem(last=False)
        self._buffers[buffer_id] = (data, in_port)
        return buffer_id

    def _release_buffer(self, buffer_id: int, actions: List[Action]) -> None:
        entry = self._buffers.pop(buffer_id, None)
        if entry is None:
            self.stats["dropped_no_buffer_release"] += 1
            return
        data, in_port = entry
        self._execute_actions(actions, data, in_port)

    # ------------------------------------------------------------------ #
    # Data plane
    # ------------------------------------------------------------------ #

    def frame_received(self, port_no: int, data: bytes) -> None:
        """Entry point for frames arriving from a link on ``port_no``."""
        self.stats["rx_frames"] += 1
        data, pooled = fastframe.intern(data)
        if pooled:
            self.stats["frames_interned"] += 1
        if self.standalone_active and not self.connected:
            self._standalone_forward(port_no, data)
            return
        fields, cached = fastframe.flow_key(data, port_no)
        if cached:
            self.stats["flowkey_cache_hits"] += 1
        if self.sketches is not None:
            self.sketches.on_frame(self.name, port_no, fields, self.engine.now)
        entry = self.flow_table.lookup(fields)
        if entry is not None:
            self.stats["flow_matches"] += 1
            entry.record_use(self.engine.now, len(data))
            self._execute_actions(entry.actions, data, port_no)
            return
        self.stats["table_misses"] += 1
        self._table_miss(port_no, data)

    def _table_miss(self, in_port: int, data: bytes) -> None:
        if not self.connected:
            # Fail-secure: no controller, no new flows.  (Standalone mode
            # was already handled in frame_received.)
            self.stats["dropped_no_controller"] += 1
            return
        buffer_id = self._buffer_packet(data, in_port)
        packet_in_data = data[: self.miss_send_len] if self.miss_send_len else b""
        self.stats["packet_ins_sent"] += 1
        if self.sketches is not None:
            self.sketches.on_packet_in(self.engine.now)
        self._send(
            PacketIn(
                buffer_id,
                total_len=len(data),
                in_port=in_port,
                reason=0,
                data=packet_in_data,
            )
        )

    def _standalone_forward(self, in_port: int, data: bytes) -> None:
        """Fail-safe behaviour: autonomous MAC-learning forwarding."""
        self.stats["standalone_forwards"] += 1
        # Only the address pair matters here; mac_pair mirrors
        # EthernetFrame.unpack's accept/reject (length check only).
        macs = fastframe.mac_pair(data)
        if macs is None:
            return
        src, dst = macs
        self._mac_table[src] = in_port
        out_port = self._mac_table.get(dst)
        if dst.is_broadcast or dst.is_multicast or out_port is None:
            self._flood(in_port, data)
        elif out_port != in_port:
            self._transmit(out_port, data)

    def _flood(self, in_port: int, data: bytes) -> None:
        for port_no in self.port_numbers():
            if port_no != in_port and self._port_up.get(port_no, False):
                self._transmit(port_no, data)

    def _transmit(self, port_no: int, data: bytes) -> None:
        transmit = self._ports.get(port_no)
        if transmit is None or not self._port_up.get(port_no, False):
            return
        self.stats["tx_frames"] += 1
        transmit(data)

    def _execute_actions(self, actions: List[Action], data: bytes, in_port: int) -> None:
        """Apply an OF 1.0 action list to a packet (rewrites then outputs)."""
        current = data
        for action in actions:
            if isinstance(action, OutputAction):
                self._execute_output(action.port, current, in_port)
            elif isinstance(action, (SetDlSrcAction, SetDlDstAction)):
                current = self._rewrite_dl(current, action)
            elif isinstance(action, (SetNwSrcAction, SetNwDstAction)):
                current = self._rewrite_nw(current, action)
            # Other action types are accepted but not interpreted.

    def _execute_output(self, port: int, data: bytes, in_port: int) -> None:
        if port == Port.FLOOD or port == Port.ALL:
            self._flood(in_port, data)
        elif port == Port.IN_PORT:
            self._transmit(in_port, data)
        elif port == Port.CONTROLLER:
            if self.connected:
                self.stats["packet_ins_sent"] += 1
                if self.sketches is not None:
                    self.sketches.on_packet_in(self.engine.now)
                self._send(PacketIn(OFP_NO_BUFFER, len(data), in_port, 1, data))
        elif port == Port.TABLE:
            self.frame_received(in_port, data)
        elif port == Port.NORMAL:
            self._standalone_forward(in_port, data)
        elif port < Port.MAX:
            if port != in_port:
                self._transmit(port, data)

    @staticmethod
    def _rewrite_dl(data: bytes, action: Action) -> bytes:
        try:
            frame = EthernetFrame.unpack(data)
        except FrameDecodeError:
            return data
        if isinstance(action, SetDlSrcAction):
            frame.src = action.address
            field = "dl_src"
        elif isinstance(action, SetDlDstAction):
            frame.dst = action.address
            field = "dl_dst"
        else:
            return frame.pack()
        # The rewritten frame differs from `data` only in this one field,
        # so its flow key is the parent's key with that field replaced.
        return fastframe.derive_frame(
            frame.pack(), data, field, MacAddress(action.address)
        )

    @staticmethod
    def _rewrite_nw(data: bytes, action: Action) -> bytes:
        try:
            frame = EthernetFrame.unpack(data)
            ip = Ipv4Packet.unpack(frame.payload)
        except FrameDecodeError:
            return data
        if isinstance(action, SetNwSrcAction):
            ip.src = action.address
            field = "nw_src"
        elif isinstance(action, SetNwDstAction):
            ip.dst = action.address
            field = "nw_dst"
        else:
            frame.payload = ip.pack()
            return frame.pack()
        frame.payload = ip.pack()
        return fastframe.derive_frame(
            frame.pack(), data, field, Ipv4Address(action.address)
        )

    def __repr__(self) -> str:
        return (
            f"<OpenFlowSwitch {self.name} dpid=0x{self.datapath_id:x} "
            f"{self.state.value} flows={len(self.flow_table)}>"
        )
