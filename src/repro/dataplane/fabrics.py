"""Generated datacenter fabrics: fat-tree, leaf-spine, and Waxman graphs.

The paper's evaluation stops at a 4-switch enterprise network; the
scale-out direction needs topologies with hundreds of switches and
thousands of hosts.  Every generator returns a :class:`Fabric`: a fully
validated :class:`~repro.dataplane.topology.Topology` plus the natural
partition groups the sharded simulation core uses as min-cut hints
(pods of a fat-tree, leaves of a leaf-spine).

Determinism contract: a fabric is a pure function of its name string.
``generate_fabric("fat-tree-k4")`` builds the identical topology in every
process, so sharded workers can rebuild their regions from the name alone
instead of pickling device graphs across the pool.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dataplane.topology import Topology, TopologyError
from repro.netlib.addresses import MacAddress
from repro.sim.rng import SeededRng

#: Fabric link parameters.  Inter-switch latency doubles as the sharding
#: lookahead: cross-region frames are exchanged at barriers one link
#: latency apart, so the epoch grid is exactly this coarse.
FABRIC_BANDWIDTH = 1e9
FABRIC_LINK_LATENCY = 0.001
HOST_LINK_LATENCY = 0.0005
#: Switch-to-controller latency on generated fabrics.  Kept equal to the
#: inter-switch latency so control channels never shrink the sharding
#: lookahead below the fabric's epoch grid.
FABRIC_CONTROL_LATENCY = 0.001


@dataclass(frozen=True)
class Fabric:
    """A generated topology plus its natural sharding groups."""

    name: str
    topology: Topology
    #: Partition hints: tuples of switch names that belong together
    #: (a fat-tree pod, a leaf-spine leaf).  Hosts follow their switch.
    groups: Tuple[Tuple[str, ...], ...]

    @property
    def switch_count(self) -> int:
        return len(self.topology.switches)

    @property
    def host_count(self) -> int:
        return len(self.topology.hosts)


def _host_ip(index: int) -> str:
    """A unique 10/8 address for host ``index`` (0-based).

    ``add_host``'s default of ``10.0.0.{n}`` exhausts one octet at 254
    hosts; fabrics need thousands.
    """
    if index >= 250 * 250:
        raise TopologyError(f"fabric too large: host index {index}")
    return f"10.{100 + index // 250}.{index % 250 + 1}.1"


# --------------------------------------------------------------------- #
# Fat-tree (Al-Fares et al.): k pods, 5k^2/4 switches, k^3/4 hosts
# --------------------------------------------------------------------- #

def fat_tree(k: int) -> Fabric:
    """A k-ary fat-tree: k pods of k/2 edge + k/2 aggregation switches,
    (k/2)^2 core switches, and k/2 hosts per edge switch.

    ``k`` must be even and between 4 and 16 (k=16 already means 320
    switches and 1024 hosts).  Pods are the natural sharding groups; each
    core row (the k/2 switches a given aggregation index uplinks to)
    forms a group of its own, since core switches share no links.
    """
    if k % 2 != 0 or not 4 <= k <= 16:
        raise TopologyError(f"fat-tree k must be even and in 4..16, got {k}")
    half = k // 2
    topo = Topology(name=f"fat-tree-k{k}")
    groups: List[Tuple[str, ...]] = []

    core = [
        [f"cs{i:02d}x{j:02d}" for j in range(half)] for i in range(half)
    ]
    for row in core:
        for name in row:
            topo.add_switch(name)
        # Core switches never link to each other, so each core row is its
        # own sharding group: splitting them adds zero cut links while
        # spreading the cross-pod transit work (every inter-pod packet
        # crosses the core) over multiple regions instead of serializing
        # it in one.
        groups.append(tuple(row))

    host_index = 0
    for p in range(k):
        edges = [f"p{p:02d}e{i:02d}" for i in range(half)]
        aggs = [f"p{p:02d}a{i:02d}" for i in range(half)]
        for name in edges + aggs:
            topo.add_switch(name)
        groups.append(tuple(edges + aggs))
        # Full bipartite edge<->agg inside the pod.
        for edge in edges:
            for agg in aggs:
                topo.add_link(edge, agg, FABRIC_BANDWIDTH, FABRIC_LINK_LATENCY)
        # Aggregation switch i uplinks to core row i.
        for i, agg in enumerate(aggs):
            for j in range(half):
                topo.add_link(agg, core[i][j], FABRIC_BANDWIDTH,
                              FABRIC_LINK_LATENCY)
        # k/2 hosts per edge switch, addressed 10.pod.edge-style via the
        # flat host index (explicit MAC keeps addresses unique past the
        # 254-host default ceiling).
        for i, edge in enumerate(edges):
            for j in range(half):
                name = f"p{p:02d}e{i:02d}h{j:02d}"
                topo.add_host(
                    name,
                    mac=str(MacAddress((1 << 24) | (p << 16) | (i << 8) | j)),
                    ip=_host_ip(host_index),
                )
                host_index += 1
                topo.add_link(name, edge, FABRIC_BANDWIDTH, HOST_LINK_LATENCY)

    topo.validate()
    return Fabric(topo.name, topo, tuple(groups))


# --------------------------------------------------------------------- #
# Leaf-spine
# --------------------------------------------------------------------- #

def leaf_spine(leaves: int, spines: int, hosts_per_leaf: int = 4) -> Fabric:
    """A two-tier leaf-spine fabric: every leaf connects to every spine.

    Each leaf (with its hosts) is a sharding group; the spines form one
    group of their own.
    """
    if leaves < 2 or spines < 1 or hosts_per_leaf < 1:
        raise TopologyError(
            f"leaf-spine needs >=2 leaves, >=1 spine, >=1 host/leaf "
            f"(got {leaves}x{spines}x{hosts_per_leaf})"
        )
    topo = Topology(name=f"leaf-spine-{leaves}x{spines}")
    spine_names = [f"sp{i:03d}" for i in range(spines)]
    for name in spine_names:
        topo.add_switch(name)
    groups: List[Tuple[str, ...]] = [tuple(spine_names)]
    host_index = 0
    for l in range(leaves):
        leaf = f"lf{l:03d}"
        topo.add_switch(leaf)
        groups.append((leaf,))
        for spine in spine_names:
            topo.add_link(leaf, spine, FABRIC_BANDWIDTH, FABRIC_LINK_LATENCY)
        for h in range(hosts_per_leaf):
            name = f"lf{l:03d}h{h:02d}"
            topo.add_host(
                name,
                mac=str(MacAddress((2 << 24) | (l << 8) | h)),
                ip=_host_ip(host_index),
            )
            host_index += 1
            topo.add_link(name, leaf, FABRIC_BANDWIDTH, HOST_LINK_LATENCY)
    topo.validate()
    return Fabric(topo.name, topo, tuple(groups))


# --------------------------------------------------------------------- #
# Waxman random graph
# --------------------------------------------------------------------- #

def waxman(
    switches: int,
    hosts: int,
    seed: int = 0,
    alpha: float = 0.4,
    beta: float = 0.4,
) -> Fabric:
    """A seeded Waxman random graph over switches on the unit square.

    Edge probability is ``alpha * exp(-d / (beta * sqrt(2)))`` for
    inter-switch distance ``d``; a deterministic chain over the placement
    order guarantees connectivity.  Hosts attach round-robin.  The same
    ``(switches, hosts, seed, alpha, beta)`` always yields the same graph.
    """
    if switches < 2 or hosts < 2:
        raise TopologyError(
            f"waxman needs >=2 switches and >=2 hosts (got {switches}, {hosts})"
        )
    rng = SeededRng(seed).child(f"waxman-{switches}-{hosts}")
    topo = Topology(name=f"waxman-s{switches}-h{hosts}-seed{seed}")
    names = [f"w{i:03d}" for i in range(switches)]
    points = {}
    for name in names:
        topo.add_switch(name)
        points[name] = (rng.random(), rng.random())
    scale = beta * math.sqrt(2.0)
    linked = set()
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            ax, ay = points[a]
            bx, by = points[b]
            d = math.hypot(ax - bx, ay - by)
            if rng.random() < alpha * math.exp(-d / scale):
                topo.add_link(a, b, FABRIC_BANDWIDTH, FABRIC_LINK_LATENCY)
                linked.add(frozenset((a, b)))
    # Connectivity backstop: chain consecutive switches that the random
    # pass left unlinked.
    for a, b in zip(names, names[1:]):
        if frozenset((a, b)) not in linked:
            topo.add_link(a, b, FABRIC_BANDWIDTH, FABRIC_LINK_LATENCY)
    for h in range(hosts):
        name = f"wh{h:04d}"
        topo.add_host(
            name,
            mac=str(MacAddress((3 << 24) | h)),
            ip=_host_ip(h),
        )
        topo.add_link(name, names[h % switches], FABRIC_BANDWIDTH,
                      HOST_LINK_LATENCY)
    topo.validate()
    # No structural groups: the sharder falls back to BFS region growing.
    return Fabric(topo.name, topo, ())


# --------------------------------------------------------------------- #
# Name-based construction (CLI / campaign descriptors)
# --------------------------------------------------------------------- #

_FAT_TREE_RE = re.compile(r"^fat-tree-k(\d+)$")
_LEAF_SPINE_RE = re.compile(r"^leaf-spine-(\d+)x(\d+)(?:x(\d+))?$")
_WAXMAN_RE = re.compile(r"^waxman-s(\d+)-h(\d+)(?:-seed(\d+))?$")


def is_fabric_name(name: str) -> bool:
    """True when ``name`` parses as a *buildable* fabric descriptor.

    Checks the generator parameter ranges too (``fat-tree-k5`` parses
    but cannot be built), without constructing the topology.
    """
    match = _FAT_TREE_RE.match(name)
    if match:
        k = int(match.group(1))
        return k % 2 == 0 and 4 <= k <= 16
    match = _LEAF_SPINE_RE.match(name)
    if match:
        return (int(match.group(1)) >= 2 and int(match.group(2)) >= 1
                and int(match.group(3) or 4) >= 1)
    match = _WAXMAN_RE.match(name)
    if match:
        return int(match.group(1)) >= 2 and int(match.group(2)) >= 2
    return False


def generate_fabric(name: str) -> Fabric:
    """Build the fabric a descriptor names.

    Recognized forms: ``fat-tree-k{k}``, ``leaf-spine-{L}x{S}[x{H}]``,
    ``waxman-s{S}-h{H}[-seed{N}]``.
    """
    match = _FAT_TREE_RE.match(name)
    if match:
        return fat_tree(int(match.group(1)))
    match = _LEAF_SPINE_RE.match(name)
    if match:
        leaves, spines, hosts = match.group(1), match.group(2), match.group(3)
        return leaf_spine(int(leaves), int(spines),
                          int(hosts) if hosts else 4)
    match = _WAXMAN_RE.match(name)
    if match:
        return waxman(int(match.group(1)), int(match.group(2)),
                      seed=int(match.group(3) or 0))
    raise TopologyError(
        f"unknown fabric {name!r}; expected fat-tree-k<k>, "
        f"leaf-spine-<L>x<S>[x<H>], or waxman-s<S>-h<H>[-seed<N>]"
    )


# --------------------------------------------------------------------- #
# Region partitioning
# --------------------------------------------------------------------- #

def _switch_adjacency(topo: Topology) -> Dict[str, List[str]]:
    adjacency: Dict[str, List[str]] = {name: [] for name in topo.switches}
    for link in topo.links:
        if link.a in topo.switches and link.b in topo.switches:
            adjacency[link.a].append(link.b)
            adjacency[link.b].append(link.a)
    for neighbors in adjacency.values():
        neighbors.sort()
    return adjacency


def _bfs_regions(topo: Topology, regions: int) -> List[List[str]]:
    """Greedy balanced multi-source BFS over the switch graph.

    Seeds are chosen farthest-point-first (deterministic: ties break on
    name), then regions grow breadth-first one switch at a time, always
    extending the currently smallest region — a cheap approximation of a
    balanced min-cut partition.
    """
    adjacency = _switch_adjacency(topo)
    names = sorted(adjacency)
    seeds = [names[0]]
    while len(seeds) < regions:
        # BFS distance from the existing seed set.
        distance = {seed: 0 for seed in seeds}
        frontier = list(seeds)
        while frontier:
            next_frontier = []
            for node in frontier:
                for neighbor in adjacency[node]:
                    if neighbor not in distance:
                        distance[neighbor] = distance[node] + 1
                        next_frontier.append(neighbor)
            frontier = next_frontier
        farthest = max(names, key=lambda n: (distance.get(n, 0), n))
        if farthest in seeds:
            break
        seeds.append(farthest)
    assignment = {seed: rid for rid, seed in enumerate(seeds)}
    frontiers: List[List[str]] = [[seed] for seed in seeds]
    sizes = [1] * len(seeds)
    while any(frontiers):
        # Grow the smallest region that still has a frontier.
        rid = min(
            (r for r in range(len(seeds)) if frontiers[r]),
            key=lambda r: (sizes[r], r),
        )
        node = frontiers[rid].pop(0)
        for neighbor in adjacency[node]:
            if neighbor not in assignment:
                assignment[neighbor] = rid
                sizes[rid] += 1
                frontiers[rid].append(neighbor)
    # Disconnected leftovers (cannot happen on generated fabrics, but be
    # total): assign to the smallest region.
    for name in names:
        if name not in assignment:
            rid = sizes.index(min(sizes))
            assignment[name] = rid
            sizes[rid] += 1
    result: List[List[str]] = [[] for _ in seeds]
    for name in names:
        result[assignment[name]].append(name)
    return [sorted(region) for region in result if region]


def partition_topology(
    topo: Topology,
    regions: int,
    groups: Optional[Sequence[Sequence[str]]] = None,
) -> List[List[str]]:
    """Partition a topology into ``regions`` device groups for sharding.

    Returns a list of device-name lists (switches plus their attached
    hosts), one per region, sorted for determinism.  The partition is a
    pure function of ``(topology, regions, groups)`` — crucially it does
    NOT depend on how many worker processes later execute the regions,
    which is what makes sharded runs byte-identical for any worker count.

    With ``groups`` (generator hints: pods, leaves) the groups are packed
    into at most ``regions`` bins largest-first onto the lightest bin;
    without hints a balanced BFS growth over the switch graph approximates
    a min-cut split.
    """
    if regions < 1:
        raise TopologyError(f"regions must be >= 1, got {regions}")
    switch_regions: List[List[str]]
    if groups:
        ordered = sorted(
            (tuple(group) for group in groups),
            key=lambda g: (-len(g), g),
        )
        bins = min(regions, len(ordered))
        packed: List[List[str]] = [[] for _ in range(bins)]
        for group in ordered:
            lightest = min(range(bins), key=lambda b: (len(packed[b]), b))
            packed[lightest].extend(group)
        switch_regions = [sorted(b) for b in packed]
    elif regions == 1:
        switch_regions = [sorted(topo.switches)]
    else:
        switch_regions = _bfs_regions(topo, regions)

    owner: Dict[str, int] = {}
    for rid, switch_names in enumerate(switch_regions):
        for name in switch_names:
            owner[name] = rid
    result = [list(names) for names in switch_regions]
    # Hosts are co-located with their (single) attached switch, so host
    # links never cross a region boundary.
    for link in topo.links:
        for host, peer in ((link.a, link.b), (link.b, link.a)):
            if host in topo.hosts and peer in owner:
                result[owner[peer]].append(host)
    return [sorted(devices) for devices in result]


def cut_links(topo: Topology, partition: Sequence[Sequence[str]]) -> int:
    """Count the links crossing region boundaries (the shard cut size)."""
    owner = {
        name: rid
        for rid, devices in enumerate(partition)
        for name in devices
    }
    return sum(
        1
        for link in topo.links
        if owner.get(link.a) != owner.get(link.b)
    )
