"""OpenFlow 1.0 flow table with priorities, timeouts, and statistics.

Semantics follow the OF 1.0 specification as implemented by OVS v1.9:
highest-priority matching entry wins; exact ties resolve to the
earliest-installed entry; idle and hard timeouts expire entries and can emit
FLOW_REMOVED notifications.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple

from repro.openflow.actions import Action
from repro.openflow.constants import FlowModCommand, FlowModFlags, Port
from repro.openflow.match import Match
from repro.openflow.messages import FlowMod


class FlowEntry:
    """One installed flow rule."""

    _order = itertools.count()

    __slots__ = (
        "match",
        "priority",
        "actions",
        "cookie",
        "idle_timeout",
        "hard_timeout",
        "flags",
        "install_time",
        "last_used",
        "packet_count",
        "byte_count",
        "order",
    )

    def __init__(
        self,
        match: Match,
        priority: int,
        actions: List[Action],
        cookie: int = 0,
        idle_timeout: int = 0,
        hard_timeout: int = 0,
        flags: int = 0,
        install_time: float = 0.0,
    ) -> None:
        self.match = match
        self.priority = priority
        self.actions = list(actions)
        self.cookie = cookie
        self.idle_timeout = idle_timeout
        self.hard_timeout = hard_timeout
        self.flags = flags
        self.install_time = install_time
        self.last_used = install_time
        self.packet_count = 0
        self.byte_count = 0
        self.order = next(FlowEntry._order)

    @property
    def sends_flow_removed(self) -> bool:
        return bool(self.flags & FlowModFlags.SEND_FLOW_REM)

    def outputs_to(self, port: int) -> bool:
        """True if any action outputs to ``port`` (for out_port filtering)."""
        from repro.openflow.actions import OutputAction

        return any(isinstance(a, OutputAction) and a.port == port for a in self.actions)

    def record_use(self, now: float, byte_count: int) -> None:
        self.last_used = now
        self.packet_count += 1
        self.byte_count += byte_count

    def expired_reason(self, now: float) -> Optional[str]:
        """Return ``"idle"``/``"hard"`` when the entry has timed out."""
        if self.hard_timeout and now >= self.install_time + self.hard_timeout:
            return "hard"
        if self.idle_timeout and now >= self.last_used + self.idle_timeout:
            return "idle"
        return None

    def __repr__(self) -> str:
        return (
            f"<FlowEntry prio={self.priority} {self.match!r} "
            f"actions={self.actions} idle={self.idle_timeout} hard={self.hard_timeout}>"
        )


class FlowTable:
    """A single OF 1.0 flow table (OVS v1.9 exposed one to OpenFlow 1.0)."""

    def __init__(self, max_entries: int = 65536) -> None:
        self.max_entries = max_entries
        self.entries: List[FlowEntry] = []
        self.lookups = 0
        self.matched = 0

    def __len__(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------ #
    # Flow-mod application
    # ------------------------------------------------------------------ #

    def apply_flow_mod(self, flow_mod: FlowMod, now: float) -> Tuple[List[FlowEntry], bool]:
        """Apply a FLOW_MOD; return (removed_entries, table_full).

        Removed entries are returned so the switch can emit FLOW_REMOVED
        messages for DELETE commands when entries requested it.
        """
        command = flow_mod.command
        if command == FlowModCommand.ADD:
            return self._add(flow_mod, now)
        if command in (FlowModCommand.MODIFY, FlowModCommand.MODIFY_STRICT):
            return self._modify(flow_mod, now, strict=command == FlowModCommand.MODIFY_STRICT)
        if command in (FlowModCommand.DELETE, FlowModCommand.DELETE_STRICT):
            return self._delete(flow_mod, strict=command == FlowModCommand.DELETE_STRICT)
        raise ValueError(f"unsupported flow-mod command {command!r}")

    def _add(self, flow_mod: FlowMod, now: float) -> Tuple[List[FlowEntry], bool]:
        # OF 1.0: ADD with an identical match+priority replaces the entry.
        replaced = [
            entry
            for entry in self.entries
            if entry.priority == flow_mod.priority
            and entry.match.is_strict_equal(flow_mod.match)
        ]
        for entry in replaced:
            self.entries.remove(entry)
        if len(self.entries) >= self.max_entries:
            return [], True
        self.entries.append(
            FlowEntry(
                flow_mod.match,
                flow_mod.priority,
                flow_mod.actions,
                cookie=flow_mod.cookie,
                idle_timeout=flow_mod.idle_timeout,
                hard_timeout=flow_mod.hard_timeout,
                flags=flow_mod.flags,
                install_time=now,
            )
        )
        return [], False

    def _modify(self, flow_mod: FlowMod, now: float, strict: bool) -> Tuple[List[FlowEntry], bool]:
        changed = False
        for entry in self.entries:
            if self._mod_applies(flow_mod.match, flow_mod.priority, entry, strict):
                entry.actions = list(flow_mod.actions)
                entry.cookie = flow_mod.cookie
                changed = True
        if not changed:
            return self._add(flow_mod, now)
        return [], False

    def _delete(self, flow_mod: FlowMod, strict: bool) -> Tuple[List[FlowEntry], bool]:
        removed: List[FlowEntry] = []
        kept: List[FlowEntry] = []
        for entry in self.entries:
            matches = self._mod_applies(flow_mod.match, flow_mod.priority, entry, strict)
            if matches and flow_mod.out_port != Port.NONE:
                matches = entry.outputs_to(flow_mod.out_port)
            (removed if matches else kept).append(entry)
        self.entries = kept
        return removed, False

    @staticmethod
    def _mod_applies(match: Match, priority: int, entry: FlowEntry, strict: bool) -> bool:
        if strict:
            return entry.priority == priority and entry.match.is_strict_equal(match)
        return match.subsumes(entry.match)

    # ------------------------------------------------------------------ #
    # Lookup / expiry
    # ------------------------------------------------------------------ #

    def lookup(self, fields: Dict[str, Any]) -> Optional[FlowEntry]:
        """Highest-priority entry matching extracted packet fields."""
        self.lookups += 1
        best: Optional[FlowEntry] = None
        for entry in self.entries:
            if entry.match.matches_fields(fields):
                if best is None or (entry.priority, -entry.order) > (best.priority, -best.order):
                    best = entry
        if best is not None:
            self.matched += 1
        return best

    def expire(self, now: float) -> List[Tuple[FlowEntry, str]]:
        """Remove and return timed-out entries with their expiry reason."""
        expired: List[Tuple[FlowEntry, str]] = []
        kept: List[FlowEntry] = []
        for entry in self.entries:
            reason = entry.expired_reason(now)
            if reason is None:
                kept.append(entry)
            else:
                expired.append((entry, reason))
        self.entries = kept
        return expired

    def clear(self) -> List[FlowEntry]:
        """Remove all entries (connection reset semantics)."""
        removed, self.entries = self.entries, []
        return removed

    def __repr__(self) -> str:
        return f"<FlowTable entries={len(self.entries)} lookups={self.lookups}>"
