"""OpenFlow 1.0 flow table with priorities, timeouts, and statistics.

Semantics follow the OF 1.0 specification as implemented by OVS v1.9:
highest-priority matching entry wins; exact ties resolve to the
earliest-installed entry; idle and hard timeouts expire entries and can emit
FLOW_REMOVED notifications.

Lookup structure: fully-specified entries (all twelve match fields set,
/32 network prefixes — the shape every learning controller installs from
``Match.from_packet``) live in a hash index keyed by the twelve-tuple;
everything else sits in a wildcard list kept sorted by descending priority.
A lookup probes the hash bucket, then scans the sorted wildcards only until
no remaining entry could outrank the best candidate — O(1) + O(w) instead
of O(n) over the whole table.  ``indexed=False`` restores the linear scan
(benchmark baseline); ``lookup_fast_hits`` counts lookups won from the
hash bucket.
"""

from __future__ import annotations

import itertools
from bisect import insort
from typing import Any, Dict, List, Optional, Tuple

from repro.openflow.actions import Action
from repro.openflow.constants import FlowModCommand, FlowModFlags, Port
from repro.openflow.match import MATCH_FIELD_NAMES, Match, field_tuple
from repro.openflow.messages import FlowMod


class FlowEntry:
    """One installed flow rule."""

    _order = itertools.count()

    __slots__ = (
        "match",
        "priority",
        "actions",
        "cookie",
        "idle_timeout",
        "hard_timeout",
        "flags",
        "install_time",
        "last_used",
        "packet_count",
        "byte_count",
        "order",
    )

    def __init__(
        self,
        match: Match,
        priority: int,
        actions: List[Action],
        cookie: int = 0,
        idle_timeout: int = 0,
        hard_timeout: int = 0,
        flags: int = 0,
        install_time: float = 0.0,
    ) -> None:
        self.match = match
        self.priority = priority
        self.actions = list(actions)
        self.cookie = cookie
        self.idle_timeout = idle_timeout
        self.hard_timeout = hard_timeout
        self.flags = flags
        self.install_time = install_time
        self.last_used = install_time
        self.packet_count = 0
        self.byte_count = 0
        self.order = next(FlowEntry._order)

    @property
    def sends_flow_removed(self) -> bool:
        return bool(self.flags & FlowModFlags.SEND_FLOW_REM)

    @property
    def rank(self) -> Tuple[int, int]:
        """Win ordering: higher priority first, then earliest install."""
        return (self.priority, -self.order)

    def outputs_to(self, port: int) -> bool:
        """True if any action outputs to ``port`` (for out_port filtering)."""
        from repro.openflow.actions import OutputAction

        return any(isinstance(a, OutputAction) and a.port == port for a in self.actions)

    def record_use(self, now: float, byte_count: int) -> None:
        self.last_used = now
        self.packet_count += 1
        self.byte_count += byte_count

    def expired_reason(self, now: float) -> Optional[str]:
        """Return ``"idle"``/``"hard"`` when the entry has timed out."""
        if self.hard_timeout and now >= self.install_time + self.hard_timeout:
            return "hard"
        if self.idle_timeout and now >= self.last_used + self.idle_timeout:
            return "idle"
        return None

    def __repr__(self) -> str:
        return (
            f"<FlowEntry prio={self.priority} {self.match!r} "
            f"actions={self.actions} idle={self.idle_timeout} hard={self.hard_timeout}>"
        )


def _exact_key(match: Match) -> Optional[Tuple[Any, ...]]:
    """The hash key for a fully-specified match, or None if it wildcards.

    Mirrors :func:`~repro.openflow.match.field_tuple` over the packet side:
    when every field is set and both prefixes are /32, ``matches_fields``
    degenerates to tuple equality, so the twelve-tuple is a sound hash key.
    """
    if match.nw_src_prefix != 32 or match.nw_dst_prefix != 32:
        return None
    values = tuple(getattr(match, name) for name in MATCH_FIELD_NAMES)
    if any(value is None for value in values):
        return None
    return values


def _wild_sort_key(entry: FlowEntry) -> Tuple[int, int]:
    return (-entry.priority, entry.order)


#: How a full table treats a new ADD.  ``refuse`` mirrors stock OVS v1.9
#: (OFPFMFC_ALL_TABLES_FULL error); ``lru``/``fifo`` model the eviction
#: behaviour overflow attacks probe for ("An Inference Attack Model for
#: Flow Table Capacity and Usage").
EVICTION_POLICIES = ("refuse", "lru", "fifo")


class FlowTable:
    """A single OF 1.0 flow table (OVS v1.9 exposed one to OpenFlow 1.0)."""

    def __init__(
        self,
        max_entries: int = 65536,
        indexed: bool = True,
        eviction: str = "refuse",
    ) -> None:
        if eviction not in EVICTION_POLICIES:
            raise ValueError(
                f"unknown eviction policy {eviction!r}; choose from {EVICTION_POLICIES}"
            )
        self.max_entries = max_entries
        self.eviction = eviction
        self.entries: List[FlowEntry] = []
        self.indexed = indexed
        self.lookups = 0
        self.matched = 0
        self.lookup_fast_hits = 0
        self.capacity_evictions = 0
        self.occupancy_peak = 0
        self._exact: Dict[Tuple[Any, ...], List[FlowEntry]] = {}
        self._wild: List[FlowEntry] = []

    def __len__(self) -> int:
        return len(self.entries)

    def reset_stats(self) -> None:
        """Zero the cumulative counters (``occupancy_peak``,
        ``capacity_evictions``, lookup stats) without touching entries.

        Campaign workers rebuild every :class:`FlowTable` per run, so
        run records never inherit a previous run's peaks — but any
        harness that *does* pool a network across runs must call this
        alongside :func:`repro.campaign.runner.reset_run_state`, which
        only resets process-global counters, not per-table stats.
        """
        self.lookups = 0
        self.matched = 0
        self.lookup_fast_hits = 0
        self.capacity_evictions = 0
        self.occupancy_peak = 0

    # ------------------------------------------------------------------ #
    # Index maintenance
    # ------------------------------------------------------------------ #

    def _index_add(self, entry: FlowEntry) -> None:
        key = _exact_key(entry.match)
        if key is not None:
            self._exact.setdefault(key, []).append(entry)
        else:
            insort(self._wild, entry, key=_wild_sort_key)

    def _index_remove(self, entry: FlowEntry) -> None:
        key = _exact_key(entry.match)
        if key is not None:
            bucket = self._exact.get(key)
            if bucket is not None:
                bucket.remove(entry)
                if not bucket:
                    del self._exact[key]
        else:
            self._wild.remove(entry)

    def _rebuild_index(self) -> None:
        self._exact.clear()
        self._wild.clear()
        for entry in self.entries:
            key = _exact_key(entry.match)
            if key is not None:
                self._exact.setdefault(key, []).append(entry)
            else:
                self._wild.append(entry)
        self._wild.sort(key=_wild_sort_key)

    # ------------------------------------------------------------------ #
    # Flow-mod application
    # ------------------------------------------------------------------ #

    def apply_flow_mod(self, flow_mod: FlowMod, now: float) -> Tuple[List[FlowEntry], bool]:
        """Apply a FLOW_MOD; return (removed_entries, table_full).

        Removed entries are returned so the switch can emit FLOW_REMOVED
        messages when entries requested it.  For DELETE commands they are
        the deleted entries; for ADD against a full table under an
        ``lru``/``fifo`` policy they are the capacity-eviction victims.
        ``table_full`` is only ever True under the ``refuse`` policy.
        """
        command = flow_mod.command
        if command == FlowModCommand.ADD:
            return self._add(flow_mod, now)
        if command in (FlowModCommand.MODIFY, FlowModCommand.MODIFY_STRICT):
            return self._modify(flow_mod, now, strict=command == FlowModCommand.MODIFY_STRICT)
        if command in (FlowModCommand.DELETE, FlowModCommand.DELETE_STRICT):
            return self._delete(flow_mod, strict=command == FlowModCommand.DELETE_STRICT)
        raise ValueError(f"unsupported flow-mod command {command!r}")

    def _add(self, flow_mod: FlowMod, now: float) -> Tuple[List[FlowEntry], bool]:
        # OF 1.0: ADD with an identical match+priority replaces the entry.
        replaced = [
            entry
            for entry in self.entries
            if entry.priority == flow_mod.priority
            and entry.match.is_strict_equal(flow_mod.match)
        ]
        for entry in replaced:
            self.entries.remove(entry)
            self._index_remove(entry)
        evicted: List[FlowEntry] = []
        while len(self.entries) >= self.max_entries:
            victim = self._eviction_victim()
            if victim is None:
                return [], True
            self.entries.remove(victim)
            self._index_remove(victim)
            self.capacity_evictions += 1
            evicted.append(victim)
        entry = FlowEntry(
            flow_mod.match,
            flow_mod.priority,
            flow_mod.actions,
            cookie=flow_mod.cookie,
            idle_timeout=flow_mod.idle_timeout,
            hard_timeout=flow_mod.hard_timeout,
            flags=flow_mod.flags,
            install_time=now,
        )
        self.entries.append(entry)
        self._index_add(entry)
        if len(self.entries) > self.occupancy_peak:
            self.occupancy_peak = len(self.entries)
        return evicted, False

    def _eviction_victim(self) -> Optional[FlowEntry]:
        """The entry a full table sacrifices for a new ADD, or None (refuse).

        LRU picks the least-recently-used entry (install time counts as a
        use); FIFO the earliest-installed.  Ties break on install order,
        so the choice is deterministic for a deterministic workload.
        """
        if self.eviction == "refuse" or not self.entries:
            return None
        if self.eviction == "lru":
            return min(self.entries, key=lambda e: (e.last_used, e.order))
        return min(self.entries, key=lambda e: e.order)

    def _modify(self, flow_mod: FlowMod, now: float, strict: bool) -> Tuple[List[FlowEntry], bool]:
        # Only actions/cookie change — match and priority stay, so the
        # index needs no maintenance here.
        changed = False
        for entry in self.entries:
            if self._mod_applies(flow_mod.match, flow_mod.priority, entry, strict):
                entry.actions = list(flow_mod.actions)
                entry.cookie = flow_mod.cookie
                changed = True
        if not changed:
            return self._add(flow_mod, now)
        return [], False

    def _delete(self, flow_mod: FlowMod, strict: bool) -> Tuple[List[FlowEntry], bool]:
        removed: List[FlowEntry] = []
        kept: List[FlowEntry] = []
        for entry in self.entries:
            matches = self._mod_applies(flow_mod.match, flow_mod.priority, entry, strict)
            if matches and flow_mod.out_port != Port.NONE:
                matches = entry.outputs_to(flow_mod.out_port)
            (removed if matches else kept).append(entry)
        if removed:
            self.entries = kept
            self._rebuild_index()
        return removed, False

    @staticmethod
    def _mod_applies(match: Match, priority: int, entry: FlowEntry, strict: bool) -> bool:
        if strict:
            return entry.priority == priority and entry.match.is_strict_equal(match)
        return match.subsumes(entry.match)

    # ------------------------------------------------------------------ #
    # Lookup / expiry
    # ------------------------------------------------------------------ #

    def lookup(self, fields: Dict[str, Any]) -> Optional[FlowEntry]:
        """Highest-priority entry matching extracted packet fields."""
        self.lookups += 1
        if not self.indexed:
            best = self._lookup_linear(fields)
            if best is not None:
                self.matched += 1
            return best
        best: Optional[FlowEntry] = None
        bucket = self._exact.get(field_tuple(fields))
        if bucket:
            for entry in bucket:
                if best is None or entry.rank > best.rank:
                    best = entry
        exact_winner = best
        # Wildcards are kept sorted best-rank first, so stop as soon as the
        # next entry cannot outrank the current best; the first wildcard
        # match encountered is the best-ranked wildcard match.
        for entry in self._wild:
            if best is not None and entry.rank <= best.rank:
                break
            if entry.match.matches_fields(fields):
                best = entry
                break
        if best is not None:
            self.matched += 1
            if best is exact_winner:
                self.lookup_fast_hits += 1
        return best

    def _lookup_linear(self, fields: Dict[str, Any]) -> Optional[FlowEntry]:
        """The unindexed O(n) scan (baseline for ``benchmarks/``)."""
        best: Optional[FlowEntry] = None
        for entry in self.entries:
            if entry.match.matches_fields(fields):
                if best is None or (entry.priority, -entry.order) > (best.priority, -best.order):
                    best = entry
        return best

    def expire(self, now: float) -> List[Tuple[FlowEntry, str]]:
        """Remove and return timed-out entries with their expiry reason."""
        expired: List[Tuple[FlowEntry, str]] = []
        kept: List[FlowEntry] = []
        for entry in self.entries:
            reason = entry.expired_reason(now)
            if reason is None:
                kept.append(entry)
            else:
                expired.append((entry, reason))
        if expired:
            self.entries = kept
            self._rebuild_index()
        return expired

    def clear(self) -> List[FlowEntry]:
        """Remove all entries (connection reset semantics)."""
        removed, self.entries = self.entries, []
        self._exact.clear()
        self._wild.clear()
        return removed

    def __repr__(self) -> str:
        return f"<FlowTable entries={len(self.entries)} lookups={self.lookups}>"
