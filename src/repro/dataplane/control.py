"""Control-plane connection plumbing.

A control-plane connection in the system model (Section IV-A5) is "a
bidirectional TCP connection between a controller (server) and switch
(client)".  Here it is a pair of :class:`ControlChannel` handles joined by
an in-order, latency-modelled byte pipe.  The ATTAIN runtime injector's
connection proxy holds channels on both sides and forwards (or interferes
with) the bytes, exactly like the paper's TCP proxy.
"""

from __future__ import annotations

from typing import Optional, Protocol, Tuple

from repro.sim.engine import SimulationEngine


class ControlEndpoint(Protocol):
    """Anything that terminates a control channel (switch, controller, proxy)."""

    def channel_opened(self, channel: "ControlChannel") -> None:
        """The peer is connected; the endpoint may start its handshake."""

    def bytes_received(self, channel: "ControlChannel", data: bytes) -> None:
        """In-order stream bytes arrived from the peer."""

    def channel_closed(self, channel: "ControlChannel") -> None:
        """The peer closed the connection (TCP RST/FIN equivalent)."""


class ControlChannel:
    """One endpoint's handle on a bidirectional control-plane stream."""

    def __init__(
        self,
        engine: SimulationEngine,
        owner: ControlEndpoint,
        latency_s: float,
        name: str,
    ) -> None:
        self._engine = engine
        self.owner = owner
        self.latency_s = latency_s
        self.name = name
        self.peer: Optional["ControlChannel"] = None
        self.open = False
        self.bytes_sent = 0
        self.bytes_delivered = 0
        #: Free-form label used by monitors ("s2->proxy", "proxy->c1", ...).
        self.label = name

    def send(self, data: bytes) -> None:
        """Queue bytes for in-order delivery to the peer endpoint."""
        if not self.open or self.peer is None:
            return  # writing to a closed socket: bytes vanish
        self.bytes_sent += len(data)
        self._engine.schedule(self.latency_s, self.peer._deliver, bytes(data))

    def close(self) -> None:
        """Close both directions; the peer sees ``channel_closed``."""
        if not self.open:
            return
        self.open = False
        peer = self.peer
        if peer is not None and peer.open:
            self._engine.schedule(self.latency_s, peer._peer_closed)

    def _deliver(self, data: bytes) -> None:
        if not self.open:
            return
        self.bytes_delivered += len(data)
        self.owner.bytes_received(self, data)

    def _peer_closed(self) -> None:
        if not self.open:
            return
        self.open = False
        self.owner.channel_closed(self)

    def __repr__(self) -> str:
        state = "open" if self.open else "closed"
        return f"<ControlChannel {self.name} {state}>"


def connect_endpoints(
    engine: SimulationEngine,
    a: ControlEndpoint,
    b: ControlEndpoint,
    latency_s: float = 0.00025,
    name: str = "ctrl",
) -> Tuple[ControlChannel, ControlChannel]:
    """Create a connected channel pair and notify both endpoints.

    ``a`` is conventionally the connection initiator (the switch, per the
    system model); both endpoints receive ``channel_opened`` at the current
    simulated instant plus one connection-setup latency.
    """
    chan_a = ControlChannel(engine, a, latency_s, f"{name}:a")
    chan_b = ControlChannel(engine, b, latency_s, f"{name}:b")
    chan_a.peer = chan_b
    chan_b.peer = chan_a
    chan_a.open = True
    chan_b.open = True

    def notify() -> None:
        # Either side may have closed during setup (e.g. proxy refused).
        if chan_b.open:
            b.channel_opened(chan_b)
        if chan_a.open:
            a.channel_opened(chan_a)

    engine.schedule(latency_s, notify)
    return chan_a, chan_b
