"""Network assembly: instantiate a Topology into simulated devices.

``Network`` builds hosts, switches, and links from a declarative
:class:`~repro.dataplane.topology.Topology`, and wires each switch's
control connection to a target endpoint — either a controller directly or
the ATTAIN runtime injector's connection proxy (the paper's deployment
model: "a practitioner need only modify his or her network's switch
configurations to point to the proxy as the SDN controller").
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.netlib import fastframe
from repro.dataplane.control import ControlChannel, ControlEndpoint, connect_endpoints
from repro.dataplane.host import Host
from repro.dataplane.link import DataLink
from repro.dataplane.switch import FailMode, OpenFlowSwitch
from repro.dataplane.topology import LinkSpec, Topology
from repro.sim.engine import SimulationEngine

DEFAULT_CONTROL_LATENCY = 0.00025

#: A boundary factory receives ``(link_index, link_spec, local_side)`` for
#: every topology link with exactly one endpoint inside this network's
#: ``include`` subset, and returns a half-link object exposing
#: ``transmit(data) -> bool`` (local device sends toward the far region)
#: and ``attach(deliver)`` (frames arriving from the far region).
BoundaryFactory = Callable[[int, LinkSpec, str], object]


class Network:
    """A fully wired simulated network.

    By default the whole topology is instantiated.  A sharded region
    passes ``include`` (the device names it owns) and ``boundary`` (a
    factory for the cross-region half-links); links between two excluded
    devices are skipped entirely, links with one excluded endpoint are
    wired through the boundary.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        topology: Topology,
        fail_mode: FailMode = FailMode.SECURE,
        include: Optional[set] = None,
        boundary: Optional[BoundaryFactory] = None,
        table_capacity: Optional[int] = None,
        table_eviction: str = "refuse",
    ) -> None:
        topology.validate()
        # A new network is a new run: drop interned frames from earlier
        # runs in this process so cache-hit patterns (and the switch
        # counters observing them) are identical run to run.
        fastframe.clear_pool()
        self.engine = engine
        self.topology = topology
        self.hosts: Dict[str, Host] = {}
        self.switches: Dict[str, OpenFlowSwitch] = {}
        self.links: Dict[str, DataLink] = {}
        self.boundary_halves: Dict[int, object] = {}
        # switch name -> {target name: (endpoint, latency)}
        self._control_targets: Dict[str, Dict[str, tuple]] = {}
        self._started = False

        included = set(include) if include is not None else None
        for spec in topology.hosts.values():
            if included is None or spec.name in included:
                self.hosts[spec.name] = Host(engine, spec.name, spec.mac, spec.ip)
        for spec in topology.switches.values():
            if included is None or spec.name in included:
                self.switches[spec.name] = OpenFlowSwitch(
                    engine, spec.name, spec.datapath_id, fail_mode=fail_mode,
                    table_capacity=table_capacity,
                    table_eviction=table_eviction,
                )
        for index, link_spec in enumerate(topology.links):
            a_in = included is None or link_spec.a in included
            b_in = included is None or link_spec.b in included
            if not a_in and not b_in:
                continue
            if a_in and b_in:
                name = f"{link_spec.a}-{link_spec.b}#{index}"
                link = DataLink(
                    engine,
                    link_spec.bandwidth_bps,
                    link_spec.latency_s,
                    name=name,
                )
                self.links[name] = link
                self._attach(link, "a", link_spec.a, link_spec.a_port)
                self._attach(link, "b", link_spec.b, link_spec.b_port)
                continue
            if boundary is None:
                raise ValueError(
                    f"link {link_spec.a}-{link_spec.b} crosses the include "
                    f"boundary but no boundary factory was given"
                )
            side = "a" if a_in else "b"
            device = link_spec.a if a_in else link_spec.b
            port = link_spec.a_port if a_in else link_spec.b_port
            half = boundary(index, link_spec, side)
            self.boundary_halves[index] = half
            self._wire(half.transmit, half.attach, None, device, port)

    def _attach(self, link: DataLink, side: str, device: str, port: Optional[int]) -> None:
        send = link.send_from_a if side == "a" else link.send_from_b
        attach_receiver = link.attach_a if side == "a" else link.attach_b
        self._wire(send, attach_receiver, link.add_status_observer, device, port)

    def _wire(
        self,
        send: Callable[[bytes], bool],
        attach_receiver: Callable[[Callable[[bytes], None]], None],
        add_status_observer: Optional[Callable],
        device: str,
        port: Optional[int],
    ) -> None:
        if device in self.switches:
            switch = self.switches[device]
            if port is None:
                raise ValueError(f"switch endpoint {device!r} missing a port number")
            switch.attach_port(port, send)
            attach_receiver(lambda data, s=switch, p=port: s.frame_received(p, data))
            if add_status_observer is not None:
                add_status_observer(
                    lambda up, s=switch, p=port: s.port_link_status(p, up)
                )
        else:
            host = self.hosts[device]
            host.attach(send)
            attach_receiver(host.frame_received)

    # ------------------------------------------------------------------ #
    # Control-plane wiring
    # ------------------------------------------------------------------ #

    def set_controller_target(
        self,
        switch_name: str,
        endpoint: ControlEndpoint,
        latency_s: float = DEFAULT_CONTROL_LATENCY,
    ) -> None:
        """Point a switch's (sole) control connection at ``endpoint``.

        The endpoint is a controller for a direct deployment, or the
        runtime injector's proxy when an attack is being injected.
        Replaces any previously registered targets; use
        :meth:`add_controller_target` for redundant multi-controller
        deployments.
        """
        if switch_name not in self.switches:
            raise KeyError(f"unknown switch {switch_name!r}")
        self._control_targets[switch_name] = {"default": (endpoint, latency_s)}
        switch = self.switches[switch_name]
        switch.set_connect_factory(self._make_dialer(switch_name, "default"))

    def add_controller_target(
        self,
        switch_name: str,
        endpoint: ControlEndpoint,
        latency_s: float = DEFAULT_CONTROL_LATENCY,
        target_name: str = None,
    ) -> None:
        """Register an additional controller connection for a switch.

        This realizes the system model's many-to-many N_C: "a switch can
        communicate with multiple controllers for redundancy or fault
        tolerance" (Section IV-A5).
        """
        if switch_name not in self.switches:
            raise KeyError(f"unknown switch {switch_name!r}")
        targets = self._control_targets.setdefault(switch_name, {})
        name = target_name or f"target-{len(targets)}"
        if name in targets:
            raise ValueError(f"target {name!r} already set for {switch_name!r}")
        targets[name] = (endpoint, latency_s)
        self.switches[switch_name].add_controller_target(
            name, self._make_dialer(switch_name, name)
        )

    def set_all_controller_targets(
        self,
        endpoint: ControlEndpoint,
        latency_s: float = DEFAULT_CONTROL_LATENCY,
    ) -> None:
        for switch_name in self.switches:
            self.set_controller_target(switch_name, endpoint, latency_s)

    def _make_dialer(
        self, switch_name: str, target_name: str
    ) -> Callable[[OpenFlowSwitch], Optional[ControlChannel]]:
        def dial(switch: OpenFlowSwitch) -> Optional[ControlChannel]:
            target = self._control_targets.get(switch_name, {}).get(target_name)
            if target is None:
                return None
            endpoint, latency_s = target
            chan_switch, _chan_target = connect_endpoints(
                self.engine,
                switch,
                endpoint,
                latency_s=latency_s,
                name=f"ctrl-{switch_name}-{target_name}",
            )
            return chan_switch

        return dial

    # ------------------------------------------------------------------ #
    # Lifecycle / access
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Start all switches (begin dialing controllers and ticking)."""
        if self._started:
            return
        self._started = True
        for switch in self.switches.values():
            switch.start()

    def host(self, name: str) -> Host:
        return self.hosts[name]

    def switch(self, name: str) -> OpenFlowSwitch:
        return self.switches[name]

    def host_ip(self, name: str):
        return self.hosts[name].ip

    def all_connected(self) -> bool:
        """True when every switch completed its OpenFlow handshake."""
        return all(switch.connected for switch in self.switches.values())

    def total_stat(self, key: str) -> int:
        """Sum a named counter across all switches."""
        return sum(switch.stats.get(key, 0) for switch in self.switches.values())

    def __repr__(self) -> str:
        return (
            f"<Network hosts={len(self.hosts)} switches={len(self.switches)} "
            f"links={len(self.links)}>"
        )
