"""ATTAIN: an attack injection framework for software-defined networking.

A from-scratch reproduction of "ATTAIN: An Attack Injection Framework for
Software-Defined Networking" (Ujcich, Thakore, Sanders — DSN 2017),
including every substrate the paper depends on:

* :mod:`repro.sim` — deterministic discrete-event simulation engine;
* :mod:`repro.netlib` — Ethernet/ARP/IPv4/ICMP/TCP/UDP/LLDP wire formats;
* :mod:`repro.openflow` — OpenFlow 1.0 protocol library;
* :mod:`repro.dataplane` — OpenFlow switches, hosts, and links;
* :mod:`repro.controllers` — Floodlight / POX / Ryu behavioural models;
* :mod:`repro.core` — ATTAIN itself: attack model, attack language,
  compiler, runtime injector, and monitors;
* :mod:`repro.attacks` — the reusable attack library;
* :mod:`repro.experiments` — the Section VII enterprise case study.

Quickstart::

    from repro.experiments import run_suppression_experiment

    result = run_suppression_experiment("pox", attacked=True,
                                        ping_trials=10, iperf_trials=2,
                                        iperf_duration_s=2.0)
    print(result.row())
"""

from repro.core import (
    Attack,
    AttackModel,
    AttackState,
    Capability,
    CapabilityMap,
    Rule,
    RuntimeInjector,
    SystemModel,
    gamma_no_tls,
    gamma_tls,
)

__version__ = "1.0.0"

__all__ = [
    "Attack",
    "AttackModel",
    "AttackState",
    "Capability",
    "CapabilityMap",
    "Rule",
    "RuntimeInjector",
    "SystemModel",
    "__version__",
    "gamma_no_tls",
    "gamma_tls",
]
