"""Ground-truth labelling and detector scoring.

Workload cells know exactly when attack traffic runs: registered sources
carry ``start_s``/``duration_s`` in their workload params, and the source
registry marks which sources are adversarial.  That yields one boolean
label per detection window — "attack traffic active during any part of
this window" — against which detector flags score as a straight binary
classification plus a latency: sim-seconds from attack start to the
start of the first correctly-flagged active window.

All ratios are guarded: a run with no active windows has undefined
recall (``None``), a detector that never fires has undefined precision
(``None``), and the report layer renders those with the existing
``inf*`` / ``-`` conventions instead of dividing by zero.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.defense.detectors import Detector, build_detector, feature_windows


def attack_window(params: Dict[str, Any],
                  *, adversarial: bool) -> Optional[Tuple[float, float]]:
    """The ``[start, stop)`` sim-time span of attack traffic, or ``None``
    for benign sources (whole run inactive)."""
    if not adversarial:
        return None
    start = float(params.get("start_s", 0.05))
    duration = float(params.get("duration_s", 0.25))
    return (start, start + duration)


def truth_labels(windows: Sequence[Dict[str, Any]],
                 span: Optional[Tuple[float, float]]) -> List[bool]:
    """One label per window: does ``[t0, t1)`` overlap the attack span?"""
    if span is None:
        return [False] * len(windows)
    start, stop = span
    return [w["t0"] < stop and w["t1"] > start for w in windows]


def score_flags(flags: Sequence[bool], labels: Sequence[bool],
                windows: Sequence[Dict[str, Any]],
                span: Optional[Tuple[float, float]]) -> Dict[str, Any]:
    """Precision / recall / detection latency for one detector run.

    Undefined ratios come back as ``None`` (never a ZeroDivisionError):
    precision when the detector never fired, recall when ground truth has
    no active window.
    """
    if len(flags) != len(labels):
        raise ValueError(
            f"flag/label length mismatch: {len(flags)} vs {len(labels)}"
        )
    tp = fp = fn = tn = 0
    first_hit_t = None
    for flag, label, window in zip(flags, labels, windows):
        if flag and label:
            tp += 1
            if first_hit_t is None:
                # An online detector sees a window's counts when the
                # window closes, so the alarm time is t1, not t0.
                first_hit_t = window["t1"]
        elif flag:
            fp += 1
        elif label:
            fn += 1
        else:
            tn += 1
    flagged = tp + fp
    active = tp + fn
    precision = tp / flagged if flagged else None
    recall = tp / active if active else None
    latency = None
    if first_hit_t is not None and span is not None:
        latency = max(0.0, first_hit_t - span[0])
    return {
        "tp": tp,
        "fp": fp,
        "fn": fn,
        "tn": tn,
        "windows": len(flags),
        "active_windows": active,
        "flagged_windows": flagged,
        "precision": precision,
        "recall": recall,
        "detection_latency_s": latency,
    }


def evaluate_detectors(
    payload: Optional[Dict[str, Any]],
    *,
    horizon_s: float,
    detectors: Sequence[str],
    detector_params: Optional[Dict[str, Any]] = None,
    attack_span: Optional[Tuple[float, float]] = None,
) -> List[Dict[str, Any]]:
    """Run each named detector over a merged tap payload and score it.

    Returns one record per detector: name, configuration string, and the
    :func:`score_flags` fields.  An empty/missing payload yields empty
    feature windows and all-``None`` scores rather than raising.
    """
    results: List[Dict[str, Any]] = []
    if not detectors:
        return results
    if payload is not None:
        windows = feature_windows(payload, horizon_s)
    else:
        windows = []
    labels = truth_labels(windows, attack_span)
    for name in detectors:
        detector: Detector = build_detector(name, detector_params)
        flags = detector.flags(windows)
        record = {"detector": name, "config": detector.describe()}
        record.update(score_flags(flags, labels, windows, attack_span))
        results.append(record)
    return results
