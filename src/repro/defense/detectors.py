"""Detectors over sketch telemetry, with a registry mirroring
``register_attack``/``register_source``.

A detector consumes the *feature windows* derived from a merged sketch
payload (:func:`feature_windows`) — one dict per fixed-width sim-time
window carrying frame counts, PACKET_IN counts, and the count-min
new-key counts — and returns one boolean flag per window: "attack
traffic active here".  Scoring against ground truth lives in
:mod:`repro.defense.scoring`.

Built-ins:

``pktin-rate``
    Threshold on the per-window PACKET_IN rate.  The storm signature of
    ``packetin-flood`` (and any reactive-setup saturation attack).

``newkey-ratio``
    Sketch-ratio detector: the fraction of frames in a window whose flow
    key was *new* to the count-min sketch.  Spoofed floods and
    table-overflow sweeps push this toward 1.0; steady benign flows
    re-use keys and stay near 0.

``iforest``
    Optional scikit-learn IsolationForest adapter over the window
    feature vectors.  Import-guarded: registering is free, *building* it
    without scikit-learn installed raises a clear error, and
    ``list_detectors`` reports availability.
"""

from __future__ import annotations

import importlib.util
from typing import Any, Callable, Dict, List, Optional


def feature_windows(payload: Dict[str, Any],
                    horizon_s: float) -> List[Dict[str, Any]]:
    """Fixed-width windows over ``[0, horizon_s)`` with sketch counts.

    Every window in the horizon appears (zero-filled when silent), so
    detector flags and ground-truth labels align index-for-index.
    """
    window_s = float(payload["window_s"])
    count = max(1, int(horizon_s / window_s + 0.5))
    frames = dict(payload["frames"]["buckets"])
    new_keys = dict(payload["new_keys"]["buckets"])
    packet_ins = dict(payload["packet_ins"]["buckets"])
    windows = []
    for idx in range(count):
        n_frames = frames.get(idx, 0)
        n_pktin = packet_ins.get(idx, 0)
        n_new = new_keys.get(idx, 0)
        windows.append({
            "index": idx,
            "t0": idx * window_s,
            "t1": (idx + 1) * window_s,
            "frames": n_frames,
            "new_keys": n_new,
            "packet_ins": n_pktin,
            "pktin_rate": n_pktin / window_s,
            "newkey_ratio": (n_new / n_frames) if n_frames else 0.0,
        })
    return windows


class Detector:
    """One configured detector: window features in, per-window flags out."""

    name = "detector"

    def flags(self, windows: List[Dict[str, Any]]) -> List[bool]:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #

class DetectorInfo:
    __slots__ = ("name", "builder", "description", "requires")

    def __init__(self, name: str, builder: Callable[..., Detector],
                 description: str, requires: Optional[str]) -> None:
        self.name = name
        self.builder = builder
        self.description = description
        self.requires = requires  # an importable module name, or None

    @property
    def available(self) -> bool:
        if self.requires is None:
            return True
        return importlib.util.find_spec(self.requires) is not None


_DETECTORS: Dict[str, DetectorInfo] = {}


def register_detector(name: str, *, description: str = "",
                      requires: Optional[str] = None):
    """Decorator: register ``builder(params) -> Detector`` under ``name``."""

    def decorate(builder):
        if name in _DETECTORS:
            raise ValueError(f"detector {name!r} already registered")
        _DETECTORS[name] = DetectorInfo(name, builder, description, requires)
        return builder

    return decorate


def detector_info(name: str) -> DetectorInfo:
    try:
        return _DETECTORS[name]
    except KeyError:
        raise KeyError(
            f"unknown detector {name!r}; available: {sorted(_DETECTORS)}"
        ) from None


def detector_names() -> List[str]:
    return sorted(_DETECTORS)


def list_detectors() -> List[Dict[str, Any]]:
    return [
        {
            "name": info.name,
            "description": info.description,
            "requires": info.requires,
            "available": info.available,
        }
        for _, info in sorted(_DETECTORS.items())
    ]


def build_detector(name: str,
                   params: Optional[Dict[str, Any]] = None) -> Detector:
    info = detector_info(name)
    if not info.available:
        raise RuntimeError(
            f"detector {name!r} needs the optional dependency "
            f"{info.requires!r}, which is not installed"
        )
    return info.builder(dict(params or {}))


# --------------------------------------------------------------------- #
# Built-ins
# --------------------------------------------------------------------- #

@register_detector(
    "pktin-rate",
    description="threshold on the per-window PACKET_IN rate (storms)",
)
def _build_pktin_rate(params: Dict[str, Any]) -> Detector:
    threshold = float(params.get("threshold_pps", 200.0))
    if threshold <= 0:
        raise ValueError(f"threshold_pps must be positive, got {threshold!r}")

    class PktInRate(Detector):
        name = "pktin-rate"

        def flags(self, windows):
            return [w["pktin_rate"] >= threshold for w in windows]

        def describe(self):
            return f"pktin-rate >= {threshold:g}/s"

    return PktInRate()


@register_detector(
    "newkey-ratio",
    description="sketch ratio: fraction of frames with count-min-new "
                "flow keys (spoofed floods, overflow sweeps)",
)
def _build_newkey_ratio(params: Dict[str, Any]) -> Detector:
    ratio = float(params.get("ratio", 0.5))
    min_frames = int(params.get("min_frames", 8))
    if not 0.0 < ratio <= 1.0:
        raise ValueError(f"ratio must be in (0, 1], got {ratio!r}")
    if min_frames < 1:
        raise ValueError(f"min_frames must be >= 1, got {min_frames!r}")

    class NewKeyRatio(Detector):
        name = "newkey-ratio"

        def flags(self, windows):
            return [
                w["frames"] >= min_frames and w["newkey_ratio"] >= ratio
                for w in windows
            ]

        def describe(self):
            return (f"newkey-ratio >= {ratio:g} "
                    f"(min {min_frames} frames/window)")

    return NewKeyRatio()


@register_detector(
    "iforest",
    description="IsolationForest over window feature vectors "
                "(optional scikit-learn adapter)",
    requires="sklearn",
)
def _build_iforest(params: Dict[str, Any]) -> Detector:
    # Import inside the builder: registration must never require sklearn.
    from sklearn.ensemble import IsolationForest  # pragma: no cover

    contamination = float(params.get("contamination", 0.25))
    seed = int(params.get("seed", 0))

    class IForest(Detector):  # pragma: no cover - needs sklearn
        name = "iforest"

        def flags(self, windows):
            if not windows:
                return []
            rows = [[w["frames"], w["packet_ins"], w["new_keys"]]
                    for w in windows]
            model = IsolationForest(
                contamination=contamination, random_state=seed
            )
            verdicts = model.fit_predict(rows)
            return [v == -1 for v in verdicts]

        def describe(self):
            return f"IsolationForest(contamination={contamination:g})"

    return IForest()
