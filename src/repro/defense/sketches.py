"""Allocation-lean streaming sketches for per-packet defense telemetry.

Every structure here obeys the same three-part contract:

* **Hot-path updates are O(1) and allocation-free** after the first
  sight of a flow key.  The tap layer (:mod:`repro.defense.tap`) hands
  each sketch a *normalized key* — the OpenFlow twelve-tuple with every
  field coerced to a plain int (``None`` becomes ``-1``) — plus a
  precomputed row-index tuple, so no sketch ever touches packet bytes.
* **Hashing is process-stable.**  Python's ``hash()`` is salted per
  process, which would make pooled shard workers disagree with an
  inline run; row indices instead derive from an FNV-1a fold of the
  integer key (:func:`fold_key`), exactly like the fabric's CRC32 ECMP
  picker avoids ``hash()``.
* **Merges are deterministic.**  Shard regions each hold a private
  sketch; the coordinator merges the per-region payloads in sorted
  region-id order.  Count-min merges element-wise, the heavy-hitter set
  re-ranks against the merged count-min with ``(-count, key)``
  tie-breaks, and window series add per-index — so the merged contents
  are byte-identical for any worker grouping (``tests/defense/
  test_sketch_determinism.py`` pins this).
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, List, Optional, Tuple

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def normalize_key(values) -> Tuple[int, ...]:
    """Coerce a flow-key tuple to plain ints (``None`` -> ``-1``).

    ``MacAddress``/``Ipv4Address`` are int subclasses and enum fields are
    ``IntEnum``, so ``int()`` is lossless; the result sorts and compares
    deterministically, which the heavy-hitter tie-breaks rely on.
    """
    return tuple(-1 if v is None else int(v) for v in values)


def fold_key(key: Tuple[int, ...]) -> int:
    """A 64-bit FNV-1a fold of an integer tuple — process-stable, unlike
    the salted builtin ``hash``."""
    h = _FNV_OFFSET
    for v in key:
        h ^= v & _MASK64
        h = (h * _FNV_PRIME) & _MASK64
    return h


def row_indices(h: int, width: int, depth: int) -> Tuple[int, ...]:
    """``depth`` row indices from one 64-bit digest via double hashing."""
    h1 = h & 0xFFFFFFFF
    h2 = ((h >> 32) | 1) & 0xFFFFFFFF
    return tuple((h1 + i * h2) % width for i in range(depth))


class CountMinSketch:
    """Conservative count-min over flow keys.

    ``update`` takes the precomputed row-index tuple and returns the
    estimate *before* the increment — zero means the key is (up to
    collision probability) new, the signal the sketch-ratio detector
    thresholds on.
    """

    __slots__ = ("width", "depth", "rows", "total")

    def __init__(self, width: int = 2048, depth: int = 4) -> None:
        if width <= 0 or depth <= 0:
            raise ValueError(f"width/depth must be positive, got "
                             f"{width}x{depth}")
        self.width = int(width)
        self.depth = int(depth)
        self.rows: List[array] = [array("Q", bytes(8 * self.width))
                                  for _ in range(self.depth)]
        self.total = 0

    def update(self, indices: Tuple[int, ...]) -> int:
        est = None
        for row, idx in zip(self.rows, indices):
            count = row[idx]
            if est is None or count < est:
                est = count
            row[idx] = count + 1
        self.total += 1
        return est or 0

    def estimate(self, indices: Tuple[int, ...]) -> int:
        return min(row[idx] for row, idx in zip(self.rows, indices))

    def estimate_key(self, key: Tuple[int, ...]) -> int:
        return self.estimate(row_indices(fold_key(key), self.width,
                                         self.depth))

    def merge(self, other: "CountMinSketch") -> None:
        if (other.width, other.depth) != (self.width, self.depth):
            raise ValueError(
                f"cannot merge {other.width}x{other.depth} count-min into "
                f"{self.width}x{self.depth}")
        for mine, theirs in zip(self.rows, other.rows):
            for i, count in enumerate(theirs):
                if count:
                    mine[i] += count
        self.total += other.total

    def to_dict(self) -> Dict[str, Any]:
        return {
            "width": self.width,
            "depth": self.depth,
            "total": self.total,
            "rows": [row.tolist() for row in self.rows],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CountMinSketch":
        sketch = cls(payload["width"], payload["depth"])
        sketch.total = int(payload["total"])
        for row, values in zip(sketch.rows, payload["rows"]):
            for i, count in enumerate(values):
                row[i] = count
        return sketch


class TopKeys:
    """Count-min-backed heavy hitters (space-saving style replacement).

    Tracks up to ``capacity`` keys with their count-min estimates.  A key
    not yet tracked displaces the current minimum only when its estimate
    strictly exceeds it, so an all-distinct flood (every estimate 1)
    costs O(1) per packet; the O(capacity) victim scan only runs when a
    genuine heavy hitter earns its slot.  Ties break on the normalized
    key tuple, keeping contents independent of arrival interleaving
    *given the same per-region stream* — which sharding guarantees.
    """

    __slots__ = ("capacity", "entries", "_min_count")

    def __init__(self, capacity: int = 16) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.entries: Dict[Tuple[int, ...], int] = {}
        self._min_count = 0

    def update(self, key: Tuple[int, ...], estimate: int) -> None:
        entries = self.entries
        if key in entries:
            entries[key] = estimate
            return
        if len(entries) < self.capacity:
            entries[key] = estimate
            if len(entries) == self.capacity:
                self._min_count = min(entries.values())
            return
        if estimate <= self._min_count:
            return
        # The cached minimum may be stale-low (tracked entries only grow),
        # so recompute before deciding; (count, key) makes the victim
        # deterministic.
        victim = min(entries.items(), key=lambda kv: (kv[1], kv[0]))
        self._min_count = victim[1]
        if estimate <= self._min_count:
            return
        del entries[victim[0]]
        entries[key] = estimate

    def ranked(self) -> List[Tuple[Tuple[int, ...], int]]:
        """Entries best-first: highest count, then lowest key."""
        return sorted(self.entries.items(), key=lambda kv: (-kv[1], kv[0]))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "capacity": self.capacity,
            "entries": [[list(key), count] for key, count in self.ranked()],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TopKeys":
        topk = cls(payload["capacity"])
        for key, count in payload["entries"]:
            topk.entries[tuple(key)] = int(count)
        if len(topk.entries) >= topk.capacity:
            topk._min_count = min(topk.entries.values())
        return topk

    @classmethod
    def merged(cls, parts: List["TopKeys"],
               cms: CountMinSketch) -> "TopKeys":
        """Re-rank the union of tracked keys against the merged count-min.

        Per-region counts are region-local estimates; the merged sketch
        holds the global ones, so the union is re-scored there and the
        best ``capacity`` kept.  Pure function of the inputs.
        """
        capacity = max((p.capacity for p in parts), default=16)
        union = sorted({key for part in parts for key in part.entries})
        scored = sorted(
            ((key, cms.estimate_key(key)) for key in union),
            key=lambda kv: (-kv[1], kv[0]),
        )
        merged = cls(capacity)
        for key, count in scored[:capacity]:
            merged.entries[key] = count
        if len(merged.entries) >= capacity:
            merged._min_count = min(merged.entries.values())
        return merged


class PortRates:
    """Per-(switch, port) packet counts with a bucketed rate EWMA.

    Packets land in fixed ``window_s`` buckets; closing a bucket folds
    its rate into the EWMA (skipped buckets decay it), so the per-packet
    cost is an int compare + increment and no ``exp()`` calls.  Switches
    belong to exactly one shard region, so merging is a disjoint union.
    """

    __slots__ = ("window_s", "alpha", "_state")

    def __init__(self, window_s: float = 0.05, alpha: float = 0.3) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s!r}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha!r}")
        self.window_s = float(window_s)
        self.alpha = float(alpha)
        # (switch, port) -> [bucket_index, bucket_count, total, ewma_pps]
        self._state: Dict[Tuple[str, int], List] = {}

    def update(self, switch: str, port: int, now: float) -> None:
        bucket = int(now / self.window_s)
        state = self._state.get((switch, port))
        if state is None:
            self._state[(switch, port)] = [bucket, 1, 1, 0.0]
            return
        if bucket == state[0]:
            state[1] += 1
        else:
            self._fold(state, bucket)
            state[1] = 1
        state[2] += 1

    def _fold(self, state: List, bucket: int) -> None:
        alpha = self.alpha
        rate = state[1] / self.window_s
        ewma = alpha * rate + (1.0 - alpha) * state[3]
        gap = bucket - state[0] - 1
        if gap > 0:
            ewma *= (1.0 - alpha) ** gap
        state[0] = bucket
        state[3] = ewma

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """``"switch:port" -> {count, ewma_pps}`` with pending buckets
        folded (non-destructively)."""
        out: Dict[str, Dict[str, float]] = {}
        for (switch, port), state in sorted(self._state.items()):
            pending = list(state)
            self._fold(pending, pending[0] + 1)
            out[f"{switch}:{port}"] = {
                "count": state[2],
                "ewma_pps": pending[3],
            }
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "window_s": self.window_s,
            "alpha": self.alpha,
            "ports": {
                f"{switch}:{port}": list(state)
                for (switch, port), state in sorted(self._state.items())
            },
        }

    def merge_dict(self, payload: Dict[str, Any]) -> None:
        for name, state in payload["ports"].items():
            switch, _, port = name.rpartition(":")
            key = (switch, int(port))
            if key in self._state:
                # Regions own disjoint switches; a collision means two
                # payloads for the same region were merged twice.
                raise ValueError(f"duplicate port-rate state for {name}")
            self._state[key] = list(state)


class InterArrival:
    """Streaming inter-arrival stats (count/sum/sum-of-squares/min/max).

    Merging concatenates the per-region streams' moments; the gap
    between two regions' streams is deliberately not synthesized (each
    region's PACKET_IN stream is a complete series on its own switches).
    """

    __slots__ = ("n", "sum_dt", "sum_sq", "min_dt", "max_dt",
                 "first_t", "last_t")

    def __init__(self) -> None:
        self.n = 0
        self.sum_dt = 0.0
        self.sum_sq = 0.0
        self.min_dt: Optional[float] = None
        self.max_dt: Optional[float] = None
        self.first_t: Optional[float] = None
        self.last_t: Optional[float] = None

    def observe(self, now: float) -> None:
        if self.last_t is not None:
            dt = now - self.last_t
            self.n += 1
            self.sum_dt += dt
            self.sum_sq += dt * dt
            if self.min_dt is None or dt < self.min_dt:
                self.min_dt = dt
            if self.max_dt is None or dt > self.max_dt:
                self.max_dt = dt
        else:
            self.first_t = now
        self.last_t = now

    @property
    def mean_dt(self) -> Optional[float]:
        return self.sum_dt / self.n if self.n else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n": self.n, "sum_dt": self.sum_dt, "sum_sq": self.sum_sq,
            "min_dt": self.min_dt, "max_dt": self.max_dt,
            "first_t": self.first_t, "last_t": self.last_t,
        }

    def merge_dict(self, payload: Dict[str, Any]) -> None:
        self.n += payload["n"]
        self.sum_dt += payload["sum_dt"]
        self.sum_sq += payload["sum_sq"]
        for attr, pick in (("min_dt", min), ("max_dt", max),
                           ("first_t", min), ("last_t", max)):
            theirs = payload[attr]
            if theirs is None:
                continue
            mine = getattr(self, attr)
            setattr(self, attr, theirs if mine is None else pick(mine, theirs))


class WindowSeries:
    """Per-window counters for one named signal (sparse int buckets)."""

    __slots__ = ("window_s", "buckets")

    def __init__(self, window_s: float = 0.05) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s!r}")
        self.window_s = float(window_s)
        self.buckets: Dict[int, int] = {}

    def add(self, now: float, count: int = 1) -> None:
        idx = int(now / self.window_s)
        self.buckets[idx] = self.buckets.get(idx, 0) + count

    def to_dict(self) -> Dict[str, Any]:
        return {
            "window_s": self.window_s,
            "buckets": sorted(self.buckets.items()),
        }

    def merge_dict(self, payload: Dict[str, Any]) -> None:
        for idx, count in payload["buckets"]:
            self.buckets[idx] = self.buckets.get(idx, 0) + count
