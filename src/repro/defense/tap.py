"""The per-region sketch tap fed from the switch hot path.

A :class:`SketchTap` instance is shared by every switch in one shard
region (mirroring the ``switch.tracer`` wiring): the switch calls
:meth:`on_frame` once per received frame — *after* the FastFrame lane has
produced the memoized flow-key dict, so the tap reads the pre-populated
``__tuple__`` key and never parses bytes — and :meth:`on_packet_in` at
both PACKET_IN emission sites (table miss, OUTPUT:CONTROLLER).

Per-key work (int-fold hash, count-min row indices, normalization) is
memoized in a bounded dict keyed by the flow-key tuple itself, so steady
traffic pays one dict hit plus a handful of array increments per frame.
The memo evicts wholesale like the FastFrame intern pool: O(1)
bookkeeping, one re-warm round trip after a clear.

``collect()`` produces the picklable per-region payload;
:func:`merge_taps` folds payloads in the caller-sorted region order into
one merged payload whose contents — and therefore whose
:func:`sketch_digest` — are byte-identical for any shard count and for
pooled vs inline execution.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional

from repro.netlib.flowkey import FIELD_TUPLE_KEY, MATCH_FIELD_NAMES
from repro.defense.sketches import (
    CountMinSketch,
    InterArrival,
    PortRates,
    TopKeys,
    WindowSeries,
    fold_key,
    normalize_key,
    row_indices,
)

#: Flow-key memo bound; eviction is wholesale (`clear`), like the
#: FastFrame pool, so bookkeeping stays O(1) per frame.
MEMO_MAX = 65536

#: Default detection window width (sim-seconds).  50 ms is ~10 batch
#: ticks of workload traffic: fine enough for sub-window detection
#: latency, coarse enough that a window's counts are statistically
#: meaningful.
DEFAULT_WINDOW_S = 0.05


class SketchTap:
    """Streaming telemetry for one shard region's switches."""

    __slots__ = ("window_s", "cms", "topk", "ports", "pktin_gaps",
                 "frames", "new_keys", "packet_ins", "_memo", "counters")

    def __init__(
        self,
        window_s: float = DEFAULT_WINDOW_S,
        cms_width: int = 2048,
        cms_depth: int = 4,
        topk: int = 16,
    ) -> None:
        self.window_s = float(window_s)
        self.cms = CountMinSketch(cms_width, cms_depth)
        self.topk = TopKeys(topk)
        self.ports = PortRates(window_s)
        self.pktin_gaps = InterArrival()
        self.frames = WindowSeries(window_s)
        self.new_keys = WindowSeries(window_s)
        self.packet_ins = WindowSeries(window_s)
        self._memo: Dict[Any, tuple] = {}
        self.counters = {"frames": 0, "packet_ins": 0,
                         "memo_hits": 0, "memo_evictions": 0}

    # -- hot path ------------------------------------------------------- #

    def on_frame(self, switch: str, port_no: int,
                 fields: Dict[str, Any], now: float) -> None:
        key = fields.get(FIELD_TUPLE_KEY)
        if key is None:  # lane off / non-FastFrame bytes: build it once
            key = tuple(fields[name] for name in MATCH_FIELD_NAMES)
        cached = self._memo.get(key)
        if cached is None:
            norm = normalize_key(key)
            indices = row_indices(fold_key(norm), self.cms.width,
                                  self.cms.depth)
            if len(self._memo) >= MEMO_MAX:
                self._memo.clear()
                self.counters["memo_evictions"] += 1
            cached = self._memo[key] = (norm, indices)
        else:
            self.counters["memo_hits"] += 1
        norm, indices = cached
        before = self.cms.update(indices)
        if before == 0:
            self.new_keys.add(now)
        self.topk.update(norm, before + 1)
        self.ports.update(switch, port_no, now)
        self.frames.add(now)
        self.counters["frames"] += 1

    def on_packet_in(self, now: float) -> None:
        self.pktin_gaps.observe(now)
        self.packet_ins.add(now)
        self.counters["packet_ins"] += 1

    # -- collection / merge --------------------------------------------- #

    def collect(self) -> Dict[str, Any]:
        """The picklable per-region payload (also the merged shape)."""
        return {
            "window_s": self.window_s,
            "cms": self.cms.to_dict(),
            "topk": self.topk.to_dict(),
            "ports": self.ports.to_dict(),
            "pktin_gaps": self.pktin_gaps.to_dict(),
            "frames": self.frames.to_dict(),
            "new_keys": self.new_keys.to_dict(),
            "packet_ins": self.packet_ins.to_dict(),
            "counters": dict(self.counters),
        }


def merge_taps(payloads: List[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """Fold per-region tap payloads (pass them in sorted region order)
    into one payload of the same shape.  Deterministic: count-min adds
    element-wise, heavy hitters re-rank against the merged count-min,
    window series add per-index, port states union disjointly."""
    payloads = [p for p in payloads if p]
    if not payloads:
        return None
    first = payloads[0]
    tap = SketchTap(
        window_s=first["window_s"],
        cms_width=first["cms"]["width"],
        cms_depth=first["cms"]["depth"],
        topk=first["topk"]["capacity"],
    )
    parts = []
    for payload in payloads:
        tap.cms.merge(CountMinSketch.from_dict(payload["cms"]))
        parts.append(TopKeys.from_dict(payload["topk"]))
        tap.ports.merge_dict(payload["ports"])
        tap.pktin_gaps.merge_dict(payload["pktin_gaps"])
        tap.frames.merge_dict(payload["frames"])
        tap.new_keys.merge_dict(payload["new_keys"])
        tap.packet_ins.merge_dict(payload["packet_ins"])
        for name, value in payload["counters"].items():
            tap.counters[name] = tap.counters.get(name, 0) + value
    tap.topk = TopKeys.merged(parts, tap.cms)
    return tap.collect()


def sketch_digest(payload: Optional[Dict[str, Any]]) -> Optional[str]:
    """A stable content hash of a (merged) tap payload — the determinism
    tests' one-line byte-identity check."""
    if payload is None:
        return None
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def sketch_summary(payload: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Small human-facing numbers for run records and CLI output."""
    if payload is None:
        return {}
    gaps = payload["pktin_gaps"]
    mean_gap = gaps["sum_dt"] / gaps["n"] if gaps["n"] else None
    busiest = max(
        payload["ports"]["ports"].items(),
        key=lambda kv: (kv[1][2], kv[0]),
        default=None,
    )
    return {
        "frames": payload["counters"]["frames"],
        "packet_ins": payload["counters"]["packet_ins"],
        "distinct_keys_tracked": len(payload["topk"]["entries"]),
        "top_key_count": (payload["topk"]["entries"][0][1]
                          if payload["topk"]["entries"] else 0),
        "pktin_mean_gap_s": mean_gap,
        "busiest_port": busiest[0] if busiest else None,
        "busiest_port_frames": busiest[1][2] if busiest else 0,
    }
