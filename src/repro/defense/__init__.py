"""Defense plane: streaming sketch telemetry and scored detectors.

The package has three layers, matching ISSUE 9's tentpole:

- :mod:`repro.defense.sketches` — allocation-free streaming summaries
  (count-min, heavy hitters, bucketed port-rate EWMAs, PACKET_IN
  inter-arrival moments, sparse window series);
- :mod:`repro.defense.tap` — the per-region :class:`SketchTap` fed from
  the switch hot path, plus deterministic merge/digest helpers;
- :mod:`repro.defense.detectors` / :mod:`repro.defense.scoring` — the
  registered ``Detector`` interface and ground-truth precision /
  recall / detection-latency scoring.
"""

from repro.defense.sketches import (
    CountMinSketch,
    InterArrival,
    PortRates,
    TopKeys,
    WindowSeries,
    fold_key,
    normalize_key,
    row_indices,
)
from repro.defense.tap import (
    DEFAULT_WINDOW_S,
    SketchTap,
    merge_taps,
    sketch_digest,
    sketch_summary,
)
from repro.defense.detectors import (
    Detector,
    build_detector,
    detector_info,
    detector_names,
    feature_windows,
    list_detectors,
    register_detector,
)
from repro.defense.scoring import (
    attack_window,
    evaluate_detectors,
    score_flags,
    truth_labels,
)

__all__ = [
    "CountMinSketch",
    "DEFAULT_WINDOW_S",
    "Detector",
    "InterArrival",
    "PortRates",
    "SketchTap",
    "TopKeys",
    "WindowSeries",
    "attack_window",
    "build_detector",
    "detector_info",
    "detector_names",
    "evaluate_detectors",
    "feature_windows",
    "fold_key",
    "list_detectors",
    "merge_taps",
    "normalize_key",
    "register_detector",
    "row_indices",
    "score_flags",
    "sketch_digest",
    "sketch_summary",
    "truth_labels",
]
