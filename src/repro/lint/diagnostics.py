"""Diagnostic records for ``repro lint``.

Every finding carries a stable ``ATNxxx`` code so CI jobs, allowlists, and
docs can reference it; a severity (``error`` findings fail compilation and
campaign pre-flight, ``warning``/``info`` findings are advisory); and the
state/rule/source-line context the analysis could attribute it to.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


#: The full diagnostic vocabulary: code -> (default severity, title).
#: docs/LINT.md documents each with a minimal triggering example.
DIAGNOSTIC_CODES: Dict[str, Tuple[Severity, str]] = {
    "ATN000": (Severity.ERROR, "attack failed to build or compile"),
    "ATN001": (Severity.ERROR, "attack has no states (|Σ| >= 1 violated)"),
    "ATN002": (Severity.ERROR, "start state is not declared"),
    "ATN003": (Severity.ERROR, "duplicate state name"),
    "ATN004": (Severity.ERROR, "GOTOSTATE targets an undefined state"),
    "ATN005": (Severity.ERROR, "state is unreachable from the start state"),
    "ATN006": (Severity.INFO, "no reachable absorbing state (attack never settles)"),
    "ATN007": (Severity.INFO, "GOTOSTATE to the current state is a no-op"),
    "ATN010": (Severity.ERROR, "rule binds a connection that is not in N_C"),
    "ATN011": (Severity.ERROR, "rule γ exceeds Γ_NC(n) for a bound connection"),
    "ATN012": (Severity.INFO, "rule declares capabilities it never uses"),
    "ATN020": (Severity.WARNING, "deque is read but never written"),
    "ATN021": (Severity.WARNING, "deque is declared but never used"),
    "ATN022": (Severity.WARNING, "deque is used but never declared"),
    "ATN030": (Severity.WARNING, "rule is shadowed by an earlier dropping rule"),
    "ATN031": (Severity.WARNING, "type option impossible for the matched TYPE"),
    "ATN032": (Severity.WARNING, "TYPE compared against an unknown message type"),
    "ATN040": (Severity.WARNING, "SLEEP hygiene"),
    "ATN041": (Severity.WARNING, "SYSCMD hygiene"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding."""

    code: str
    severity: Severity
    message: str
    state: Optional[str] = None
    rule: Optional[str] = None
    line: Optional[int] = None

    def location(self) -> str:
        parts = []
        if self.line is not None:
            parts.append(f"line {self.line}")
        if self.state is not None:
            parts.append(f"state {self.state!r}")
        if self.rule is not None:
            parts.append(f"rule {self.rule!r}")
        return ", ".join(parts)

    def render(self) -> str:
        location = self.location()
        prefix = f"[{location}] " if location else ""
        return f"{self.code} {self.severity.value}: {prefix}{self.message}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "state": self.state,
            "rule": self.rule,
            "line": self.line,
        }


class LintReport:
    """All diagnostics for one attack, ordered by severity then source line."""

    def __init__(self, attack_name: str, diagnostics: Optional[List[Diagnostic]] = None) -> None:
        self.attack_name = attack_name
        self.diagnostics: List[Diagnostic] = list(diagnostics or [])

    def add(
        self,
        code: str,
        message: str,
        state: Optional[str] = None,
        rule: Optional[str] = None,
        line: Optional[int] = None,
        severity: Optional[Severity] = None,
    ) -> Diagnostic:
        if code not in DIAGNOSTIC_CODES:
            raise ValueError(f"unknown diagnostic code {code!r}")
        resolved = severity or DIAGNOSTIC_CODES[code][0]
        diagnostic = Diagnostic(code, resolved, message, state, rule, line)
        self.diagnostics.append(diagnostic)
        return diagnostic

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def codes(self) -> List[str]:
        return sorted({d.code for d in self.diagnostics})

    def sorted(self) -> List[Diagnostic]:
        return sorted(
            self.diagnostics,
            key=lambda d: (d.severity.rank, d.line or 0, d.code, d.message),
        )

    # ------------------------------------------------------------------ #
    # Output
    # ------------------------------------------------------------------ #

    def render_text(self, verbose: bool = True) -> str:
        lines = [f"lint: {self.attack_name}"]
        shown = self.sorted()
        if not verbose:
            shown = [d for d in shown if d.severity is not Severity.INFO]
        for diagnostic in shown:
            lines.append(f"  {diagnostic.render()}")
        counts = (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.by_severity(Severity.INFO))} info"
        )
        lines.append(f"  -> {counts}" if self.diagnostics else "  -> clean")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "attack": self.attack_name,
            "clean": not self.diagnostics,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "diagnostics": [d.to_dict() for d in self.sorted()],
        }

    def __repr__(self) -> str:
        return (
            f"<LintReport {self.attack_name!r} errors={len(self.errors)} "
            f"warnings={len(self.warnings)} total={len(self.diagnostics)}>"
        )
