"""Static analysis over compiled attack descriptions (``repro lint``).

The lint engine runs a battery of analysis passes over an
:class:`~repro.core.lang.attack.Attack` — structural graph checks
(migrated from :class:`~repro.core.lang.graph.GraphValidationError`),
capability containment against Γ_NC, deque dataflow, rule shadowing,
type-option consistency, and SLEEP/SYSCMD hygiene — and reports findings
as stable ``ATNxxx`` diagnostics (see docs/LINT.md).

It is wired in at three layers: ``compile_attack(..., lint=True)``, the
``repro lint`` CLI subcommand, and campaign pre-flight.
"""

from repro.lint.diagnostics import DIAGNOSTIC_CODES, Diagnostic, LintReport, Severity
from repro.lint.engine import failure_report, lint_attack
from repro.lint.registry import DEFAULT_PARAMS, build_registry_attack

__all__ = [
    "DEFAULT_PARAMS",
    "DIAGNOSTIC_CODES",
    "Diagnostic",
    "LintReport",
    "Severity",
    "build_registry_attack",
    "failure_report",
    "lint_attack",
]
