"""The lint analysis passes.

Each pass walks a compiled :class:`~repro.core.lang.attack.Attack` (and,
when available, the :class:`~repro.core.model.threat.AttackModel`) and
emits diagnostics into a :class:`~repro.lint.diagnostics.LintReport`.
Passes are pure static analysis — nothing here executes a rule.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.core.lang.actions import (
    AppendAction,
    AttackAction,
    DelayMessage,
    DropMessage,
    GoToState,
    PopAction,
    PrependAction,
    ReadMessage,
    ReadMessageMetadata,
    ShiftAction,
    Sleep,
    SysCmd,
)
from repro.core.lang.attack import Attack
from repro.core.lang.conditionals import (
    And,
    Comparison,
    Condition,
    ExamineEnd,
    ExamineFront,
    Expression,
    Not,
    Or,
    PopExpr,
    ShiftExpr,
    TrueCondition,
    TypeOption,
)
from repro.core.lang.rules import Rule
from repro.core.lang.states import AttackState
from repro.core.model.threat import AttackModel
from repro.lint.diagnostics import LintReport, Severity
from repro.openflow.constants import MessageType
from repro.openflow.match import MATCH_FIELD_NAMES

#: Valid MESSAGETYPEOPTIONS roots per message type, mirroring
#: :meth:`InterposedMessage._type_option_root`.  Types absent from this
#: table expose no options at all.
TYPE_OPTION_ROOTS = {
    "FLOW_MOD": frozenset({
        "match", "command", "idle_timeout", "hard_timeout", "priority",
        "buffer_id", "cookie", "out_port", "n_actions", "output_ports",
        "output_port",
    }),
    "PACKET_IN": frozenset({"packet", "in_port", "reason", "buffer_id", "total_len"}),
    "PACKET_OUT": frozenset({"in_port", "buffer_id", "n_actions", "output_ports",
                             "output_port"}),
    "FLOW_REMOVED": frozenset({"match", "reason", "priority", "packet_count",
                               "byte_count"}),
    "FEATURES_REPLY": frozenset({"datapath_id", "n_ports", "n_buffers"}),
    "ECHO_REQUEST": frozenset({"payload_len"}),
    "ECHO_REPLY": frozenset({"payload_len"}),
    "ERROR": frozenset({"error_type", "code"}),
    "PORT_STATUS": frozenset({"reason", "port_no"}),
    "STATS_REQUEST": frozenset({"stats_type"}),
    "STATS_REPLY": frozenset({"stats_type"}),
}

KNOWN_MESSAGE_TYPES = frozenset(member.name for member in MessageType)

#: A long SLEEP stalls every message on the rule's connections; past this
#: bound the controller side will have declared the switch dead (echo
#: timeouts), which is rarely what the author wants from a single action.
LONG_SLEEP_SECONDS = 300.0

_SHELL_METACHARACTERS = set(";|&`$><")


# ---------------------------------------------------------------------- #
# AST walkers
# ---------------------------------------------------------------------- #


def iter_expressions(expression: Expression) -> Iterator[Expression]:
    """The expression node and every descendant."""
    yield expression
    for child in expression.children():
        yield from iter_expressions(child)


def iter_condition_expressions(condition: Condition) -> Iterator[Expression]:
    """Every expression node reachable from a conditional."""
    if isinstance(condition, Comparison):
        yield from iter_expressions(condition.left)
        yield from iter_expressions(condition.right)
    elif isinstance(condition, (And, Or)):
        for term in condition.terms:
            yield from iter_condition_expressions(term)
    elif isinstance(condition, Not):
        yield from iter_condition_expressions(condition.term)


def rule_expressions(rule: Rule) -> Iterator[Expression]:
    """Every expression the rule evaluates: conditional + action arguments."""
    yield from iter_condition_expressions(rule.conditional)
    for action in rule.actions:
        for expr in action.argument_expressions():
            yield from iter_expressions(expr)


def _rule_line(rule: Rule) -> Optional[int]:
    return getattr(rule, "source_line", None)


def _state_line(state: AttackState) -> Optional[int]:
    return getattr(state, "source_line", None)


# ---------------------------------------------------------------------- #
# Structural passes (ATN001-ATN007)
# ---------------------------------------------------------------------- #

_STRUCTURAL_CODES = {
    "empty": "ATN001",
    "bad-start": "ATN002",
    "duplicate-state": "ATN003",
    "undefined-target": "ATN004",
    "unreachable": "ATN005",
}


def check_structure(attack: Attack, model: Optional[AttackModel], report: LintReport) -> None:
    """Migrate the graph's structural validation into diagnostics."""
    graph = attack.graph
    for problem in graph.structural_problems():
        state = problem.state
        line = None
        if state is not None and state in graph.states:
            line = _state_line(graph.states[state])
        report.add(
            _STRUCTURAL_CODES[problem.kind], problem.message,
            state=state, line=line,
        )


def check_absorbing(attack: Attack, model: Optional[AttackModel], report: LintReport) -> None:
    """ATN006/ATN007: absorbing-state reachability and no-op self-gotos."""
    graph = attack.graph
    if attack.start not in graph.states:
        return  # structural errors already reported
    reachable = graph.reachable_states() & set(graph.states)
    if reachable and not (graph.absorbing_states() & reachable):
        report.add(
            "ATN006",
            "no absorbing state is reachable from "
            f"{attack.start!r}: the attack cycles forever and never settles",
        )
    for state, rule in attack.all_rules():
        for action in rule.actions:
            if isinstance(action, GoToState) and action.state_name == state.name:
                report.add(
                    "ATN007",
                    f"GOTOSTATE({state.name!r}) from its own state is a no-op",
                    state=state.name, rule=rule.name, line=_rule_line(rule),
                )


# ---------------------------------------------------------------------- #
# Capability passes (ATN010-ATN012)
# ---------------------------------------------------------------------- #


def check_capabilities(attack: Attack, model: Optional[AttackModel], report: LintReport) -> None:
    """ATN010/ATN011/ATN012: connections in N_C, γ ⊆ Γ_NC(n), γ minimality."""
    known = set(model.system.connection_keys()) if model is not None else None
    for state, rule in attack.all_rules():
        line = _rule_line(rule)
        if known is not None:
            unknown = rule.connections - known
            if unknown:
                report.add(
                    "ATN010",
                    f"binds connections not in N_C: {sorted(unknown)}",
                    state=state.name, rule=rule.name, line=line,
                )
            for connection in sorted(rule.connections & known):
                missing = rule.gamma - model.gamma(connection)
                if missing:
                    names = ", ".join(sorted(c.value for c in missing))
                    report.add(
                        "ATN011",
                        f"γ exceeds Γ_NC({connection}): missing {names}",
                        state=state.name, rule=rule.name, line=line,
                    )
        unused = rule.gamma - rule.required_capabilities()
        if unused:
            names = ", ".join(sorted(c.value for c in unused))
            report.add(
                "ATN012",
                f"declares capabilities it never uses: {names}",
                state=state.name, rule=rule.name, line=line,
            )


# ---------------------------------------------------------------------- #
# Deque dataflow (ATN020-ATN022)
# ---------------------------------------------------------------------- #


def _deque_usage(attack: Attack) -> Tuple[Set[str], Set[str]]:
    """(read deques, written deques) across every rule of the attack."""
    reads: Set[str] = set()
    writes: Set[str] = set()
    for _state, rule in attack.all_rules():
        for expr in rule_expressions(rule):
            if isinstance(expr, (ExamineFront, ExamineEnd, ShiftExpr, PopExpr)):
                reads.add(expr.deque_name)
        for action in rule.actions:
            if isinstance(action, (PrependAction, AppendAction)):
                writes.add(action.deque_name)
            elif isinstance(action, (ShiftAction, PopAction)):
                reads.add(action.deque_name)
            elif isinstance(action, (ReadMessage, ReadMessageMetadata)):
                if action.store_to is not None:
                    writes.add(action.store_to)
    return reads, writes


def check_deque_dataflow(attack: Attack, model: Optional[AttackModel], report: LintReport) -> None:
    """ATN020/ATN021/ATN022: read-before-write, unused, undeclared deques."""
    reads, writes = _deque_usage(attack)
    declared = set(attack.deque_declarations)
    seeded = {
        name for name, initial in attack.deque_declarations.items() if initial
    }
    for name in sorted(reads - writes - seeded):
        report.add(
            "ATN020",
            f"deque {name!r} is read (EXAMINE/SHIFT/POP) but never written "
            "and has no initial contents — reads always yield None",
        )
    for name in sorted(declared - reads - writes):
        report.add("ATN021", f"deque {name!r} is declared but never used")
    for name in sorted((reads | writes) - declared):
        report.add(
            "ATN022",
            f"deque {name!r} is used but never declared — it is auto-created "
            "empty, which hides typos in deque names",
        )


# ---------------------------------------------------------------------- #
# Rule shadowing (ATN030)
# ---------------------------------------------------------------------- #


def _subsumes(earlier: Rule, later: Rule) -> bool:
    """Whenever ``later`` matches a message, does ``earlier`` match too?

    Conservative syntactic check: the earlier conditional is TRUE, or the
    two conditionals are structurally identical.
    """
    if isinstance(earlier.conditional, TrueCondition):
        return True
    return repr(earlier.conditional) == repr(later.conditional)


def check_shadowing(attack: Attack, model: Optional[AttackModel], report: LintReport) -> None:
    """ATN030: a dropping rule starves later rules' current-entry actions.

    All matching rules in a state fire (the executor has no first-match
    short-circuit), but DROPMESSAGE removes the triggering message from the
    outgoing list, so a *later* rule whose condition is subsumed and whose
    connections are covered can never see its DROPMESSAGE/DELAYMESSAGE
    actions take effect — they silently no-op on every message.
    """
    for state in attack.states.values():
        for later_index, later in enumerate(state.rules):
            dead_kinds = {
                type(action).__name__
                for action in later.actions
                if isinstance(action, (DropMessage, DelayMessage))
            }
            if not dead_kinds:
                continue
            for earlier in state.rules[:later_index]:
                drops = any(isinstance(a, DropMessage) for a in earlier.actions)
                if not drops:
                    continue
                if not later.connections <= earlier.connections:
                    continue
                if not _subsumes(earlier, later):
                    continue
                report.add(
                    "ATN030",
                    f"actions {sorted(dead_kinds)} can never take effect: "
                    f"rule {earlier.name!r} already matches every message this "
                    "rule matches and drops it first",
                    state=state.name, rule=later.name, line=_rule_line(later),
                )
                break


# ---------------------------------------------------------------------- #
# Type-option consistency (ATN031/ATN032)
# ---------------------------------------------------------------------- #


def _option_valid_for(path: str, type_name: str) -> bool:
    head, _, rest = path.partition(".")
    head = head.lower()
    roots = TYPE_OPTION_ROOTS.get(type_name, frozenset())
    if head not in roots:
        return False
    if head == "match":
        return bool(rest) and rest in MATCH_FIELD_NAMES
    if head == "packet":
        return bool(rest)
    return not rest


def check_type_options(attack: Attack, model: Optional[AttackModel], report: LintReport) -> None:
    """ATN031/ATN032: option paths vs the TYPEs the rule can match."""
    for state, rule in attack.all_rules():
        line = _rule_line(rule)
        pinned = rule.message_types()
        if pinned is not None:
            unknown = sorted(t for t in pinned if t not in KNOWN_MESSAGE_TYPES)
            for name in unknown:
                report.add(
                    "ATN032",
                    f"conditional pins TYPE = {name!r}, which is not an "
                    "OpenFlow 1.0 message type — the rule can never fire",
                    state=state.name, rule=rule.name, line=line,
                )
            pinned = frozenset(pinned) - set(unknown)
            if not pinned:
                continue
        for expr in rule_expressions(rule):
            if not isinstance(expr, TypeOption):
                continue
            if pinned is None:
                # Unpinned rules read options opportunistically (absent
                # options evaluate to None); only flag globally-bogus paths.
                if not any(
                    _option_valid_for(expr.path, name)
                    for name in TYPE_OPTION_ROOTS
                ):
                    report.add(
                        "ATN031",
                        f"type option {expr.path!r} is not defined for any "
                        "message type — it always evaluates to None",
                        state=state.name, rule=rule.name, line=line,
                    )
                continue
            if not any(_option_valid_for(expr.path, name) for name in pinned):
                report.add(
                    "ATN031",
                    f"type option {expr.path!r} does not exist for the matched "
                    f"TYPE(s) {sorted(pinned)} — it always evaluates to None",
                    state=state.name, rule=rule.name, line=line,
                )


# ---------------------------------------------------------------------- #
# SLEEP / SYSCMD hygiene (ATN040/ATN041)
# ---------------------------------------------------------------------- #


def check_hygiene(attack: Attack, model: Optional[AttackModel], report: LintReport) -> None:
    """ATN040/ATN041: suspicious SLEEP durations and SYSCMD targets."""
    hosts = None
    if model is not None:
        system = model.system
        # SYSCMD usually targets hosts (iperf, tcpdump), but the harness
        # also accepts switch/controller names for management commands.
        hosts = set(system.hosts) | set(system.switches) | set(system.controllers)
    for state, rule in attack.all_rules():
        line = _rule_line(rule)
        for action in rule.actions:
            if isinstance(action, Sleep):
                if action.seconds == 0.0:
                    report.add(
                        "ATN040", "SLEEP(0) is a no-op",
                        state=state.name, rule=rule.name, line=line,
                        severity=Severity.INFO,
                    )
                elif action.seconds > LONG_SLEEP_SECONDS:
                    report.add(
                        "ATN040",
                        f"SLEEP({action.seconds:g}) stalls the injector for "
                        f"over {LONG_SLEEP_SECONDS:g}s — the controller will "
                        "declare the connection dead long before it returns",
                        state=state.name, rule=rule.name, line=line,
                    )
            elif isinstance(action, SysCmd):
                if hosts is not None and action.host not in hosts:
                    report.add(
                        "ATN041",
                        f"SYSCMD targets host {action.host!r}, which is not "
                        "in the system model — the command will never run",
                        state=state.name, rule=rule.name, line=line,
                    )
                meta = sorted(_SHELL_METACHARACTERS & set(action.command))
                if meta:
                    report.add(
                        "ATN041",
                        f"SYSCMD command contains shell metacharacters "
                        f"{meta} — harness handlers execute argv-style, "
                        "without a shell",
                        state=state.name, rule=rule.name, line=line,
                        severity=Severity.INFO,
                    )


#: Pass registry, in report order.
ALL_PASSES = (
    check_structure,
    check_absorbing,
    check_capabilities,
    check_deque_dataflow,
    check_shadowing,
    check_type_options,
    check_hygiene,
)
