"""The lint driver: run every analysis pass over a compiled attack."""

from __future__ import annotations

from typing import Optional

from repro.core.lang.attack import Attack
from repro.core.model.threat import AttackModel
from repro.lint.diagnostics import LintReport
from repro.lint.passes import ALL_PASSES


def lint_attack(attack: Attack, attack_model: Optional[AttackModel] = None) -> LintReport:
    """Run all analysis passes and return the combined report.

    ``attack_model`` enables the capability passes (ATN010/ATN011) and the
    SYSCMD host check; without one, those passes are skipped — the purely
    syntactic passes still run.
    """
    report = LintReport(attack.name)
    for analysis in ALL_PASSES:
        analysis(attack, attack_model, report)
    return report


def failure_report(name: str, message: str, line: Optional[int] = None) -> LintReport:
    """An ATN000 report for an attack that could not even be built.

    Used by the CLI and campaign pre-flight when compilation or the
    attack factory raises before there is an :class:`Attack` to analyse.
    """
    report = LintReport(name)
    report.add("ATN000", message, line=line)
    return report
