"""Build registered attacks for linting.

Several registry factories have required parameters (a trigger IP, a dead
port, ...).  ``repro lint --name`` and the registry sweep need *some*
instantiation to analyse, so this module supplies representative defaults
drawn from the enterprise evaluation scenario (Section VI-A) for every
registered attack.  Explicit ``params`` always win over the defaults.
"""

from __future__ import annotations

import inspect
from typing import Dict, Optional

from repro.attacks import build_attack, get_attack_factory
from repro.core.lang.attack import Attack
from repro.core.model.system import SystemModel

#: Representative required-parameter defaults per registered attack,
#: mirroring how the experiments instantiate them (enterprise topology:
#: external user h2 at 10.0.0.2, internal hosts 10.0.0.3-10.0.0.6).
DEFAULT_PARAMS: Dict[str, dict] = {
    "connection-interruption": {
        "trigger_source_ip": "10.0.0.2",
        "protected_destination_ips": (
            "10.0.0.3", "10.0.0.4", "10.0.0.5", "10.0.0.6",
        ),
    },
    "blackhole": {"dead_port": 99},
    "link-fabrication": {
        "fake_src_dpid": 4,
        "fake_src_port": 1,
        "reported_in_port": 1,
    },
    "stochastic-drop": {"drop_probability": 0.5},
    "counting-naive": {"n": 3},
    "counting-deque": {"n": 3},
}


def build_registry_attack(
    name: str,
    system: SystemModel,
    params: Optional[dict] = None,
) -> Attack:
    """Instantiate a registered attack with lint-friendly defaults.

    Factories that take ``connections`` get all of ``system``'s control
    connections; single-``connection`` factories get the first one.
    Raises whatever the factory raises — callers turn that into ATN000.
    """
    factory = get_attack_factory(name)
    merged = dict(DEFAULT_PARAMS.get(name, {}))
    merged.update(params or {})
    connections = system.connection_keys()
    signature = inspect.signature(factory)
    if "connection" in signature.parameters and "connections" not in signature.parameters:
        return build_attack(name, connections=connections[0], **merged)
    return build_attack(name, connections=connections, **merged)
