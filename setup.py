"""Legacy setup shim.

The build environment has no network access and no ``wheel`` package, so
PEP 660 editable installs fail; this shim lets ``pip install -e .`` fall
back to the setuptools develop path.  All real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
